"""Ablation: branch predictor components on workload branch streams.

Table 1 fixes the hybrid gshare+bimodal predictor; this ablation runs
every implemented component (bimodal, gshare, local-history PAg, and
the hybrid) over the same benchmark branch streams, quantifying what
each history mechanism buys on loop-heavy vs data-dependent code.

Caveat: the region samplers draw branch instances i.i.d. from the
static population, which destroys consecutive-branch ordering; history
predictors (gshare, PAg) therefore see weaker patterns here than they
would on a true sequential trace, and per-PC bimodal counters dominate.
The hybrid's job — never being worse than its best component — is what
the assertion pins.
"""

import numpy as np

from repro.simulator.branch import (
    BimodalPredictor,
    GSharePredictor,
    HybridPredictor,
    LocalHistoryPredictor,
)
from repro.workloads import build_benchmark

PREDICTORS = {
    "bimodal": lambda: BimodalPredictor(),
    "gshare": lambda: GSharePredictor(),
    "local (PAg)": lambda: LocalHistoryPredictor(),
    "hybrid": lambda: HybridPredictor(),
}


def _branch_streams():
    """One loop-heavy and one data-dependent region stream."""
    rng = np.random.default_rng(3)
    streams = {}
    for bench, region_index, label in (
        ("gzip/g", 0, "loop-heavy (gzip)"),
        ("gcc/1", 0, "data-dependent (gcc)"),
    ):
        region = build_benchmark(bench, scale=0.05).regions[region_index]
        sample = region.sampled_stream(rng, events=8192)
        streams[label] = (sample.branch_pcs, sample.branch_taken)
    return streams


def test_ablation_branch_predictors(benchmark):
    def sweep():
        streams = _branch_streams()
        results = {}
        for stream_label, (pcs, taken) in streams.items():
            for pred_label, factory in PREDICTORS.items():
                predictor = factory()
                for pc, outcome in zip(pcs, taken):
                    predictor.predict_and_update(int(pc), bool(outcome))
                results[(stream_label, pred_label)] = (
                    predictor.misprediction_rate
                )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    streams = sorted({k[0] for k in results})
    for stream_label in streams:
        print(f"  {stream_label}:")
        for pred_label in PREDICTORS:
            rate = results[(stream_label, pred_label)]
            print(f"    {pred_label:12s} mispredict {rate:6.2%}")
    # The hybrid must be competitive with its best component everywhere.
    for stream_label in streams:
        best_component = min(
            results[(stream_label, p)]
            for p in ("bimodal", "gshare")
        )
        assert results[(stream_label, "hybrid")] <= best_component + 0.05
