"""Benchmark: Figure 7 — next-interval phase prediction.

Regenerates the Figure 7 stacked bars and asserts the paper's
conclusions: last value is a strong baseline, confidence trades
coverage for accuracy, and RLE at least matches Markov.
"""

from repro.harness.experiment import run_experiment


def test_fig7_next_phase(benchmark, warm_caches):
    result = benchmark.pedantic(
        lambda: run_experiment("fig7", scale=warm_caches),
        rounds=1, iterations=1,
    )
    labels = result.data["labels"]
    accuracy = dict(zip(labels, result.data["accuracy"]))
    confident = dict(zip(labels, result.data["confident_accuracy"]))
    assert 70.0 < accuracy["Last Value"] < 99.5
    assert confident["Last Value"] >= accuracy["Last Value"]
    assert accuracy["RLE-2"] >= accuracy["Markov 2"] - 1.0
    print()
    print(result.rendered)
