"""Benchmark: online classification vs offline SimPoint (paper §4.4).

The paper prefers the 25%+min-8 configuration partly because its CoV
and phase counts are "comparable to the results of the offline phase
classification algorithm used in SimPoint".
"""

import numpy as np

from repro.harness.experiment import run_experiment


def test_simpoint_comparison(benchmark, warm_caches):
    result = benchmark.pedantic(
        lambda: run_experiment("simpoint", scale=warm_caches),
        rounds=1, iterations=1,
    )
    online = np.array(result.data["online_cov"])
    offline = np.array(result.data["offline_cov"])
    # Comparable on average: within a factor of two either way.
    assert online.mean() < 2.0 * offline.mean() + 5.0
    assert offline.mean() < 2.0 * online.mean() + 5.0
    # SimPoint's estimation from a handful of points is accurate.
    assert np.mean(result.data["estimate_error"]) < 15.0
    print()
    print(result.rendered)
