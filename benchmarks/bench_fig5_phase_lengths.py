"""Benchmark: Figure 5 — average stable and transition run lengths.

Regenerates the Figure 5 series and asserts that stable runs dominate
transition runs for nearly every benchmark.
"""

import numpy as np

from repro.harness.experiment import run_experiment


def test_fig5_phase_lengths(benchmark, warm_caches):
    result = benchmark.pedantic(
        lambda: run_experiment("fig5", scale=warm_caches),
        rounds=1, iterations=1,
    )
    stable = np.array(result.data["stable_mean"])
    trans = np.array(result.data["transition_mean"])
    assert (stable > trans).mean() > 0.8
    print()
    print(result.rendered)
