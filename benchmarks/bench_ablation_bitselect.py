"""Ablation: dynamic vs static bit selection (paper §4.2).

The paper's dynamic selector adapts the compressed window to the
average counter value; the prior work fixed bits 14..21. At the 10M
interval both should classify well; the dynamic selector must not lose.
"""

import numpy as np

from repro.analysis.cov import weighted_cov
from repro.core import ClassifierConfig, PhaseClassifier
from repro.harness.cache import cached_trace

NAMES = ("bzip2/g", "gcc/1", "gzip/p", "mcf")


def _cov_for(selector, scale, bits):
    covs = []
    for name in NAMES:
        trace = cached_trace(name, scale)
        config = ClassifierConfig(
            num_counters=16, table_entries=32,
            similarity_threshold=0.25, min_count_threshold=8,
            bit_selector=selector, bits_per_counter=bits,
        )
        run = PhaseClassifier(config).classify_trace(trace)
        covs.append(weighted_cov(run, trace))
    return float(np.mean(covs))


def test_ablation_bit_selection(benchmark, warm_caches):
    def ablate():
        return {
            "dynamic/6b": _cov_for("dynamic", warm_caches, 6),
            "static/8b@14": _cov_for("static", warm_caches, 8),
        }

    results = benchmark.pedantic(ablate, rounds=1, iterations=1)
    print()
    for label, cov in results.items():
        print(f"  {label}: CoV={cov * 100:.2f}%")
    assert all(0.0 < cov < 0.6 for cov in results.values())
