"""Ablation: accumulator hash quality.

The paper hashes branch PCs into N counters; the hash's dispersion
determines how much signature information survives. This ablation
compares the library's multiplicative-fold hash against a naive
modulo-by-N indexing on classification quality — sequential PCs all
land in neighbouring buckets under modulo, washing out signatures.
"""

import numpy as np

from repro.analysis.cov import weighted_cov
from repro.core import ClassifierConfig, PhaseClassifier
from repro.core import accumulator as accumulator_module
from repro.harness.cache import cached_trace

NAMES = ("bzip2/p", "gcc/1", "galgel")


def _cov_with_hash(hash_function, scale):
    original = accumulator_module.hash_pc
    accumulator_module.hash_pc = hash_function
    try:
        covs, phases = [], []
        for name in NAMES:
            trace = cached_trace(name, scale)
            config = ClassifierConfig(
                num_counters=16, table_entries=32,
                similarity_threshold=0.25, min_count_threshold=8,
            )
            run = PhaseClassifier(config).classify_trace(trace)
            covs.append(weighted_cov(run, trace))
            phases.append(run.num_phases)
        return float(np.mean(covs)), float(np.mean(phases))
    finally:
        accumulator_module.hash_pc = original


def _naive_modulo(pcs, num_counters):
    return (
        (np.asarray(pcs, dtype=np.uint64) >> np.uint64(2))
        % np.uint64(num_counters)
    ).astype(np.int64)


def test_ablation_hash_function(benchmark, warm_caches):
    def ablate():
        return {
            "multiplicative": _cov_with_hash(
                accumulator_module.hash_pc, warm_caches
            ),
            "naive modulo": _cov_with_hash(_naive_modulo, warm_caches),
        }

    results = benchmark.pedantic(ablate, rounds=1, iterations=1)
    print()
    for label, (cov, phases) in results.items():
        print(f"  {label:14s} CoV={cov * 100:5.1f}%  phases={phases:5.1f}")
    # Both must classify; the naive hash may lose quality but must not
    # break the pipeline.
    for cov, phases in results.values():
        assert 0.0 < cov < 0.6
        assert phases >= 1
