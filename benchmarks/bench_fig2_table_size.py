"""Benchmark: Figure 2 — CPI CoV and phase counts vs signature-table size.

Regenerates both Figure 2 graphs and asserts the paper's shape: finite
tables inflate phase counts via replacement, CoV moves only slightly.
"""

import numpy as np

from repro.harness.experiment import run_experiment


def test_fig2_table_size(benchmark, warm_caches):
    result = benchmark.pedantic(
        lambda: run_experiment("fig2", scale=warm_caches),
        rounds=1, iterations=1,
    )
    phases = result.data["phases"]
    assert np.mean(phases["16 entry"]) >= np.mean(phases["inf entry"])
    covs = [np.mean(result.data["cov"][c]) for c in result.data["cov"]]
    assert max(covs) - min(covs) < 5.0
    print()
    print(result.rendered)
