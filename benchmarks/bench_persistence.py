"""Benchmark: durable session tier — ingest overhead and hydrate cost.

Two costs decide whether the persistence tier is deployable:

1. **Ingest overhead.** Every acknowledged observe batch is journaled
   first, so durability rides the hot path. This benchmark drives the
   same branch stream through a live service once RAM-only and once
   per sync mode, and asserts the default ``batch`` mode stays within
   25% of the RAM-only rate (the acceptance ceiling). ``none`` should
   be nearly free; ``always`` pays an fsync per request and is
   reported but unbounded (fsync cost is hardware, not code).
2. **Cold-session hydrate latency.** An evicted session must come back
   fast enough to hide inside a normal request. Hydration is
   O(checkpoint) by design — no journal scan — so it must not degrade
   with the number of evicted sessions on disk; this benchmark
   populates a directory with many cold checkpoints and times single
   hydrates.
"""

import time

import numpy as np

from repro.persistence import PersistenceManager
from repro.service import PhaseServiceClient, start_in_thread
from repro.service.session import SessionRegistry
from repro.service.snapshot import snapshot_tracker

BRANCHES = 12_000
BATCH = 2_000
INTERVAL_INSTRUCTIONS = 100_000
BATCH_OVERHEAD_CEILING = 0.25  # sync=batch may cost at most this
COLD_SESSIONS = 10_000
HYDRATE_SAMPLES = 50
HYDRATE_BUDGET_SECONDS = 0.050  # mean single-hydrate latency ceiling


def _branch_stream(seed=0, n=BRANCHES):
    rng = np.random.default_rng(seed)
    pcs = [int(pc) for pc in 0x400000 + rng.integers(0, 64, size=n) * 4]
    counts = [int(c) for c in rng.integers(50, 150, size=n)]
    return pcs, counts


def _ingest_rate(handle, pcs, counts):
    with PhaseServiceClient(port=handle.port) as client:
        session = client.open_session(
            interval_instructions=INTERVAL_INSTRUCTIONS
        )
        client.observe(session, pcs[:BATCH], counts[:BATCH])  # warm-up
        start = time.perf_counter()
        for begin in range(0, len(pcs), BATCH):
            client.observe(
                session,
                pcs[begin:begin + BATCH],
                counts[begin:begin + BATCH],
            )
        elapsed = time.perf_counter() - start
        client.close_session(session)
    return len(pcs) / elapsed


def test_sync_batch_ingest_overhead_within_25_percent(tmp_path):
    pcs, counts = _branch_stream()

    with start_in_thread() as handle:
        ram_only = _ingest_rate(handle, pcs, counts)

    rates = {}
    for sync in ("none", "batch", "always"):
        with start_in_thread(
            data_dir=tmp_path / sync, sync=sync, checkpoint_interval=600.0
        ) as handle:
            rates[sync] = _ingest_rate(handle, pcs, counts)

    overhead = {
        sync: (ram_only - rate) / ram_only for sync, rate in rates.items()
    }
    print(
        f"\nram-only {ram_only / 1e3:.0f} kbranches/s | "
        + " | ".join(
            f"{sync} {rates[sync] / 1e3:.0f}k ({overhead[sync]:+.1%})"
            for sync in ("none", "batch", "always")
        )
    )
    assert overhead["batch"] <= BATCH_OVERHEAD_CEILING, (
        f"sync=batch ingest overhead {overhead['batch']:.1%} exceeds "
        f"the {BATCH_OVERHEAD_CEILING:.0%} ceiling"
    )


def test_cold_hydrate_latency_flat_at_10k_sessions(tmp_path):
    from repro.core import PhaseTracker

    # One warmed tracker, checkpointed under many names: the on-disk
    # population an LRU-capped server accumulates over days.
    manager = PersistenceManager(tmp_path / "data", sync="none")
    tracker = PhaseTracker(interval_instructions=INTERVAL_INSTRUCTIONS)
    pcs, counts = _branch_stream(seed=1, n=3_000)
    tracker.observe_batch(pcs, counts, cpi=1.1)
    document = {
        "seq": 0,
        "snapshot": snapshot_tracker(tracker),
        "meta": {"intervals_pushed": 5, "branches_ingested": 3_000},
    }
    start = time.perf_counter()
    for index in range(COLD_SESSIONS):
        name = f"cold-{index}"
        manager.checkpoints.write(name, document)
        manager._cold[name] = 0
    populate = time.perf_counter() - start

    registry = SessionRegistry(max_sessions=HYDRATE_SAMPLES + 1)
    manager.install_into(registry)
    rng = np.random.default_rng(2)
    picks = rng.choice(COLD_SESSIONS, size=HYDRATE_SAMPLES, replace=False)
    start = time.perf_counter()
    for index in picks:
        registry.get(f"cold-{index}")
    mean_hydrate = (time.perf_counter() - start) / HYDRATE_SAMPLES

    print(
        f"\n{COLD_SESSIONS} cold checkpoints written in {populate:.1f}s; "
        f"mean hydrate {mean_hydrate * 1e3:.2f}ms over "
        f"{HYDRATE_SAMPLES} random sessions"
    )
    assert registry.stats()["hydrated"] == HYDRATE_SAMPLES
    assert mean_hydrate <= HYDRATE_BUDGET_SECONDS, (
        f"mean cold-hydrate latency {mean_hydrate * 1e3:.1f}ms exceeds "
        f"{HYDRATE_BUDGET_SECONDS * 1e3:.0f}ms with "
        f"{COLD_SESSIONS} sessions on disk"
    )
    manager.close()
