"""Benchmark: service ingest throughput, batched vs per-branch RPC.

The protocol's ``observe`` op carries a *batch* of (pc, instructions)
pairs per request precisely so the per-request costs — JSON framing,
syscalls, event-loop turns — amortize over many branches. This
benchmark drives the same branch stream through a live service twice,
once as one request per branch and once in large batches, and asserts
the batched path sustains at least 5x the per-branch RPC branch rate
(the acceptance floor; in practice it is orders of magnitude higher).

A second test checks the absolute batched rate is fast enough to be a
deployable monitor feed, and a third that the bounded ingest queue
(the backpressure mechanism) does not deadlock a stream much larger
than the queue.
"""

import time

import numpy as np

from repro.service import PhaseServiceClient, start_in_thread

BRANCHES = 12_000
BATCH = 2_000
INTERVAL_INSTRUCTIONS = 100_000
PER_BRANCH_SAMPLE = 600       # per-branch RPC is slow; sample and scale
SPEEDUP_FLOOR = 5.0


def _branch_stream(seed=0, n=BRANCHES):
    rng = np.random.default_rng(seed)
    pcs = [int(pc) for pc in 0x400000 + rng.integers(0, 64, size=n) * 4]
    counts = [int(c) for c in rng.integers(50, 150, size=n)]
    return pcs, counts


def _batched_rate(client, pcs, counts):
    session = client.open_session(
        interval_instructions=INTERVAL_INSTRUCTIONS
    )
    start = time.perf_counter()
    for begin in range(0, len(pcs), BATCH):
        client.observe(
            session, pcs[begin:begin + BATCH], counts[begin:begin + BATCH]
        )
    elapsed = time.perf_counter() - start
    client.close_session(session)
    return len(pcs) / elapsed


def _per_branch_rate(client, pcs, counts):
    session = client.open_session(
        interval_instructions=INTERVAL_INSTRUCTIONS
    )
    start = time.perf_counter()
    for pc, count in zip(pcs, counts):
        client.observe(session, [pc], [count])
    elapsed = time.perf_counter() - start
    client.close_session(session)
    return len(pcs) / elapsed


def test_batched_observe_is_5x_per_branch_rpc():
    pcs, counts = _branch_stream()
    with start_in_thread() as handle:
        with PhaseServiceClient(port=handle.port) as client:
            _batched_rate(client, pcs[:BATCH], counts[:BATCH])  # warm-up
            batched = _batched_rate(client, pcs, counts)
            per_branch = _per_branch_rate(
                client, pcs[:PER_BRANCH_SAMPLE], counts[:PER_BRANCH_SAMPLE]
            )
    speedup = batched / per_branch
    print(
        f"\nbatched {batched / 1e3:.0f} kbranches/s, per-branch RPC "
        f"{per_branch / 1e3:.1f} kbranches/s, speedup {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched observe only {speedup:.1f}x the per-branch RPC rate; "
        f"the protocol requires >= {SPEEDUP_FLOOR}x"
    )


def test_batched_rate_is_deployable():
    """The batched path should comfortably outrun a real branch feed
    sampled at monitoring granularity (>= 50k records/s end to end,
    classification included)."""
    pcs, counts = _branch_stream(seed=1)
    with start_in_thread() as handle:
        with PhaseServiceClient(port=handle.port) as client:
            _batched_rate(client, pcs[:BATCH], counts[:BATCH])  # warm-up
            rate = _batched_rate(client, pcs, counts)
    assert rate >= 50_000, f"batched ingest only {rate:.0f} branches/s"


def test_backpressure_queue_does_not_deadlock():
    """A stream of many more requests than the ingest queue holds must
    complete: the bounded queue throttles the reader, it never drops or
    wedges."""
    pcs, counts = _branch_stream(seed=2, n=4_000)
    with start_in_thread(queue_size=2) as handle:
        with PhaseServiceClient(port=handle.port) as client:
            session = client.open_session(
                interval_instructions=INTERVAL_INSTRUCTIONS
            )
            intervals = 0
            for begin in range(0, len(pcs), 100):   # 40 requests, queue of 2
                intervals += len(client.observe(
                    session, pcs[begin:begin + 100],
                    counts[begin:begin + 100],
                ))
            summary = client.close_session(session)
    assert summary["branches"] == len(pcs)
    assert intervals == summary["intervals"] > 0
