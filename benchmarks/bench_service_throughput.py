"""Benchmark: service ingest throughput, batched vs per-branch RPC.

The protocol's ``observe`` op carries a *batch* of (pc, instructions)
pairs per request precisely so the per-request costs — JSON framing,
syscalls, event-loop turns — amortize over many branches. This
benchmark drives the same branch stream through a live service twice,
once as one request per branch and once in large batches, and asserts
the batched path sustains at least 5x the per-branch RPC branch rate
(the acceptance floor; in practice it is orders of magnitude higher).

A second test checks the absolute batched rate is fast enough to be a
deployable monitor feed, and a third that the bounded ingest queue
(the backpressure mechanism) does not deadlock a stream much larger
than the queue.

The file doubles as the *cluster* load generator: ``_cluster_rate``
drives concurrent sessions through a ``repro.cluster`` dispatcher with
N worker processes, ``test_cluster_scaling_on_multicore`` asserts a
4-worker cluster sustains >= 2.5x the 1-worker rate on a >= 4-core box
(skipped on smaller machines — classification is CPU-bound, so extra
worker processes on one core only add dispatch overhead), and
``python benchmarks/bench_service_throughput.py --workers N`` runs the
generator standalone for TRAJECTORY.md numbers.
"""

import json
import os
import socket
import tempfile
import threading
import time

import numpy as np

from repro.cluster import start_cluster_in_thread
from repro.service import PhaseServiceClient, start_in_thread

BRANCHES = 12_000
BATCH = 2_000
INTERVAL_INSTRUCTIONS = 100_000
PER_BRANCH_SAMPLE = 600       # per-branch RPC is slow; sample and scale
SPEEDUP_FLOOR = 5.0


def _branch_stream(seed=0, n=BRANCHES):
    rng = np.random.default_rng(seed)
    pcs = [int(pc) for pc in 0x400000 + rng.integers(0, 64, size=n) * 4]
    counts = [int(c) for c in rng.integers(50, 150, size=n)]
    return pcs, counts


def _batched_rate(client, pcs, counts):
    session = client.open_session(
        interval_instructions=INTERVAL_INSTRUCTIONS
    )
    start = time.perf_counter()
    for begin in range(0, len(pcs), BATCH):
        client.observe(
            session, pcs[begin:begin + BATCH], counts[begin:begin + BATCH]
        )
    elapsed = time.perf_counter() - start
    client.close_session(session)
    return len(pcs) / elapsed


def _per_branch_rate(client, pcs, counts):
    session = client.open_session(
        interval_instructions=INTERVAL_INSTRUCTIONS
    )
    start = time.perf_counter()
    for pc, count in zip(pcs, counts):
        client.observe(session, [pc], [count])
    elapsed = time.perf_counter() - start
    client.close_session(session)
    return len(pcs) / elapsed


def test_batched_observe_is_5x_per_branch_rpc():
    pcs, counts = _branch_stream()
    with start_in_thread() as handle:
        with PhaseServiceClient(port=handle.port) as client:
            _batched_rate(client, pcs[:BATCH], counts[:BATCH])  # warm-up
            batched = _batched_rate(client, pcs, counts)
            per_branch = _per_branch_rate(
                client, pcs[:PER_BRANCH_SAMPLE], counts[:PER_BRANCH_SAMPLE]
            )
    speedup = batched / per_branch
    print(
        f"\nbatched {batched / 1e3:.0f} kbranches/s, per-branch RPC "
        f"{per_branch / 1e3:.1f} kbranches/s, speedup {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched observe only {speedup:.1f}x the per-branch RPC rate; "
        f"the protocol requires >= {SPEEDUP_FLOOR}x"
    )


def test_batched_rate_is_deployable():
    """The batched path should comfortably outrun a real branch feed
    sampled at monitoring granularity (>= 50k records/s end to end,
    classification included)."""
    pcs, counts = _branch_stream(seed=1)
    with start_in_thread() as handle:
        with PhaseServiceClient(port=handle.port) as client:
            _batched_rate(client, pcs[:BATCH], counts[:BATCH])  # warm-up
            rate = _batched_rate(client, pcs, counts)
    assert rate >= 50_000, f"batched ingest only {rate:.0f} branches/s"


CLUSTER_SESSIONS = 8          # concurrent sessions spread over the fleet
CLUSTER_BRANCHES = 24_000     # per session
CLUSTER_SCALING_FLOOR = 2.5   # 4 workers vs 1 on a >= 4-core box


def _drive_session(port, name, pcs, counts, errors):
    try:
        with PhaseServiceClient(port=port, timeout=120.0) as client:
            client.open_session(
                session=name, interval_instructions=INTERVAL_INSTRUCTIONS
            )
            for begin in range(0, len(pcs), BATCH):
                client.observe(
                    name,
                    pcs[begin:begin + BATCH],
                    counts[begin:begin + BATCH],
                )
            client.close_session(name)
    except Exception as error:  # surfaced by the caller
        errors.append((name, error))


def _cluster_rate(workers, sessions=CLUSTER_SESSIONS,
                  branches=CLUSTER_BRANCHES):
    """Aggregate branches/s through a dispatcher with ``workers``
    worker processes, ``sessions`` concurrent loader threads (one
    client + one session each, batched observes)."""
    streams = [
        _branch_stream(seed=10 + index, n=branches)
        for index in range(sessions)
    ]
    with tempfile.TemporaryDirectory(prefix="bench-cluster-") as tmp:
        with start_cluster_in_thread(
            port=0, workers=workers, runtime_dir=tmp,
            max_connections=sessions + 8,
        ) as cluster:
            errors = []
            loaders = [
                threading.Thread(
                    target=_drive_session,
                    args=(cluster.port, f"load-{index}", pcs, counts,
                          errors),
                )
                for index, (pcs, counts) in enumerate(streams)
            ]
            start = time.perf_counter()
            for loader in loaders:
                loader.start()
            for loader in loaders:
                loader.join()
            elapsed = time.perf_counter() - start
            assert not errors, f"load generator failed: {errors[:3]}"
    return sessions * branches / elapsed


def test_cluster_dispatcher_overhead_is_bounded():
    """Routing through the dispatcher + a worker process must keep a
    usable fraction of the single-process batched rate — the proxy adds
    one hop, not an order of magnitude."""
    pcs, counts = _branch_stream(seed=9)
    with start_in_thread() as handle:
        with PhaseServiceClient(port=handle.port) as client:
            _batched_rate(client, pcs[:BATCH], counts[:BATCH])
            direct = _batched_rate(client, pcs, counts)
    with tempfile.TemporaryDirectory(prefix="bench-cluster-") as tmp:
        with start_cluster_in_thread(
            port=0, workers=1, runtime_dir=tmp
        ) as cluster:
            with PhaseServiceClient(
                port=cluster.port, timeout=120.0
            ) as client:
                _batched_rate(client, pcs[:BATCH], counts[:BATCH])
                proxied = _batched_rate(client, pcs, counts)
    retained = proxied / direct
    print(
        f"\ndirect {direct / 1e3:.0f} kbranches/s, via dispatcher "
        f"{proxied / 1e3:.0f} kbranches/s ({retained:.0%} retained)"
    )
    assert retained >= 0.25, (
        f"dispatcher hop keeps only {retained:.0%} of the direct rate"
    )


def test_cluster_scaling_on_multicore():
    """4 workers >= 2.5x 1 worker — only meaningful when the box has
    cores for the workers to spread over."""
    cores = os.cpu_count() or 1
    one = _cluster_rate(workers=1)
    two = _cluster_rate(workers=2)
    four = _cluster_rate(workers=4)
    print(
        f"\ncluster scaling ({cores} cores): "
        f"1w {one / 1e3:.0f} kbranches/s, "
        f"2w {two / 1e3:.0f} kbranches/s, "
        f"4w {four / 1e3:.0f} kbranches/s "
        f"({four / one:.2f}x)"
    )
    if cores < 4:
        import pytest

        pytest.skip(
            f"scaling floor needs >= 4 cores, box has {cores}; "
            f"rates recorded above"
        )
    assert four / one >= CLUSTER_SCALING_FLOOR, (
        f"4-worker cluster only {four / one:.2f}x a single worker; "
        f"the floor on a {cores}-core box is {CLUSTER_SCALING_FLOOR}x"
    )


def test_backpressure_queue_does_not_deadlock():
    """A stream of many more requests than the ingest queue holds must
    complete: the bounded queue throttles the reader, it never drops or
    wedges."""
    pcs, counts = _branch_stream(seed=2, n=4_000)
    with start_in_thread(queue_size=2) as handle:
        with PhaseServiceClient(port=handle.port) as client:
            session = client.open_session(
                interval_instructions=INTERVAL_INSTRUCTIONS
            )
            intervals = 0
            for begin in range(0, len(pcs), 100):   # 40 requests, queue of 2
                intervals += len(client.observe(
                    session, pcs[begin:begin + 100],
                    counts[begin:begin + 100],
                ))
            summary = client.close_session(session)
    assert summary["branches"] == len(pcs)
    assert intervals == summary["intervals"] > 0


COALESCE_SESSIONS = 1_024     # >= 1k concurrent sessions (the target)
COALESCE_CONNECTIONS = 8      # pipelined NDJSON loader connections
COALESCE_OBSERVES = 6         # observes per session
COALESCE_RECORDS = 40         # records per observe
COALESCE_INTERVAL = 4_000     # ~1 boundary per observe: classify-bound
COALESCE_FLOOR = 2.0          # acceptance: fused rounds >= 2x


def _coalesce_plan(connection_index, names):
    """One loader connection's pipelined request bytes: open every
    session, then observes round-robin across them (so consecutive
    requests hit different sessions — the coalescing-friendly *and*
    per-session-path-worst interleave a real fleet produces), then
    close. Returns ``(payload, request_count)``."""
    rng = np.random.default_rng(100 + connection_index)
    lines = []
    next_id = 1
    for name in names:
        lines.append(json.dumps({
            "op": "open", "id": next_id, "session": name,
            "interval_instructions": COALESCE_INTERVAL,
        }))
        next_id += 1
    for _ in range(COALESCE_OBSERVES):
        for name in names:
            pcs = (
                0x400000
                + rng.integers(0, 64, size=COALESCE_RECORDS) * 4
            ).tolist()
            counts = rng.integers(50, 150, size=COALESCE_RECORDS).tolist()
            lines.append(json.dumps({
                "op": "observe", "id": next_id, "session": name,
                "pcs": pcs, "counts": counts, "cpi": 1.2,
            }))
            next_id += 1
    for name in names:
        lines.append(json.dumps({
            "op": "close", "id": next_id, "session": name,
        }))
        next_id += 1
    return ("\n".join(lines) + "\n").encode(), next_id - 1


def _ndjson_rate(coalesce, sessions=COALESCE_SESSIONS,
                 connections=COALESCE_CONNECTIONS):
    """Single-process NDJSON ingest records/s at ``sessions``
    concurrent sessions, pool-backed, coalescing on or off. Writer
    threads keep every connection's pipeline full while the main
    thread drains responses."""
    per_connection = sessions // connections
    plans = [
        _coalesce_plan(index, [
            f"c{index}-s{slot}" for slot in range(per_connection)
        ])
        for index in range(connections)
    ]
    records = (
        connections * per_connection
        * COALESCE_OBSERVES * COALESCE_RECORDS
    )
    with start_in_thread(
        max_sessions=sessions + 8, pool_slots=sessions + 8,
        max_connections=connections + 8, coalesce=coalesce,
    ) as handle:
        socks = [
            socket.create_connection(
                ("127.0.0.1", handle.port), timeout=600
            )
            for _ in plans
        ]
        start = time.perf_counter()
        writers = [
            threading.Thread(target=sock.sendall, args=(payload,))
            for sock, (payload, _) in zip(socks, plans)
        ]
        for writer in writers:
            writer.start()
        for sock, (_, expected) in zip(socks, plans):
            reader = sock.makefile("rb")
            answered = 0
            while answered < expected:
                line = reader.readline()
                assert line, "connection closed mid-benchmark"
                # Acks serialize as {"id":...}; pushes as {"push":...}.
                if line.startswith(b'{"id"'):
                    answered += 1
            reader.close()
        elapsed = time.perf_counter() - start
        for writer in writers:
            writer.join()
        for sock in socks:
            sock.close()
    return records / elapsed


def test_coalesced_ingest_is_2x_per_session_path():
    """The tentpole acceptance bench: at >= 1k concurrent pool-backed
    sessions, fused cross-session rounds must at least double the
    per-session NDJSON ingest rate."""
    per_session = _ndjson_rate(coalesce=False)
    coalesced = _ndjson_rate(coalesce=True)
    speedup = coalesced / per_session
    print(
        f"\n{COALESCE_SESSIONS} sessions: per-session "
        f"{per_session / 1e3:.0f} krec/s, coalesced "
        f"{coalesced / 1e3:.0f} krec/s, speedup {speedup:.1f}x"
    )
    assert speedup >= COALESCE_FLOOR, (
        f"coalesced ingest only {speedup:.1f}x the per-session path; "
        f"the acceptance floor is {COALESCE_FLOOR}x"
    )


def _coalesce_main():
    """``--coalesce``: measure coalesced vs per-session single-process
    NDJSON ingest and append the row to benchmarks/TRAJECTORY.md."""
    best = {"per-session": 0.0, "coalesced": 0.0}
    for _ in range(3):
        best["per-session"] = max(
            best["per-session"], _ndjson_rate(coalesce=False)
        )
        best["coalesced"] = max(
            best["coalesced"], _ndjson_rate(coalesce=True)
        )
    speedup = best["coalesced"] / best["per-session"]
    line = (
        f"| {COALESCE_SESSIONS:,} | {COALESCE_CONNECTIONS} "
        f"| {best['coalesced']:,.0f} | {best['per-session']:,.0f} "
        f"| {speedup:.1f}x |"
    )
    print(
        f"{COALESCE_SESSIONS} sessions over {COALESCE_CONNECTIONS} "
        f"connections: coalesced {best['coalesced'] / 1e3:.0f} krec/s, "
        f"per-session {best['per-session'] / 1e3:.0f} krec/s "
        f"({speedup:.1f}x)"
    )
    trajectory = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "TRAJECTORY.md"
    )
    header = (
        "\n## bench_service_throughput: coalesced ingest "
        "(single-process NDJSON rec/s, best of 3, pool-backed, "
        f"{COALESCE_OBSERVES} observes x {COALESCE_RECORDS} records "
        "per session)\n\n"
        "| sessions | connections | coalesced rec/s | "
        "per-session rec/s | speedup |\n"
        "|---|---|---|---|---|\n"
    )
    with open(trajectory, "r+", encoding="utf-8") as handle:
        content = handle.read()
        if header.strip().splitlines()[0] not in content:
            handle.write(header)
        handle.write(line + "\n")
    print(f"appended to {trajectory}")
    return 0


def main(argv=None):
    """Standalone cluster load generator:
    ``python benchmarks/bench_service_throughput.py --workers 4``."""
    import argparse

    parser = argparse.ArgumentParser(
        description=(
            "Drive concurrent batched sessions through a repro.cluster "
            "dispatcher and report aggregate branches/s."
        )
    )
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes (default 1)")
    parser.add_argument("--sessions", type=int, default=CLUSTER_SESSIONS,
                        help="concurrent loader sessions (default "
                        f"{CLUSTER_SESSIONS})")
    parser.add_argument("--branches", type=int, default=CLUSTER_BRANCHES,
                        help="branches per session (default "
                        f"{CLUSTER_BRANCHES})")
    parser.add_argument("--coalesce", action="store_true",
                        help="run the coalesced-vs-per-session ingest "
                        "comparison instead and append it to "
                        "benchmarks/TRAJECTORY.md")
    args = parser.parse_args(argv)
    if args.coalesce:
        return _coalesce_main()
    rate = _cluster_rate(
        workers=args.workers, sessions=args.sessions,
        branches=args.branches,
    )
    print(
        f"{args.workers} worker(s), {args.sessions} sessions x "
        f"{args.branches} branches: {rate / 1e3:.0f} kbranches/s "
        f"aggregate ({os.cpu_count()} cores)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
