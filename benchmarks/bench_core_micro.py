"""Microbenchmarks of the classifier hot paths.

Not a paper figure: these measure the throughput of the structures an
online implementation would care about — signature formation, table
search, and whole-interval classification.
"""

import numpy as np

from repro.core import ClassifierConfig, PhaseClassifier
from repro.core.distance import relative_distance_matrix
from repro.workloads import benchmark as make_benchmark


def test_signature_formation(benchmark):
    trace = make_benchmark("gzip/p", scale=0.05)
    classifier = PhaseClassifier(ClassifierConfig.paper_default())
    interval = trace[0]
    signature = benchmark(classifier.signature_for, interval)
    assert signature.dimensions == 16


def test_distance_matrix_32_entries(benchmark):
    rng = np.random.default_rng(0)
    matrix = rng.integers(0, 64, size=(32, 16))
    vector = rng.integers(0, 64, size=16)
    distances = benchmark(relative_distance_matrix, matrix, vector)
    assert distances.shape == (32,)


def test_classify_trace_throughput(benchmark):
    trace = make_benchmark("bzip2/p", scale=0.1)

    def classify():
        classifier = PhaseClassifier(ClassifierConfig.paper_default())
        return classifier.classify_trace(trace)

    run = benchmark(classify)
    assert len(run) == len(trace)
