"""Benchmark: related-work baselines (paper §2).

Working-set signature classification (Dhodapkar & Smith) and
Duesterwald-style CPI value predictors against this paper's mechanisms.
"""

import numpy as np

from repro.harness.experiment import run_experiment


def test_baselines_comparison(benchmark, warm_caches):
    result = benchmark.pedantic(
        lambda: run_experiment("baselines", scale=warm_caches),
        rounds=1, iterations=1,
    )
    # Without a transition phase, the working-set detector allocates
    # more phase IDs on the irregular benchmarks (index 4, 5 = gcc).
    ours = result.data["ours_phases"]
    theirs = result.data["working_set_phases"]
    assert theirs[4] + theirs[5] > ours[4] + ours[5]
    # All predictors produce sane CPI errors.
    for series in result.data["mape"].values():
        assert 0.0 <= np.mean(series) < 60.0
    print()
    print(result.rendered)
