"""Benchmark: Figure 8 — phase change prediction.

Regenerates the Figure 8 stacked bars and asserts the paper's shape:
plain predictors catch a minority of changes; Last-4/Top-N variants
roughly half; Perfect Markov-1 bounds everything via cold-start.
"""

from repro.harness.experiment import run_experiment


def test_fig8_change_prediction(benchmark, warm_caches):
    result = benchmark.pedantic(
        lambda: run_experiment("fig8", scale=warm_caches),
        rounds=1, iterations=1,
    )
    accuracy = dict(zip(result.data["labels"], result.data["accuracy"]))
    assert accuracy["Perfect Markov 1"] >= accuracy["Markov 2"] - 2.0
    assert accuracy["Top 4 Markov 1"] > accuracy["Markov 2"]
    assert accuracy["Last4 Markov 1"] > accuracy["Markov 2"]
    assert 20.0 < accuracy["Markov 2"] < 65.0
    print()
    print(result.rendered)
