"""Ablation: interval granularity (paper §3).

The paper evaluates 10M-instruction intervals and notes that similar
code-based classification "works very well at 1M and 100M interval
sizes". The dynamic bit selector (§4.2) is what makes this work
without retuning: its window follows the average counter value, which
scales with the interval length. This ablation classifies one
benchmark at 1M / 10M / 100M and checks the quality holds.
"""

import numpy as np

from repro.analysis.cov import weighted_cov
from repro.core import ClassifierConfig, PhaseClassifier
from repro.workloads import build_benchmark

INTERVAL_SIZES = (1_000_000, 10_000_000, 100_000_000)


def _classify_at(interval_instructions):
    generator = build_benchmark(
        "bzip2/g", scale=0.3, interval_instructions=interval_instructions
    )
    trace = generator.generate()
    config = ClassifierConfig(
        num_counters=16, table_entries=32,
        similarity_threshold=0.25, min_count_threshold=8,
    )
    run = PhaseClassifier(config).classify_trace(trace)
    return weighted_cov(run, trace), run.num_phases, run.transition_fraction


def test_ablation_interval_size(benchmark):
    def sweep():
        return {size: _classify_at(size) for size in INTERVAL_SIZES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("  interval  CoV%   phases  transition%")
    for size, (cov, phases, transition) in results.items():
        print(f"  {size / 1e6:6.0f}M  {cov * 100:5.1f}  {phases:6d}"
              f"  {transition * 100:10.1f}")
    covs = [cov for cov, _, _ in results.values()]
    # Classification quality holds across two orders of magnitude of
    # interval size (the dynamic bit selector's job).
    assert max(covs) < 0.35
    assert max(covs) - min(covs) < 0.15
