"""Benchmark: TrackerPool vs a loop of scalar PhaseTrackers.

The SoA pool's claim is throughput at fleet scale: one
``observe_batch`` call ingests branch records for thousands of
concurrent sessions and classifies every interval boundary in a
handful of vectorized passes, where the scalar path pays Python-level
per-record and per-boundary cost in each tracker.

The workload models a service ingesting interleaved streams: records
arrive in small per-session flushes (a couple of records per session
per round, shuffled across sessions), and intervals are sized so every
session crosses a boundary mid-run — so the measurement covers
ingest, signature formation, batched classification, and predictor
updates. The scalar loop pays a fixed Python dispatch cost per
session per flush; the pool folds a whole round into one call.

Run ``python benchmarks/bench_tracker_pool.py`` to measure the
1k/4k/16k grid directly and append the results to
``benchmarks/TRAJECTORY.md``; the pytest-benchmark entry points cover
the same drive functions for trend tracking.
"""

import time

import numpy as np

from repro.core import ClassifierConfig, PhaseTracker, TrackerPool

RECORDS_PER_SESSION = 60  # 30 rounds x 2 records per flush
ROUNDS = 30
INTERVAL_INSTRUCTIONS = 4_000  # ~40 records per interval: real boundaries
SESSION_GRID = (1_000, 4_000, 16_000)


def build_workload(sessions, seed=0):
    """Per-round interleaved (session, pc, count) streams."""
    rng = np.random.default_rng(seed)
    per_round = sessions * (RECORDS_PER_SESSION // ROUNDS)
    rounds = []
    for _ in range(ROUNDS):
        slots = rng.permutation(
            np.repeat(np.arange(sessions), RECORDS_PER_SESSION // ROUNDS)
        )
        pcs = 0x400000 + (
            (slots % 7) * 64 + rng.integers(0, 24, size=per_round)
        ) * 4
        counts = rng.integers(50, 150, size=per_round)
        rounds.append((slots, pcs, counts))
    return rounds


def drive_pool(sessions, rounds):
    pool = TrackerPool(
        capacity=sessions, config=ClassifierConfig.paper_default()
    )
    handles = [
        pool.acquire(interval_instructions=INTERVAL_INSTRUCTIONS)
        for _ in range(sessions)
    ]
    slot_ids = np.array([handle.slot for handle in handles])
    reports = 0
    for slots, pcs, counts in rounds:
        reports += len(
            pool.observe_batch(slot_ids[slots], pcs, counts, cpi=1.0)
        )
    return reports


def drive_scalar(sessions, rounds):
    trackers = [
        PhaseTracker(
            ClassifierConfig.paper_default(),
            interval_instructions=INTERVAL_INSTRUCTIONS,
        )
        for _ in range(sessions)
    ]
    reports = 0
    for slots, pcs, counts in rounds:
        order = np.argsort(slots, kind="stable")
        grouped_slots = slots[order]
        grouped_pcs = pcs[order]
        grouped_counts = counts[order]
        boundaries = np.flatnonzero(np.diff(grouped_slots)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(grouped_slots)]))
        for start, end in zip(starts, ends):
            reports += len(
                trackers[grouped_slots[start]].observe_batch(
                    grouped_pcs[start:end],
                    grouped_counts[start:end],
                    cpi=1.0,
                )
            )
    return reports


def test_pool_1k_sessions(benchmark):
    rounds = build_workload(1_000)
    reports = benchmark(drive_pool, 1_000, rounds)
    assert reports > 0


def test_pool_4k_sessions(benchmark):
    rounds = build_workload(4_000)
    reports = benchmark(drive_pool, 4_000, rounds)
    assert reports > 0


def test_pool_16k_sessions(benchmark):
    rounds = build_workload(16_000)
    reports = benchmark(drive_pool, 16_000, rounds)
    assert reports > 0


def test_scalar_loop_4k_sessions(benchmark):
    rounds = build_workload(4_000)
    reports = benchmark(drive_scalar, 4_000, rounds)
    assert reports > 0


def test_pool_is_5x_over_scalar_loop_at_4k():
    """The PR's acceptance bar: >= 5x throughput at 4k sessions."""
    rounds = build_workload(4_000)
    drive_pool(4_000, rounds)  # warm numpy/code paths
    start = time.perf_counter()
    pool_reports = drive_pool(4_000, rounds)
    pool_seconds = time.perf_counter() - start
    start = time.perf_counter()
    scalar_reports = drive_scalar(4_000, rounds)
    scalar_seconds = time.perf_counter() - start
    assert pool_reports == scalar_reports
    assert scalar_seconds / pool_seconds >= 5.0


def _measure(fn, sessions, rounds, repeats=3):
    best = float("inf")
    reports = 0
    for _ in range(repeats):
        start = time.perf_counter()
        reports = fn(sessions, rounds)
        best = min(best, time.perf_counter() - start)
    return best, reports


def main():
    lines = []
    records = RECORDS_PER_SESSION
    for sessions in SESSION_GRID:
        rounds = build_workload(sessions)
        drive_pool(sessions, rounds)  # warm-up
        pool_s, pool_reports = _measure(drive_pool, sessions, rounds)
        scalar_s, scalar_reports = _measure(
            drive_scalar, sessions, rounds, repeats=1
        )
        assert pool_reports == scalar_reports
        total = sessions * records
        line = (
            f"| {sessions:>6,} | {total / pool_s:>12,.0f} | "
            f"{total / scalar_s:>12,.0f} | {scalar_s / pool_s:>6.1f}x | "
            f"{pool_reports:>7,} |"
        )
        print(line)
        lines.append(line)

    from pathlib import Path

    trajectory = Path(__file__).parent / "TRAJECTORY.md"
    header = not trajectory.exists()
    with trajectory.open("a") as out:
        if header:
            out.write("# Benchmark trajectory\n\nAppend-only measured "
                      "results, newest last.\n")
        out.write("\n## bench_tracker_pool (records/s, best of 3, "
                  f"{records} records/session)\n\n")
        out.write("| sessions | pool rec/s | scalar rec/s | speedup | "
                  "reports |\n|---|---|---|---|---|\n")
        out.write("\n".join(lines) + "\n")
    print(f"appended to {trajectory}")


if __name__ == "__main__":
    main()
