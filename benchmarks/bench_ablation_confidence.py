"""Ablation: last-value confidence counter geometry (paper §5.1).

The paper "experimented with a variety of confidence counter
configurations" but shows only the 3-bit/threshold-6 point. This sweep
reproduces the whole accuracy/coverage trade-off curve.
"""

from repro.core import ClassifierConfig
from repro.harness.cache import cached_classified
from repro.prediction.last_value import LastValuePredictor
from repro.workloads import BENCHMARK_NAMES

GEOMETRIES = ((1, 1), (2, 2), (2, 3), (3, 6), (3, 7), (4, 14))


def _curve(scale):
    config = ClassifierConfig.paper_default()
    points = {}
    for bits, threshold in GEOMETRIES:
        confident = correct_confident = total = 0
        for name in BENCHMARK_NAMES:
            run = cached_classified(name, config, scale)
            predictor = LastValuePredictor(
                confidence_bits=bits, confidence_threshold=threshold
            )
            ids = run.phase_ids
            predictor.observe(int(ids[0]))
            for actual in ids[1:]:
                prediction = predictor.predict()
                total += 1
                if prediction.confident:
                    confident += 1
                    correct_confident += (
                        prediction.phase_id == int(actual)
                    )
                predictor.observe(int(actual))
        coverage = confident / total
        accuracy = correct_confident / max(confident, 1)
        points[(bits, threshold)] = (accuracy, coverage)
    return points


def test_ablation_confidence_geometry(benchmark, warm_caches):
    points = benchmark.pedantic(
        lambda: _curve(warm_caches), rounds=1, iterations=1
    )
    print()
    print("  bits/thresh  conf-accuracy  coverage")
    for (bits, threshold), (accuracy, coverage) in points.items():
        print(f"  {bits}b/{threshold:2d}      {accuracy * 100:12.1f}"
              f"  {coverage * 100:8.1f}")
    # Stricter confidence must not reduce accuracy, and must reduce
    # coverage, relative to the most permissive geometry.
    loose_acc, loose_cov = points[(1, 1)]
    strict_acc, strict_cov = points[(4, 14)]
    assert strict_acc >= loose_acc - 0.01
    assert strict_cov <= loose_cov + 0.01
