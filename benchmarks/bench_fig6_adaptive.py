"""Benchmark: Figure 6 — dynamic similarity thresholds.

Regenerates the Figure 6 series and asserts the paper's shape: dynamic
thresholds reduce CoV versus the static 25% configuration with only a
modest increase in phase count; mcf benefits most.
"""

import numpy as np

from repro.harness.experiment import run_experiment

MCF = 8  # index in BENCHMARK_NAMES order


def test_fig6_adaptive_thresholds(benchmark, warm_caches):
    result = benchmark.pedantic(
        lambda: run_experiment("fig6", scale=warm_caches),
        rounds=1, iterations=1,
    )
    cov = result.data["cov"]
    assert np.mean(cov["25% dyn+25% dev"]) < np.mean(cov["25% static"])
    assert cov["25% dyn+25% dev"][MCF] < cov["25% static"][MCF]
    phases = result.data["phases"]
    assert np.mean(phases["25% dyn+25% dev"]) < (
        3 * np.mean(phases["25% static"])
    )
    print()
    print(result.rendered)
