"""Benchmark: the parallel experiment engine and the on-disk store.

Times the full deduplicated work grid of every registered experiment at
scale 0.25 three ways — cold sequential (``--jobs 1``), cold parallel
(``--jobs 4``), and warm from the on-disk store — and asserts the
engine's headline claims:

- cold ``--jobs 4`` is >= 2.5x faster than cold ``--jobs 1`` (only
  asserted on machines with >= 4 cores; a 1-core container cannot
  parallelize);
- a warm store start is >= 5x faster than cold sequential compute.
"""

import os
import time

from repro.harness.cache import clear_cache
from repro.harness.engine import ExperimentEngine
from repro.harness.experiment import (
    EXPERIMENT_NAMES,
    experiment_work_units,
)
from repro.harness.store import ResultStore

SCALE = 0.25


def test_engine_parallel_and_store_speedups(tmp_path):
    units = experiment_work_units(list(EXPERIMENT_NAMES), scale=SCALE)
    assert units, "experiments declared no work units"

    def timed(jobs, store):
        clear_cache()
        engine = ExperimentEngine(jobs=jobs, store=store)
        start = time.perf_counter()
        report = engine.ensure(units)
        return time.perf_counter() - start, report

    seq_store = ResultStore(root=tmp_path / "seq-store")
    cold_seq, seq_report = timed(jobs=1, store=seq_store)
    assert seq_report.computed == seq_report.units

    cold_par, par_report = timed(
        jobs=4, store=ResultStore(root=tmp_path / "par-store")
    )
    assert par_report.computed == par_report.units

    warm, warm_report = timed(jobs=1, store=seq_store)
    assert warm_report.from_store == warm_report.units
    assert warm_report.computed == 0

    clear_cache()
    cores = os.cpu_count() or 1
    print()
    print(f"engine work grid: {len(units)} units at scale {SCALE}")
    print(f"  cold sequential (--jobs 1): {cold_seq:7.2f}s")
    print(f"  cold parallel   (--jobs 4): {cold_par:7.2f}s  "
          f"({cold_seq / cold_par:4.1f}x, {cores} cores)")
    print(f"  warm from store           : {warm:7.2f}s  "
          f"({cold_seq / warm:4.1f}x)")

    assert cold_seq / warm >= 5.0, (
        f"warm store start only {cold_seq / warm:.1f}x faster than cold "
        f"sequential (need >= 5x)"
    )
    if cores >= 4:
        assert cold_seq / cold_par >= 2.5, (
            f"cold --jobs 4 only {cold_seq / cold_par:.1f}x faster than "
            f"cold --jobs 1 on {cores} cores (need >= 2.5x)"
        )
