"""Ablation: distance normalization strategy (DESIGN.md §6).

The paper states thresholds as percentages without defining the
normalization. This ablation compares the default sum normalizer with
the max normalizer on classification quality.
"""

import numpy as np

from repro.analysis.cov import weighted_cov
from repro.core import ClassifierConfig, PhaseClassifier
from repro.core.distance import max_normalizer, sum_normalizer
from repro.harness.cache import cached_trace

NAMES = ("bzip2/p", "gcc/s", "mcf")


def _run(normalizer, scale):
    covs, phases = [], []
    for name in NAMES:
        trace = cached_trace(name, scale)
        classifier = PhaseClassifier(
            ClassifierConfig.paper_default(), normalizer=normalizer
        )
        run = classifier.classify_trace(trace)
        covs.append(weighted_cov(run, trace))
        phases.append(run.num_phases)
    return np.mean(covs), np.mean(phases)


def test_ablation_distance_normalizer(benchmark, warm_caches):
    def ablate():
        return {
            "sum": _run(sum_normalizer, warm_caches),
            "max": _run(max_normalizer, warm_caches),
        }

    results = benchmark.pedantic(ablate, rounds=1, iterations=1)
    print()
    for label, (cov, phases) in results.items():
        print(f"  {label} normalizer: CoV={cov * 100:.1f}% "
              f"phases={phases:.0f}")
    # Both normalizations must produce sane classifications.
    for cov, phases in results.values():
        assert 0.0 < cov < 0.6
        assert phases >= 1
