"""Benchmark: Figure 9 — run-length classes and length prediction.

Regenerates both Figure 9 graphs and asserts the paper's shape: the
shortest class dominates and the RLE-2 length predictor's misprediction
rate is low for the change-rich benchmarks.
"""

import numpy as np

from repro.harness.experiment import run_experiment

GCC_S = 5  # index in BENCHMARK_NAMES order


def test_fig9_length_prediction(benchmark, warm_caches):
    result = benchmark.pedantic(
        lambda: run_experiment("fig9", scale=warm_caches),
        rounds=1, iterations=1,
    )
    shortest = np.array(result.data["class_distribution"]["1-15"])
    assert shortest.mean() > 50.0
    assert result.data["misprediction"][GCC_S] < 20.0
    print()
    print(result.rendered)
