"""Benchmark: NDJSON ingest throughput with the HTTP gateway on.

The gateway's claim is that observability is free-riding: the ops
surface (HTTP listener, per-route metrics, an SSE subscriber pulling
live events, a Prometheus scraper polling ``/metrics``) shares the
service's event loop but must not tax the ingest hot path. This
benchmark drives the same branch stream through the NDJSON-over-TCP
client twice — once against a bare service, once against a service
with the gateway enabled *and under active observation* — and asserts
the observed ingest rate stays within 10%.

"Under active observation" is the honest configuration: one SSE
subscriber consuming every interval event plus one scraper hitting
``/metrics`` continuously, both for the full duration of the run.

Run ``python benchmarks/bench_http_gateway.py`` to measure and append
the results to ``benchmarks/TRAJECTORY.md``.
"""

import socket
import threading
import time
import urllib.request

import numpy as np

from repro.service import PhaseServiceClient, start_in_thread

BATCHES = 120
BATCH_SIZE = 400
INTERVAL_INSTRUCTIONS = 20_000
REPEATS = 3
OVERHEAD_BUDGET = 0.90  # gateway-on rate must stay >= 90% of bare
BASE_A, BASE_B = 0x400000, 0x900000


def branch_stream(seed=0):
    rng = np.random.default_rng(seed)
    batches = []
    for index in range(BATCHES):
        base = BASE_A if (index // 8) % 2 == 0 else BASE_B
        pcs = (base + rng.integers(0, 48, size=BATCH_SIZE) * 4).tolist()
        counts = rng.integers(20, 80, size=BATCH_SIZE).tolist()
        batches.append((pcs, counts))
    return batches


def _drive_ingest(port, batches, session):
    reports = 0
    with PhaseServiceClient(port=port) as client:
        client.open_session(
            session=session,
            interval_instructions=INTERVAL_INSTRUCTIONS,
        )
        for pcs, counts in batches:
            reports += len(client.observe(session, pcs, counts, cpi=1.0))
        client.close_session(session)
    return reports


class _Observers:
    """One SSE subscriber + one /metrics scraper, both busy-looping
    against the gateway for the duration of a measurement."""

    def __init__(self, host, port):
        self.host = host
        self.port = port
        self.stop = threading.Event()
        self.sse_bytes = 0
        self.scrapes = 0
        self.threads = [
            threading.Thread(target=self._subscribe, daemon=True),
            threading.Thread(target=self._scrape, daemon=True),
        ]

    def _subscribe(self):
        sock = socket.create_connection(
            (self.host, self.port), timeout=5
        )
        try:
            sock.settimeout(0.2)
            sock.sendall(
                b"GET /v1/events?types=interval HTTP/1.1\r\n"
                b"Host: bench\r\n\r\n"
            )
            while not self.stop.is_set():
                try:
                    chunk = sock.recv(65536)
                except socket.timeout:
                    continue
                if not chunk:
                    break
                self.sse_bytes += len(chunk)
        finally:
            sock.close()

    def _scrape(self):
        # 5 scrapes/s is already ~75x a production Prometheus cadence;
        # scraping with zero think-time would just measure how fast the
        # event loop can render text, not gateway overhead on ingest.
        url = f"http://{self.host}:{self.port}/metrics"
        while not self.stop.is_set():
            with urllib.request.urlopen(url, timeout=5) as response:
                response.read()
            self.scrapes += 1
            self.stop.wait(0.2)

    def __enter__(self):
        for thread in self.threads:
            thread.start()
        return self

    def __exit__(self, *exc):
        self.stop.set()
        for thread in self.threads:
            thread.join(timeout=5)
        return False


def measure(gateway, batches, repeats=REPEATS):
    """Best ingest rate (records/s) over ``repeats`` fresh services."""
    total = BATCHES * BATCH_SIZE
    best = 0.0
    reports = 0
    for attempt in range(repeats):
        kwargs = dict(max_sessions=8, pool_slots=8)
        if gateway:
            kwargs["http_port"] = 0
        handle = start_in_thread(**kwargs)
        try:
            if gateway:
                with _Observers(
                    handle.service.http_host, handle.service.http_port
                ):
                    start = time.perf_counter()
                    reports = _drive_ingest(
                        handle.port, batches, f"bench-{attempt}"
                    )
                    elapsed = time.perf_counter() - start
            else:
                start = time.perf_counter()
                reports = _drive_ingest(
                    handle.port, batches, f"bench-{attempt}"
                )
                elapsed = time.perf_counter() - start
        finally:
            handle.stop()
        best = max(best, total / elapsed)
    return best, reports


def test_gateway_overhead_stays_under_ten_percent():
    """The PR's acceptance bar: NDJSON ingest with the gateway enabled
    and actively observed keeps >= 90% of the bare rate."""
    batches = branch_stream()
    measure(gateway=False, batches=batches, repeats=1)  # warm-up
    off_rate, off_reports = measure(gateway=False, batches=batches)
    on_rate, on_reports = measure(gateway=True, batches=batches)
    assert on_reports == off_reports  # same stream, same boundaries
    ratio = on_rate / off_rate
    print(
        f"\nbare {off_rate:,.0f} rec/s, gateway-on {on_rate:,.0f} rec/s, "
        f"ratio {ratio:.3f}"
    )
    assert ratio >= OVERHEAD_BUDGET, (
        f"gateway-on ingest rate fell to {ratio:.3f}x of bare "
        f"(bare {off_rate:,.0f} rec/s, on {on_rate:,.0f} rec/s)"
    )


def main():
    batches = branch_stream()
    measure(gateway=False, batches=batches, repeats=1)  # warm-up
    off_rate, _ = measure(gateway=False, batches=batches)
    on_rate, _ = measure(gateway=True, batches=batches)
    ratio = on_rate / off_rate
    line = (
        f"| {off_rate:>12,.0f} | {on_rate:>12,.0f} | {ratio:>6.3f} | "
        f"{BATCHES * BATCH_SIZE:,} records |"
    )
    print(line)

    from pathlib import Path

    trajectory = Path(__file__).parent / "TRAJECTORY.md"
    with trajectory.open("a") as out:
        out.write(
            "\n## bench_http_gateway (NDJSON rec/s, best of "
            f"{REPEATS}; gateway-on runs with a live SSE subscriber "
            "and a continuous /metrics scraper)\n\n"
            "| bare rec/s | gateway-on rec/s | ratio | stream |\n"
            "|---|---|---|---|\n"
        )
        out.write(line + "\n")
    print(f"appended to {trajectory}")


if __name__ == "__main__":
    main()
