"""Microbenchmarks of the workload substrate.

Trace generation and (de)serialization throughput — the costs a
downstream user pays before any classification happens.
"""

from pathlib import Path

from repro.workloads import build_benchmark
from repro.workloads.io import load_trace, save_trace


def test_trace_generation_throughput(benchmark):
    generator = build_benchmark("bzip2/p", scale=0.1)
    generator.calibrations()  # calibration paid once, outside the loop

    trace = benchmark(generator.generate)
    assert len(trace) > 50


def test_trace_save_load_round_trip(benchmark, tmp_path):
    trace = build_benchmark("gzip/p", scale=0.1).generate()

    def round_trip():
        path = save_trace(trace, tmp_path / "bench_trace")
        return load_trace(path)

    loaded = benchmark(round_trip)
    assert len(loaded) == len(trace)


def test_region_calibration_amortized(benchmark):
    """Calibration dominates generator setup; measure it end to end."""

    def build_and_calibrate():
        generator = build_benchmark("ammp", scale=0.05)
        return generator.calibrations()

    calibrations = benchmark.pedantic(
        build_and_calibrate, rounds=3, iterations=1
    )
    assert len(calibrations) == 3
