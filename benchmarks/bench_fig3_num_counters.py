"""Benchmark: Figure 3 — CPI CoV and phase counts vs counters/signature.

Regenerates both Figure 3 graphs and asserts the paper's shape: 8
counters are insufficient; whole-program CoV dwarfs per-phase CoV.
"""

import numpy as np

from repro.harness.experiment import run_experiment


def test_fig3_num_counters(benchmark, warm_caches):
    result = benchmark.pedantic(
        lambda: run_experiment("fig3", scale=warm_caches),
        rounds=1, iterations=1,
    )
    cov = result.data["cov"]
    assert np.mean(cov["8 dim"]) > np.mean(cov["16 dim"])
    assert np.mean(cov["Whole Program"]) > 4 * np.mean(cov["16 dim"])
    print()
    print(result.rendered)
