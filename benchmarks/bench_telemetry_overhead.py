"""Benchmark: telemetry overhead on the PhaseTracker hot path.

The telemetry layer claims to be cheap enough for an always-on
monitor: per-branch work is untouched (counters are batched per
interval) and per-interval work adds a handful of lock-guarded counter
increments, four spans and one histogram observation. This benchmark
drives identical branch streams through a bare and a fully
instrumented tracker and asserts the instrumented branch-ingest
throughput stays within 15% of bare.

Event emission is exercised separately (against an in-memory sink) so
the headline comparison isolates metrics+tracing — the configuration a
deployed monitor would run between scrapes.
"""

import io
import time

import numpy as np

from repro.core import ClassifierConfig, PhaseTracker
from repro.harness.cache import cached_trace
from repro.telemetry import EventLog, Telemetry

BRANCHES = 30_000
INTERVAL_INSTRUCTIONS = 100_000  # ~1000 branches per interval
REPEATS = 7
OVERHEAD_BUDGET = 1.15


def _branch_stream(seed=0):
    rng = np.random.default_rng(seed)
    pcs = [
        int(pc)
        for pc in 0x400000 + rng.integers(0, 64, size=BRANCHES) * 4
    ]
    counts = [int(c) for c in rng.integers(50, 150, size=BRANCHES)]
    return pcs, counts


def _drive(pcs, counts, telemetry):
    tracker = PhaseTracker(
        ClassifierConfig.paper_default(),
        interval_instructions=INTERVAL_INSTRUCTIONS,
        telemetry=telemetry,
    )
    observe = tracker.observe_branch
    complete = tracker.complete_interval
    for pc, count in zip(pcs, counts):
        if observe(pc, count):
            complete(cpi=1.0)
    return tracker


def _best_seconds(make_telemetry):
    pcs, counts = _branch_stream()
    _drive(pcs, counts, make_telemetry())  # warm-up (JIT-free, but caches)
    best = float("inf")
    for _ in range(REPEATS):
        telemetry = make_telemetry()
        start = time.perf_counter()
        _drive(pcs, counts, telemetry)
        best = min(best, time.perf_counter() - start)
    return best


def test_instrumented_tracker_within_overhead_budget():
    bare = _best_seconds(lambda: None)
    instrumented = _best_seconds(Telemetry)
    ratio = instrumented / bare
    print(
        f"\nbare {BRANCHES / bare / 1e6:.2f} Mbranches/s, "
        f"instrumented {BRANCHES / instrumented / 1e6:.2f} Mbranches/s, "
        f"ratio {ratio:.3f}"
    )
    assert ratio <= OVERHEAD_BUDGET, (
        f"telemetry overhead {ratio:.3f}x exceeds the "
        f"{OVERHEAD_BUDGET}x budget (bare {bare:.4f}s, "
        f"instrumented {instrumented:.4f}s)"
    )


def test_event_stream_overhead_is_bounded_too():
    """With a JSONL sink attached the tracker must still be usable:
    events are per-interval, so even generous budgets hold."""
    bare = _best_seconds(lambda: None)
    with_events = _best_seconds(
        lambda: Telemetry(events=EventLog(stream=io.StringIO()))
    )
    assert with_events / bare <= 1.5


def test_cache_counters_via_isolated_fixture(isolated_caches):
    """The harness caches report hits/misses through telemetry, and the
    fixture guarantees a cold start regardless of test order."""
    cached_trace("gzip/g", 0.02)
    cached_trace("gzip/g", 0.02)
    metrics = isolated_caches.metrics
    assert metrics.get("repro_harness_trace_cache_misses_total").value == 1
    assert metrics.get("repro_harness_trace_cache_hits_total").value == 1


def main():
    bare = _best_seconds(lambda: None)
    instrumented = _best_seconds(Telemetry)
    with_events = _best_seconds(
        lambda: Telemetry(events=EventLog(stream=io.StringIO()))
    )
    line = (
        f"| {BRANCHES / bare / 1e6:>6.2f} | "
        f"{BRANCHES / instrumented / 1e6:>6.2f} | "
        f"{instrumented / bare:>5.3f} | "
        f"{BRANCHES / with_events / 1e6:>6.2f} | "
        f"{with_events / bare:>5.3f} |"
    )
    print(line)

    from pathlib import Path

    trajectory = Path(__file__).parent / "TRAJECTORY.md"
    with trajectory.open("a") as out:
        out.write(
            "\n## bench_telemetry_overhead (Mbranches/s, best of "
            f"{REPEATS})\n\n"
            "| bare | instrumented | ratio | +events | ratio |\n"
            "|---|---|---|---|---|\n"
        )
        out.write(line + "\n")
    print(f"appended to {trajectory}")


if __name__ == "__main__":
    main()
