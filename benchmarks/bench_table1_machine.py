"""Benchmark: Table 1 — the baseline machine model.

Measures region calibration (real cache/branch/TLB simulation) and
regenerates the Table 1 sanity experiment.
"""

import numpy as np

from repro.harness.experiment import run_experiment
from repro.simulator import Machine
from repro.workloads.basic_block import CodeRegion


def test_region_calibration(benchmark):
    """Cost of calibrating one code region against the machine."""
    rng = np.random.default_rng(0)
    region = CodeRegion("bench", rng, num_blocks=32,
                        working_set_bytes=256 * 1024, pattern="mixed")
    machine = Machine()

    def calibrate():
        return machine.calibrate(
            region.sampled_stream(np.random.default_rng(1), events=4096)
        )

    calibration = benchmark(calibrate)
    assert calibration.cpi > 0


def test_table1_experiment(benchmark, warm_caches):
    """Regenerate Table 1 (machine description + per-benchmark CPI)."""
    result = benchmark.pedantic(
        lambda: run_experiment("table1", scale=warm_caches),
        rounds=1, iterations=1,
    )
    assert all(low > 0 for low in result.data["cpi_min"])
    assert all(
        high >= low
        for low, high in zip(result.data["cpi_min"], result.data["cpi_max"])
    )
    print()
    print(result.rendered)
