"""Ablation: min-count threshold sweep (beyond the paper's 0/4/8).

The paper evaluates min counts of 0, 4 and 8; this sweep extends the
range to expose the trade-off curve: higher thresholds shrink the
phase namespace and improve last-value predictability but cost more
transition time.
"""

import numpy as np

from repro.core import ClassifierConfig, PhaseClassifier
from repro.harness.cache import cached_classified, cached_trace
from repro.prediction import CompositePhasePredictor
from repro.workloads import BENCHMARK_NAMES

MIN_COUNTS = (0, 2, 4, 8, 16)


def _sweep(scale):
    rows = {}
    for min_count in MIN_COUNTS:
        config = ClassifierConfig(
            num_counters=16, table_entries=32,
            similarity_threshold=0.25, min_count_threshold=min_count,
        )
        phases, transition, mispredict = [], [], []
        for name in BENCHMARK_NAMES:
            run = cached_classified(name, config, scale)
            phases.append(run.num_phases)
            transition.append(run.transition_fraction)
            stats = CompositePhasePredictor(None).run(run.phase_ids)
            mispredict.append(1.0 - stats.accuracy)
        rows[min_count] = (
            float(np.mean(phases)),
            float(np.mean(transition)),
            float(np.mean(mispredict)),
        )
    return rows


def test_ablation_min_count_sweep(benchmark, warm_caches):
    rows = benchmark.pedantic(
        lambda: _sweep(warm_caches), rounds=1, iterations=1
    )
    print()
    print("  min  phases  transition%  lv-mispredict%")
    for min_count, (phases, transition, mispredict) in rows.items():
        print(f"  {min_count:3d}  {phases:6.1f}  {transition * 100:10.1f}"
              f"  {mispredict * 100:13.1f}")
    # Monotone effects: phases shrink, transition time grows.
    assert rows[0][0] > rows[8][0]
    assert rows[16][1] >= rows[4][1]
    # The paper's sweet spot: min-8 mispredicts less than min-0.
    assert rows[8][2] < rows[0][2]
