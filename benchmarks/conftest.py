"""Shared benchmark configuration.

Each ``bench_fig*.py`` module regenerates one table/figure of the paper
via the experiment harness and asserts its headline shape. Benchmarks
run at ``BENCH_SCALE`` of the nominal run length so the whole suite
completes in minutes; pass ``--bench-scale`` to change it.

Traces are generated once per process (the harness trace cache), so the
first benchmark to touch a benchmark trace pays its generation cost.
``warm_caches`` pre-pays that cost outside the measured region.
"""

from __future__ import annotations

import pytest

from repro.core import ClassifierConfig
from repro.harness.cache import (
    cached_classified,
    cached_trace,
    clear_cache,
    set_cache_telemetry,
)
from repro.telemetry import Telemetry
from repro.workloads import BENCHMARK_NAMES


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        action="store",
        type=float,
        default=0.3,
        help="benchmark run-length multiplier (default 0.3)",
    )


@pytest.fixture(scope="session")
def bench_scale(request) -> float:
    return request.config.getoption("--bench-scale")


@pytest.fixture(scope="session")
def warm_caches(bench_scale):
    """Generate all traces and the default classification up front."""
    config = ClassifierConfig.paper_default()
    for name in BENCHMARK_NAMES:
        cached_trace(name, bench_scale)
        cached_classified(name, config, bench_scale)
    return bench_scale


@pytest.fixture
def isolated_caches():
    """Cold harness caches around one test, with hit/miss telemetry.

    The harness caches are unbounded and per-process, so back-to-back
    benchmarks varying classifier configs would otherwise contaminate
    each other's timings with earlier runs' memoized results. This
    fixture clears the caches on entry and exit and installs a
    telemetry hub so the test can assert on the
    ``repro_harness_*_cache_{hits,misses}_total`` counters.

    Mutually exclusive with ``warm_caches`` by design: this one is for
    benchmarks that need a deterministic cold start.
    """
    clear_cache()
    telemetry = Telemetry()
    set_cache_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_cache_telemetry(None)
        clear_cache()
