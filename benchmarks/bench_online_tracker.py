"""Benchmark: PhaseTracker branch-granularity throughput.

The deployability claim implies the per-branch work is trivial (a hash
and a counter add). This measures sustained branches/second through
the full tracker, including interval-boundary classification and
prediction updates.
"""

import numpy as np

from repro.core import ClassifierConfig, PhaseTracker


def test_tracker_branch_throughput(benchmark):
    rng = np.random.default_rng(0)
    pcs = (0x400000 + rng.integers(0, 64, size=4096) * 4).astype(int)
    counts = rng.integers(50, 150, size=4096).astype(int)

    def drive():
        tracker = PhaseTracker(
            ClassifierConfig.paper_default(),
            interval_instructions=100_000,
        )
        index = 0
        for _ in range(4096):
            boundary = tracker.observe_branch(
                int(pcs[index]), int(counts[index])
            )
            if boundary:
                tracker.complete_interval(cpi=1.0)
            index += 1
        return tracker

    tracker = benchmark(drive)
    assert tracker.intervals_observed > 0
