"""Ablation: most-similar vs first-match classification (paper §4.1).

The paper claims choosing the most similar eligible entry improves
homogeneity over the prior work's first-match policy.
"""

import numpy as np

from repro.analysis.cov import weighted_cov
from repro.core import ClassifierConfig, PhaseClassifier
from repro.harness.cache import cached_trace
from repro.workloads import BENCHMARK_NAMES


def _cov_for(policy, scale):
    covs = []
    for name in BENCHMARK_NAMES:
        trace = cached_trace(name, scale)
        config = ClassifierConfig(
            num_counters=16, table_entries=32,
            similarity_threshold=0.25, min_count_threshold=8,
            match_policy=policy,
        )
        run = PhaseClassifier(config).classify_trace(trace)
        covs.append(weighted_cov(run, trace))
    return float(np.mean(covs))


def test_ablation_match_policy(benchmark, warm_caches):
    def ablate():
        return {
            "most_similar": _cov_for("most_similar", warm_caches),
            "first": _cov_for("first", warm_caches),
        }

    results = benchmark.pedantic(ablate, rounds=1, iterations=1)
    print()
    for label, cov in results.items():
        print(f"  {label}: CoV={cov * 100:.2f}%")
    # Most-similar should not be worse than first-match by more than
    # noise (the paper reports it helps homogeneity).
    assert results["most_similar"] <= results["first"] + 0.02
