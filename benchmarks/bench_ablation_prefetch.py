"""Ablation: next-line I-cache prefetching (substrate extension).

Table 1 does not specify an instruction prefetcher; this ablation
quantifies what a tagged next-line prefetcher would do to the I-cache
demand miss rate on the big-code gcc model — sequential fetch makes it
highly effective, which is exactly why the era's machines shipped one.
"""

import numpy as np

from repro.simulator.cache import Cache, CacheConfig
from repro.simulator.prefetch import NextLinePrefetcher
from repro.workloads import build_benchmark


def _icache_miss_rates():
    generator = build_benchmark("gcc/1", scale=0.05)
    region = generator.regions[0]
    stream = region.sampled_stream(
        np.random.default_rng(1), events=16384
    ).instruction_addresses

    plain = Cache(CacheConfig(16 * 1024, 4, 32, name="il1"))
    plain_misses = plain.access_many(stream)

    prefetcher = NextLinePrefetcher(
        Cache(CacheConfig(16 * 1024, 4, 32, name="il1"))
    )
    for address in stream:
        prefetcher.access(int(address))

    return (
        plain_misses / len(stream),
        prefetcher.stats.demand_miss_rate,
        prefetcher.stats.issue_rate,
    )


def test_ablation_icache_prefetch(benchmark):
    plain, prefetched, issue_rate = benchmark.pedantic(
        _icache_miss_rates, rounds=1, iterations=1
    )
    print()
    print(f"  plain I-cache miss rate:     {plain:.3%}")
    print(f"  with next-line prefetch:     {prefetched:.3%}")
    print(f"  prefetches per access:       {issue_rate:.3f}")
    # Sequential fetch: the prefetcher must help, not hurt.
    assert prefetched <= plain + 1e-9
