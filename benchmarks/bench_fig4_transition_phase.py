"""Benchmark: Figure 4 — the transition phase.

Regenerates all four Figure 4 graphs (CoV, phases, transition time,
last-value misprediction) and asserts the headline claims: min-count 8
cuts phase counts from hundreds to tens and reduces mispredictions.
"""

import numpy as np

from repro.harness.experiment import run_experiment


def test_fig4_transition_phase(benchmark, warm_caches):
    result = benchmark.pedantic(
        lambda: run_experiment("fig4", scale=warm_caches),
        rounds=1, iterations=1,
    )
    phases = result.data["phases"]
    assert np.mean(phases["12.5% similar+8 min"]) < (
        np.mean(phases["12.5% similar+0 min"]) / 3
    )
    mispredict = result.data["lv_mispredict"]
    assert np.mean(mispredict["12.5% similar+8 min"]) < np.mean(
        mispredict["12.5% similar+0 min"]
    )
    print()
    print(result.rendered)
