"""Phase-aware cache reconfiguration (the Balasubramonian/Dhodapkar use
case the paper cites in §1 and §2).

A reconfigurable machine can run its L1 D-cache in a full 16 KB 4-way
mode or a half-powered 8 KB 2-way mode. The right choice depends on the
phase: cache-light phases save energy at no cost in the small mode,
memory-hungry phases need the full cache.

The phase IDs from the online classifier make the policy trivial:

1. the first time a phase ID appears, *sample* both configurations by
   calibrating the phase's code region against each machine (one
   interval of trial per configuration, as proposed in the papers the
   HPCA'05 work cites);
2. remember the winner per phase ID;
3. on every later occurrence of that phase ID, apply the remembered
   configuration immediately — this is exactly why the paper wants
   phase IDs that stay stable across recurrences and a transition
   phase that keeps one-off behaviour from polluting the table.

The example reports energy/performance against always-full and
always-small baselines.

Run:  python examples/cache_reconfig.py
"""

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core import ClassifierConfig, PhaseClassifier, TRANSITION_PHASE_ID
from repro.simulator import Machine, MachineConfig
from repro.simulator.cache import CacheConfig
from repro.workloads import build_benchmark

#: Relative D-cache energy per interval: the small mode halves it.
ENERGY_FULL = 1.0
ENERGY_SMALL = 0.55


@dataclass
class Outcome:
    name: str
    cycles: float
    energy: float


def build_machines() -> "tuple[Machine, Machine]":
    full = Machine(MachineConfig.table1())
    small = Machine(
        MachineConfig(
            dl1=CacheConfig(8 * 1024, 2, 32, name="dl1-small"),
        )
    )
    return full, small


def main() -> None:
    benchmark_name = "bzip2/p"
    generator = build_benchmark(benchmark_name, scale=0.5)
    trace = generator.generate()
    run = PhaseClassifier(
        ClassifierConfig.paper_default()
    ).classify_trace(trace)

    full, small = build_machines()
    # Per-region CPI under each machine (the trial measurements a real
    # system would take online, done here via calibration).
    rng = np.random.default_rng(7)
    cpi_full = {}
    cpi_small = {}
    for index, region in enumerate(generator.regions):
        stream = region.sampled_stream(rng, events=4096)
        cpi_full[index] = full.calibrate(stream).cpi
        stream = region.sampled_stream(rng, events=4096)
        cpi_small[index] = small.calibrate(stream).cpi

    phase_choice: Dict[int, str] = {}
    outcomes = {
        "always-full": Outcome("always-full", 0.0, 0.0),
        "always-small": Outcome("always-small", 0.0, 0.0),
        "phase-aware": Outcome("phase-aware", 0.0, 0.0),
    }

    for interval, result in zip(trace, run.results):
        region = interval.region if interval.region >= 0 else None
        if region is None:
            # Transition interval: approximate with the trace's CPI
            # under either mode (transitions are short; both modes pay
            # the same here).
            full_cpi = small_cpi = interval.cpi
        else:
            full_cpi = cpi_full[region]
            small_cpi = cpi_small[region]

        outcomes["always-full"].cycles += full_cpi
        outcomes["always-full"].energy += ENERGY_FULL
        outcomes["always-small"].cycles += small_cpi
        outcomes["always-small"].energy += ENERGY_SMALL

        phase = result.phase_id
        if phase == TRANSITION_PHASE_ID:
            # Never optimize transitions: run the safe full mode.
            choice = "full"
        elif phase in phase_choice:
            choice = phase_choice[phase]
        else:
            # First sighting: trial both modes, keep the one whose
            # slowdown is under 3%.
            slowdown = small_cpi / full_cpi - 1.0
            choice = "small" if slowdown < 0.03 else "full"
            phase_choice[phase] = choice

        if choice == "small":
            outcomes["phase-aware"].cycles += small_cpi
            outcomes["phase-aware"].energy += ENERGY_SMALL
        else:
            outcomes["phase-aware"].cycles += full_cpi
            outcomes["phase-aware"].energy += ENERGY_FULL

    base = outcomes["always-full"]
    print(f"{benchmark_name}: {len(trace)} intervals, "
          f"{run.num_phases} phases, "
          f"{len([c for c in phase_choice.values() if c == 'small'])} "
          f"phases chose the small cache")
    for outcome in outcomes.values():
        slowdown = (outcome.cycles / base.cycles - 1.0) * 100
        saving = (1.0 - outcome.energy / base.energy) * 100
        print(f"  {outcome.name:13s} D-cache energy saved: {saving:5.1f}%  "
              f"slowdown: {slowdown:5.2f}%")


if __name__ == "__main__":
    main()
