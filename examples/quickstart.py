"""Quickstart: classify a program's execution into phases and predict them.

Generates a synthetic gzip-like workload (10M-instruction intervals),
runs the paper's online phase classifier over it, and drives the
next-phase predictor — the end-to-end flow of the HPCA 2005 paper.

Run:  python examples/quickstart.py
"""

from repro.analysis.cov import weighted_cov
from repro.analysis.profile import format_profile_table, profile_phases
from repro.analysis.phase_stats import phase_length_summary
from repro.analysis.timeline import render_timeline
from repro.core import ClassifierConfig, PhaseClassifier
from repro.prediction import CompositePhasePredictor, RLEChangePredictor
from repro.workloads import benchmark


def main() -> None:
    # 1. A workload: one of the paper's eleven synthetic SPEC 2000
    #    models. scale=0.5 halves the run length for a quick demo.
    trace = benchmark("gzip/p", scale=0.5)
    print(f"workload: {trace.name}, {len(trace)} intervals of "
          f"{trace.interval_instructions / 1e6:.0f}M instructions")
    print(f"whole-program CoV of CPI: "
          f"{trace.whole_program_cov() * 100:.1f}%")

    # 2. The online classifier with the paper's final configuration:
    #    16 counters, 6 bits each, 32-entry table, 25% similarity,
    #    min-count 8, adaptive thresholds at 25% CPI deviation.
    classifier = PhaseClassifier(ClassifierConfig.paper_default())
    run = classifier.classify_trace(trace)

    print(f"\nphases found: {run.num_phases}")
    print(f"intervals in the transition phase: "
          f"{run.transition_fraction * 100:.1f}%")
    print(f"weighted per-phase CoV of CPI: "
          f"{weighted_cov(run, trace) * 100:.1f}%  "
          f"(classification pays for itself when this is far below the "
          f"whole-program CoV)")

    print("\nper-phase profiles (top phases by occupancy):")
    print(format_profile_table(profile_phases(run, trace), count=8))

    print("\nphase timeline (one character per 10M-instruction interval):")
    print(render_timeline(run.phase_ids, width=72, max_legend_entries=6))

    summary = phase_length_summary(run.phase_ids)
    print(f"\naverage stable run: {summary.stable_mean:.1f} intervals "
          f"(dev {summary.stable_std:.1f}); "
          f"average transition run: {summary.transition_mean:.1f}")

    # 3. Next-phase prediction: RLE-2 change table over a last-value
    #    backbone, both confidence-gated (paper §5).
    predictor = CompositePhasePredictor(RLEChangePredictor(2))
    stats = predictor.run(run.phase_ids)
    print(f"\nnext-phase prediction: {stats.accuracy * 100:.1f}% accurate"
          f" overall; {stats.confident_accuracy * 100:.1f}% accurate at "
          f"{stats.coverage * 100:.1f}% coverage when confidence-gated")


if __name__ == "__main__":
    main()
