"""Streaming phase tracking with the branch-granularity PhaseTracker.

Everything else in this repository drives the classifier with complete
interval traces; a deployed system sees one committed branch at a time.
:class:`repro.core.online.PhaseTracker` is that interface: it detects
interval boundaries itself, classifies each completed interval, keeps
the next-phase and length predictors warm, and fires callbacks on
phase changes.

This example replays a benchmark trace branch-by-branch (as a hardware
implementation would see it), attaches a phase-change listener, and
prints a live monitoring log plus end-of-run predictor statistics.

Run:  python examples/online_monitoring.py
"""

from repro.core import ClassifierConfig, PhaseTracker
from repro.workloads import benchmark


def main() -> None:
    trace = benchmark("bzip2/g", scale=0.25)
    tracker = PhaseTracker(
        ClassifierConfig.paper_default(),
        interval_instructions=trace.interval_instructions,
    )

    change_log = []

    def on_change(report):
        change_log.append(report)
        if len(change_log) <= 12:
            length = (
                f", predicted length class {report.predicted_length_class}"
                if report.predicted_length_class is not None
                else ""
            )
            print(f"  interval {report.interval_index:4d}: -> phase "
                  f"{report.phase_id}"
                  f"{' (transition)' if report.is_transition else ''}"
                  f"{length}")

    tracker.add_phase_change_listener(on_change)

    print(f"replaying {trace.name}: {len(trace)} intervals, "
          f"branch by branch\n")
    correct = confident_used = 0
    predicted_next = None
    for interval in trace:
        for pc, count in zip(interval.branch_pcs, interval.instr_counts):
            tracker.observe_branch(int(pc), int(count))
        report = tracker.complete_interval(interval.cpi)
        if predicted_next is not None:
            correct += predicted_next == report.phase_id
            confident_used += 1
        predicted_next = (
            report.predicted_next_phase
            if report.prediction_confident
            else None
        )

    print(f"\n{len(change_log)} phase changes observed "
          f"({'only first 12 shown' if len(change_log) > 12 else 'all shown'})")
    print(f"intervals tracked: {tracker.intervals_observed}")
    print(f"confident next-phase predictions: {confident_used} "
          f"({correct} correct = "
          f"{correct / max(confident_used, 1):.1%})")


if __name__ == "__main__":
    main()
