"""Simulation point selection with the offline SimPoint comparator.

SimPoint's use case: architects cannot afford to simulate a whole
program in detail, so they cluster its intervals into phases offline
and simulate *one representative interval per phase*, weighting each
result by its phase's share of execution. The paper compares its
online classifier against this offline algorithm (§4.4).

This example runs the from-scratch SimPoint pipeline on three
benchmarks and reports:

- the chosen number of clusters (via BIC model selection);
- the simulation points and their weights;
- the whole-program CPI estimated from the points alone vs the truth —
  typically within a few percent while simulating < 1% of the run.

Run:  python examples/simpoint_selection.py
"""

from repro.offline import SimPointClassifier
from repro.workloads import benchmark


def main() -> None:
    for name in ("gzip/p", "gcc/1", "mcf"):
        trace = benchmark(name, scale=0.5)
        classification = SimPointClassifier(max_k=12).classify(trace)

        cpis = trace.cpis
        estimate = classification.estimate_mean(cpis)
        truth = float(cpis.mean())
        error = abs(estimate - truth) / truth

        print(f"\n{name}: {len(trace)} intervals "
              f"-> k={classification.k} phases (BIC-selected)")
        for point in sorted(
            classification.simulation_points,
            key=lambda p: p.weight, reverse=True,
        ):
            print(f"  simulate interval {point.interval_index:5d} "
                  f"(phase {point.phase}, weight {point.weight:5.1%}, "
                  f"CPI {cpis[point.interval_index]:.2f})")
        simulated = len(classification.simulation_points)
        print(f"  estimated CPI {estimate:.3f} vs true {truth:.3f} "
              f"({error:.2%} error) from {simulated} of {len(trace)} "
              f"intervals ({simulated / len(trace):.1%} of the run)")


if __name__ == "__main__":
    main()
