"""Phase-aware dynamic voltage scaling (DVS) policy.

The paper motivates phase length prediction with expensive
reconfigurations: "an expensive optimization or reconfiguration should
only be applied if we can amortize its cost over a significant amount
of execution" (§1, §6.2). This example builds that policy:

- every phase change, predict the run-length class of the incoming
  phase with the RLE-2 length predictor;
- drop to a low-power DVS state only when the phase is predicted to
  last >= 16 intervals (>= 160M instructions), amortizing the voltage
  transition cost;
- compare against (a) a naive policy that transitions on every phase
  change and (b) an oracle that knows the true lengths.

The figure of merit is net cycles saved: each interval spent in the
low-power state saves energy at a small performance cost, but each
transition burns a fixed cost.

Run:  python examples/dvs_scheduler.py
"""

from dataclasses import dataclass
from typing import List

from repro.analysis.runs import extract_runs
from repro.core import ClassifierConfig, PhaseClassifier
from repro.prediction.length import PhaseLengthPredictor, length_class
from repro.workloads import benchmark

#: A DVS transition (PLL relock + voltage ramp) costs roughly three
#: intervals' worth of disruption at 10M-instruction granularity.
TRANSITION_COST = 3.0
#: Net benefit per interval spent in the low-power state.
BENEFIT_PER_INTERVAL = 0.25
#: Minimum predicted class worth transitioning for (class 1 = 16-127
#: intervals).
MIN_CLASS = 1


@dataclass
class PolicyResult:
    name: str
    transitions: int
    low_power_intervals: int

    @property
    def net_benefit(self) -> float:
        return (
            self.low_power_intervals * BENEFIT_PER_INTERVAL
            - self.transitions * TRANSITION_COST
        )


def naive_policy(runs) -> PolicyResult:
    """Transition into low power at every phase change."""
    transitions = 0
    low_power = 0
    for run in runs:
        transitions += 1
        low_power += run.length
    return PolicyResult("naive (every change)", transitions, low_power)


def oracle_policy(runs) -> PolicyResult:
    """Transition only when the true run is long enough."""
    transitions = 0
    low_power = 0
    for run in runs:
        if length_class(run.length) >= MIN_CLASS:
            transitions += 1
            low_power += run.length
    return PolicyResult("oracle (true lengths)", transitions, low_power)


def predicted_policy(phase_ids) -> PolicyResult:
    """Transition when the RLE-2 length predictor says 'long'."""
    predictor = PhaseLengthPredictor()
    transitions = 0
    low_power = 0
    current_run = 0
    in_low_power = False
    previous = None
    for phase_id in phase_ids:
        phase_id = int(phase_id)
        if previous is None or phase_id == previous:
            current_run += 1
        else:
            # Phase change: ask the predictor (it has just scored the
            # completed run inside observe) for the incoming class.
            if in_low_power:
                low_power += current_run
            current_run = 1
        predictor.observe(phase_id)
        if previous is not None and phase_id != previous:
            predicted = predictor.outstanding_prediction
            should = predicted is not None and predicted >= MIN_CLASS
            if should and not in_low_power:
                transitions += 1
            in_low_power = should
        previous = phase_id
    if in_low_power:
        low_power += current_run
    return PolicyResult("predicted (RLE-2 classes)", transitions, low_power)


def main() -> None:
    for name in ("gzip/p", "bzip2/g", "gcc/s"):
        trace = benchmark(name, scale=0.5)
        run = PhaseClassifier(
            ClassifierConfig.paper_default()
        ).classify_trace(trace)
        runs = extract_runs(run.phase_ids)

        policies: List[PolicyResult] = [
            naive_policy(runs),
            predicted_policy(run.phase_ids),
            oracle_policy(runs),
        ]
        print(f"\n{name}: {len(trace)} intervals, {len(runs)} phase runs")
        for policy in policies:
            print(
                f"  {policy.name:26s} transitions={policy.transitions:4d} "
                f"low-power intervals={policy.low_power_intervals:5d} "
                f"net benefit={policy.net_benefit:8.1f}"
            )


if __name__ == "__main__":
    main()
