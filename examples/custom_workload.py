"""Building your own workload model.

The eleven SPEC 2000 models shipped with the library are instances of
a general API: *code regions* with microarchitectural personalities,
sequenced by a *phase script*, calibrated against the Table 1 machine.
This example builds a small custom program — a streaming producer, a
hash-join-like consumer with two CPI sub-modes, and a checkpointing
stage — generates its trace, classifies it, and saves the trace for
later reuse.

Run:  python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.analysis.agreement import region_agreement
from repro.analysis.cov import weighted_cov
from repro.core import ClassifierConfig, PhaseClassifier
from repro.workloads import CodeRegion, PhaseScript, Segment, WorkloadGenerator
from repro.workloads.basic_block import make_submodes
from repro.workloads.generator import TransitionConfig
from repro.workloads.io import load_trace, save_trace
from repro.workloads.validation import check_separability

KB = 1024
MB = 1024 * 1024


def build_generator() -> WorkloadGenerator:
    rng = np.random.default_rng(2025)

    producer = CodeRegion(
        "producer", rng, num_blocks=28,
        code_base=0x40_0000, pattern="strided",
        working_set_bytes=64 * KB, loads_per_instr=0.3,
        loop_fraction=0.8, data_bias=0.85, base_ipc=2.6, cpi_sigma=0.05,
    )

    consumer = CodeRegion(
        "consumer", rng, num_blocks=40,
        code_base=0x50_0000, pattern="random",
        working_set_bytes=2 * MB, loads_per_instr=0.45,
        hot_fraction=0.85, loop_fraction=0.5, data_bias=0.65,
        base_ipc=1.6, cpi_sigma=0.06,
    )
    # The consumer alternates between probe-heavy and build-heavy
    # behaviour with distinct CPI: the adaptive classifier's food.
    consumer.set_submodes(
        make_submodes(rng, consumer.num_blocks, cpi_scales=(1.0, 1.5),
                      intensity=0.4),
        probabilities=[0.6, 0.4],
    )

    checkpoint = CodeRegion(
        "checkpoint", rng, num_blocks=20,
        code_base=0x60_0000, pattern="strided",
        working_set_bytes=32 * KB, loads_per_instr=0.35,
        loop_fraction=0.9, data_bias=0.9, base_ipc=2.9, cpi_sigma=0.04,
    )

    # Pipeline shape: produce, consume, produce, consume, ...,
    # checkpoint every third round.
    segments = []
    for round_index in range(12):
        segments.append(Segment(0, 20))  # producer
        segments.append(Segment(1, 35))  # consumer
        if round_index % 3 == 2:
            segments.append(Segment(2, 8))  # checkpoint

    return WorkloadGenerator(
        name="etl-pipeline",
        regions=[producer, consumer, checkpoint],
        script=PhaseScript(segments),
        seed=7,
        transitions=TransitionConfig(min_length=1, max_length=2),
    )


def main() -> None:
    generator = build_generator()

    # Before spending time on generation: is this model classifiable?
    report = check_separability(generator.regions)
    print(report.summary())
    print()

    trace = generator.generate()
    calibrations = generator.calibrations()
    print(f"workload '{trace.name}': {len(trace)} intervals")
    for region, calibration in zip(generator.regions, calibrations):
        print(f"  region {region.name:11s} CPI {calibration.cpi:5.2f}  "
              f"dl1 miss {calibration.dl1_miss_ratio:6.1%}  "
              f"branch miss {calibration.branch_mispredict_ratio:5.1%}")

    run = PhaseClassifier(
        ClassifierConfig.paper_default()
    ).classify_trace(trace)
    agreement = region_agreement(run.phase_ids, trace.regions)
    print(f"\nclassified into {run.num_phases} phases "
          f"(CoV {weighted_cov(run, trace):.1%}, "
          f"transition time {run.transition_fraction:.1%})")
    print(f"agreement with ground truth: purity "
          f"{agreement['purity']:.1%}, ARI {agreement['ari']:.2f}")

    with tempfile.TemporaryDirectory() as tmp:
        path = save_trace(trace, Path(tmp) / "etl-pipeline")
        reloaded = load_trace(path)
        print(f"\ntrace saved and reloaded: {len(reloaded)} intervals, "
              f"{path.stat().st_size / 1024:.0f} KiB on disk")


if __name__ == "__main__":
    main()
