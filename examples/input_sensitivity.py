"""How a program's phase behaviour shifts with its input.

The paper runs bzip2, gcc, gzip and perl with multiple inputs precisely
because phase behaviour is input-dependent (§3). This example puts that
on screen: the same "program" (the bzip2 model) under its graphic and
program inputs, compared with the library's analysis tools —

- per-input classification summaries and timelines;
- a side-by-side comparison of the two classifications of the *same*
  input under different configurations (25%+8 vs the prior-work
  baseline), via :func:`repro.analysis.compare.compare_runs`.

Run:  python examples/input_sensitivity.py
"""

from repro.analysis.compare import compare_runs
from repro.analysis.phase_stats import phase_length_summary
from repro.analysis.timeline import render_timeline
from repro.core import ClassifierConfig, PhaseClassifier
from repro.workloads import benchmark


def main() -> None:
    config = ClassifierConfig.paper_default()

    traces = {}
    for name in ("bzip2/g", "bzip2/p"):
        trace = benchmark(name, scale=0.35)
        run = PhaseClassifier(config).classify_trace(trace)
        traces[name] = (trace, run)
        summary = phase_length_summary(run.phase_ids)
        print(f"{name}: {len(trace)} intervals, {run.num_phases} phases, "
              f"avg stable run {summary.stable_mean:.1f} intervals, "
              f"{run.transition_fraction:.1%} transition time")
        print(render_timeline(run.phase_ids, width=72,
                              max_legend_entries=5))
        print()

    # Same input, two classifier generations: what did the paper buy?
    name = "bzip2/p"
    trace, modern = traces[name]
    prior = PhaseClassifier(
        ClassifierConfig.paper_baseline()
    ).classify_trace(trace)
    comparison = compare_runs(
        modern, prior, trace,
        name_a="this paper (25%+8, adaptive)",
        name_b="prior work (12.5%, no transition phase)",
    )
    print(f"--- {name}: classifier generations compared ---")
    print(comparison.summary())


if __name__ == "__main__":
    main()
