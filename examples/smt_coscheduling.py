"""Phase-aware symbiotic co-scheduling on an SMT core.

The paper's stated motivation for 10M-instruction intervals is
phase-based task scheduling, citing Snavely & Tullsen's symbiotic
job scheduling (§1). Two threads sharing an SMT core interfere through
shared resources: co-scheduling a memory-bound phase with a
compute-bound phase is *symbiotic* (their demands interleave), while
two memory-bound phases thrash.

This example co-schedules two benchmarks:

- each program's intervals are classified online into phases;
- a simple interference model scores each (phase A, phase B) pairing
  by combined IPC: compute+compute pairs contend for issue slots,
  memory+memory pairs contend for the L2/memory, mixed pairs symbiose;
- the *phase-aware scheduler* learns the measured combined IPC per
  phase pair and, at every interval, uses the predicted next phases to
  decide which of the two ready jobs to pair with the foreground
  thread; the *oblivious scheduler* pairs round-robin.

The phase-aware scheduler wins by steering memory-bound phases away
from each other — and it only can because phase IDs recur and are
predictable.

Run:  python examples/smt_coscheduling.py
"""

from collections import defaultdict
from typing import Dict, Tuple

import numpy as np

from repro.core import ClassifierConfig, PhaseClassifier
from repro.workloads import benchmark

MEMORY_BOUND_CPI = 2.0  # above this, a phase counts as memory-bound


def classify(name, scale=0.4):
    trace = benchmark(name, scale=scale)
    run = PhaseClassifier(
        ClassifierConfig.paper_default()
    ).classify_trace(trace)
    return trace, run


def combined_ipc(cpi_a: float, cpi_b: float) -> float:
    """Toy SMT interference model.

    Baseline: each thread runs at half throughput. Symbiosis bonus when
    one thread is memory-bound and the other compute-bound; thrashing
    penalty when both are memory-bound.
    """
    ipc_a, ipc_b = 1.0 / cpi_a, 1.0 / cpi_b
    base = 0.6 * (ipc_a + ipc_b)
    a_mem = cpi_a >= MEMORY_BOUND_CPI
    b_mem = cpi_b >= MEMORY_BOUND_CPI
    if a_mem and b_mem:
        return base * 0.65     # memory system thrashes
    if a_mem != b_mem:
        return base * 1.25     # complementary demands
    return base


def main() -> None:
    foreground_trace, foreground_run = classify("mcf")
    candidates = {
        name: classify(name) for name in ("gzip/p", "bzip2/g")
    }

    # Learned symbiosis table: (fg phase, candidate, cand phase) -> IPC.
    learned: Dict[Tuple[int, str, int], float] = {}
    positions = {name: 0 for name in candidates}

    def step_candidate(name):
        trace, run = candidates[name]
        index = positions[name] % len(trace)
        positions[name] += 1
        return trace[index].cpi, int(run.phase_ids[index])

    aware_ipc, oblivious_ipc = [], []
    round_robin = list(candidates)
    for index, interval in enumerate(foreground_trace):
        fg_phase = int(foreground_run.phase_ids[index])

        # Oblivious: alternate between the candidate jobs.
        oblivious_choice = round_robin[index % len(round_robin)]

        # Phase-aware: pick the candidate whose *current* phase has the
        # best learned pairing with the foreground's phase (last-value
        # phase prediction); unexplored pairs are tried optimistically.
        best_name, best_score = None, -1.0
        for name in candidates:
            trace, run = candidates[name]
            peek = positions[name] % len(trace)
            cand_phase = int(run.phase_ids[peek])
            score = learned.get(
                (fg_phase, name, cand_phase), float("inf")
            )
            if score == float("inf"):
                best_name = name  # explore
                break
            if score > best_score:
                best_name, best_score = name, score
        assert best_name is not None

        for scheduler, choice, results in (
            ("aware", best_name, aware_ipc),
            ("oblivious", oblivious_choice, oblivious_ipc),
        ):
            if scheduler == "aware":
                cpi_b, cand_phase = step_candidate(choice)
                ipc = combined_ipc(interval.cpi, cpi_b)
                learned[(fg_phase, choice, cand_phase)] = ipc
            else:
                trace, run = candidates[choice]
                peek = (positions[choice] - 1) % len(trace)
                ipc = combined_ipc(interval.cpi, trace[peek].cpi)
            results.append(ipc)

    aware = float(np.mean(aware_ipc))
    oblivious = float(np.mean(oblivious_ipc))
    print(f"foreground: mcf ({len(foreground_trace)} intervals), "
          f"candidates: {', '.join(candidates)}")
    print(f"  oblivious round-robin combined IPC: {oblivious:.3f}")
    print(f"  phase-aware symbiotic combined IPC: {aware:.3f} "
          f"({(aware / oblivious - 1):+.1%})")
    print(f"  distinct phase pairings learned: {len(learned)}")


if __name__ == "__main__":
    main()
