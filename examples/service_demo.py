"""Drive the streaming phase-classification service end to end.

Starts a :class:`repro.service.PhaseService` on a background thread,
opens a session through the synchronous client, streams a synthetic
two-phase branch workload in batches, and prints every interval report
the server pushes back. Halfway through it snapshots the session,
restores the snapshot into a *second* session, and streams the same
remaining branches into both — proving the restored tracker's phase and
prediction stream is identical to the uninterrupted one. Finishes with
service stats and a graceful drain.

Run:  python examples/service_demo.py
"""

import numpy as np

from repro.service import PhaseServiceClient, start_in_thread

INTERVAL = 20_000      # instructions per interval (tiny, for the demo)
BATCH = 400            # branch records per observe request
PHASE_A, PHASE_B = 0x400000, 0x900000


def branch_batches(rng, total_batches):
    """A synthetic workload alternating between two code regions."""
    for index in range(total_batches):
        base = PHASE_A if (index // 6) % 2 == 0 else PHASE_B
        pcs = (base + rng.integers(0, 48, size=BATCH) * 4).tolist()
        counts = rng.integers(20, 80, size=BATCH).tolist()
        yield pcs, counts


def main():
    rng = np.random.default_rng(7)
    batches = list(branch_batches(rng, 24))
    half = len(batches) // 2

    with start_in_thread(max_sessions=8) as handle:
        print(f"service up on {handle.host}:{handle.port}")
        with PhaseServiceClient(port=handle.port) as client:
            print("ping ->", client.ping())
            session = client.open_session(interval_instructions=INTERVAL)
            print(f"opened session {session!r}")

            for pcs, counts in batches[:half]:
                for report in client.observe(session, pcs, counts, cpi=1.2):
                    marker = "*" if report["phase_changed"] else " "
                    print(f"  {marker} interval {report['interval_index']:3d}"
                          f"  phase {report['phase_id']}"
                          f"  next-> {report['predicted_next_phase']}"
                          f" ({'sure' if report['prediction_confident'] else '??'})")

            print("snapshotting mid-stream ...")
            document = client.snapshot(session)
            twin = client.open_session(snapshot=document)
            print(f"restored snapshot into session {twin!r}")

            stream_a, stream_b = [], []
            for pcs, counts in batches[half:]:
                stream_a += client.observe(session, pcs, counts, cpi=1.2)
                stream_b += client.observe(twin, pcs, counts, cpi=1.2)
            assert stream_a == stream_b, "restored session diverged!"
            print(f"restored session replayed {len(stream_b)} intervals "
                  "identically: snapshot/restore is exact")

            print("prediction now:", client.predict(session))
            stats = client.stats()
            print(f"service stats: {stats['live']} live sessions, "
                  f"{stats['requests']} requests, {stats['errors']} errors")
            client.close_session(session)
            client.close_session(twin)
    print("service drained cleanly")


if __name__ == "__main__":
    main()
