"""Replay a benchmark through an instrumented PhaseTracker and render
an ASCII telemetry dashboard.

The tracker is attached to a :class:`repro.telemetry.Telemetry` hub
with an in-memory event sink; after the replay the script prints the
monitoring view a deployed system would scrape: tracker counters,
signature-table health, next-phase predictor accuracy, per-stage span
timings, the branch-ingest latency histogram, and the tail of the
structured event stream.

Run:  python examples/telemetry_dashboard.py
"""

import io

from repro.core import ClassifierConfig, PhaseTracker
from repro.telemetry import EventLog, Telemetry, read_events
from repro.workloads import benchmark

BENCHMARK = "bzip2/g"
SCALE = 0.15
BAR_WIDTH = 40


def replay(telemetry: Telemetry):
    """Drive the tracker branch-by-branch over one benchmark trace."""
    trace = benchmark(BENCHMARK, scale=SCALE)
    tracker = PhaseTracker(
        ClassifierConfig.paper_default(),
        interval_instructions=trace.interval_instructions,
        telemetry=telemetry,
    )
    for interval in trace:
        for pc, count in zip(interval.branch_pcs, interval.instr_counts):
            tracker.observe_branch(int(pc), int(count))
        tracker.complete_interval(interval.cpi)
    return tracker


def rule(title: str) -> str:
    return f"-- {title} " + "-" * max(0, 68 - len(title))


def counter_table(metrics, names) -> str:
    rows = []
    for name in names:
        metric = metrics.get(name)
        if metric is not None:
            label = name.replace("repro_", "").replace("_total", "")
            rows.append(f"  {label:44s} {int(metric.value):>12,d}")
    return "\n".join(rows)


def histogram_bars(histogram) -> str:
    """Log-bucket counts as horizontal ASCII bars."""
    populated = [
        (bound, count)
        for bound, count in zip(
            list(histogram.bounds) + [float("inf")],
            histogram.bucket_counts(),
        )
        if count
    ]
    if not populated:
        return "  (no observations)"
    peak = max(count for _, count in populated)
    lines = []
    for bound, count in populated:
        label = "+Inf" if bound == float("inf") else f"{bound:.2e}"
        bar = "#" * max(1, round(BAR_WIDTH * count / peak))
        lines.append(f"  <= {label:>9s} s  {bar} {count}")
    return "\n".join(lines)


def main() -> None:
    stream = io.StringIO()
    telemetry = Telemetry(events=EventLog(stream=stream))
    tracker = replay(telemetry)
    metrics = telemetry.metrics

    print(f"telemetry dashboard: {BENCHMARK} at scale {SCALE}, "
          f"{tracker.intervals_observed} intervals\n")

    print(rule("tracker counters"))
    print(counter_table(metrics, [
        "repro_tracker_branches_total",
        "repro_tracker_instructions_total",
        "repro_tracker_intervals_total",
        "repro_tracker_transition_intervals_total",
        "repro_tracker_phase_changes_total",
        "repro_tracker_new_phases_total",
    ]))

    print(rule("signature table"))
    print(counter_table(metrics, [
        "repro_signature_table_hits_total",
        "repro_signature_table_misses_total",
        "repro_signature_table_evictions_total",
        "repro_classifier_threshold_halvings_total",
    ]))
    occupancy = metrics.get("repro_signature_table_occupancy")
    print(f"  {'signature_table_occupancy':44s} {int(occupancy.value):>12,d}")

    print(rule("next-phase predictor"))
    total = metrics.get("repro_next_phase_predictions_total").value
    correct = metrics.get("repro_next_phase_correct_total").value
    confident = metrics.get("repro_next_phase_confident_total").value
    confident_ok = metrics.get(
        "repro_next_phase_confident_correct_total"
    ).value
    if total:
        print(f"  overall accuracy   {correct / total:6.1%} "
              f"({int(correct)}/{int(total)})")
    if confident:
        print(f"  confident accuracy {confident_ok / confident:6.1%} "
              f"at {confident / total:6.1%} coverage")

    print(rule("per-stage span timings"))
    for path, stats in sorted(telemetry.span_timings().items()):
        print(f"  {path:20s} n={stats.count:5d}  "
              f"mean {stats.mean_seconds * 1e6:9.1f} us  "
              f"max {stats.max_seconds * 1e6:9.1f} us")

    print(rule("branch ingest latency (per-interval mean)"))
    print(histogram_bars(metrics.get("repro_branch_ingest_seconds")))

    print(rule("event stream tail"))
    records = read_events(io.StringIO(stream.getvalue()))
    interesting = [
        r for r in records
        if r["event"] != "interval" or r.get("phase_changed")
    ]
    for record in interesting[-8:]:
        if record["event"] == "interval":
            print(f"  seq {record['seq']:5d}  interval "
                  f"{record['interval_index']:4d} -> phase "
                  f"{record['phase_id']}"
                  f"{' (transition)' if record['is_transition'] else ''}"
                  f"  occupancy {record['table_occupancy']}")
        else:
            print(f"  seq {record['seq']:5d}  {record['event']}")
    print(f"\n{len(records)} events emitted; metrics snapshot below "
          "is what --metrics would write")

    print(rule("prometheus snapshot (excerpt)"))
    for line in telemetry.render_metrics().splitlines():
        if line.startswith("repro_tracker_") and "bucket" not in line:
            print(f"  {line}")


if __name__ == "__main__":
    main()
