"""Adaptive similarity thresholds in action (paper §4.6, Figure 6).

mcf's dominant region alternates between two CPI sub-modes whose code
signatures differ by ~18% — under the static 25% similarity threshold
they lump into one phase with a high CoV of CPI. The adaptive
classifier watches per-phase CPI, halves the threshold when an
interval deviates by more than the performance-deviation threshold,
and thereby splits the phase.

This example classifies mcf and gzip/g under static and dynamic
thresholds and prints the trade-off: mcf's CoV collapses, gzip/g (no
sub-modes) is untouched — the paper's Figure 6 story.

Run:  python examples/adaptive_thresholds.py
"""

from repro.analysis.cov import weighted_cov
from repro.core import ClassifierConfig, PhaseClassifier
from repro.workloads import benchmark

CONFIGS = (
    ("static 25%", dict(similarity_threshold=0.25,
                        perf_dev_threshold=None)),
    ("static 12.5%", dict(similarity_threshold=0.125,
                          perf_dev_threshold=None)),
    ("dynamic 25% + 25% dev", dict(similarity_threshold=0.25,
                                   perf_dev_threshold=0.25)),
)


def main() -> None:
    for name in ("mcf", "gzip/g"):
        trace = benchmark(name, scale=0.5)
        print(f"\n{name} ({len(trace)} intervals):")
        for label, overrides in CONFIGS:
            config = ClassifierConfig(
                num_counters=16,
                table_entries=32,
                min_count_threshold=8,
                **overrides,
            )
            run = PhaseClassifier(config).classify_trace(trace)
            cov = weighted_cov(run, trace)
            print(
                f"  {label:22s} CoV={cov * 100:5.1f}%  "
                f"phases={run.num_phases:3d}  "
                f"transition time={run.transition_fraction * 100:4.1f}%"
            )
        print(
            "  -> the dynamic threshold approaches the 12.5% static CoV "
            "without the extra phases/transitions a globally tight "
            "threshold costs programs that do not need it"
        )


if __name__ == "__main__":
    main()
