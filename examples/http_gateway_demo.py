"""Operate the phase service over its HTTP gateway.

Starts a :class:`repro.service.PhaseService` with the HTTP operations
gateway enabled (``http_port=0``), then drives everything a monitoring
stack would touch — with nothing but ``urllib``:

1. probe ``/healthz`` and ``/readyz``,
2. open a session and stream a synthetic two-phase workload through
   ``POST /v1/sessions/{id}/observe-batch``, printing the interval
   reports that come back in the JSON response,
3. read ``/v1/diagnostics`` (phase occupancy, predictor accuracy, pool
   utilization, backpressure),
4. scrape ``/metrics`` and re-parse it with
   :func:`repro.telemetry.parse_prometheus_text`,
5. subscribe to ``/v1/events`` and show the live SSE interval events,
6. ``POST /v1/drain`` and watch ``/readyz`` flip to 503 before the
   service exits.

While the demo runs, the live dashboard is being served at the printed
URL — open it in a browser to watch the same numbers move.

Run:  python examples/http_gateway_demo.py
"""

import json
import socket
import time
import urllib.error
import urllib.request

import numpy as np

from repro.service import start_in_thread
from repro.telemetry import parse_prometheus_text

INTERVAL = 20_000
BATCH = 400
PHASE_A, PHASE_B = 0x400000, 0x900000


def call(base, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def sse_events(host, port, limit, timeout=10.0):
    """A minimal SSE reader: yields up to ``limit`` event payloads."""
    sock = socket.create_connection((host, port), timeout=timeout)
    try:
        sock.sendall(
            b"GET /v1/events?types=interval HTTP/1.1\r\n"
            b"Host: gateway\r\nAccept: text/event-stream\r\n\r\n"
        )
        buffer, seen = b"", 0
        deadline = time.time() + timeout
        while seen < limit and time.time() < deadline:
            chunk = sock.recv(4096)
            if not chunk:
                break
            buffer += chunk
            while b"\n\n" in buffer:
                frame, buffer = buffer.split(b"\n\n", 1)
                for line in frame.splitlines():
                    if line.startswith(b"data: "):
                        yield json.loads(line[6:])
                        seen += 1
                        if seen >= limit:
                            return
    finally:
        sock.close()


def main():
    rng = np.random.default_rng(11)
    handle = start_in_thread(
        max_sessions=8, pool_slots=8, http_port=0
    )
    service = handle.service
    base = f"http://{service.http_host}:{service.http_port}"
    print(f"gateway + dashboard at {base}/")

    status, health = call(base, "GET", "/healthz")
    print(f"healthz -> {status} {health['status']}, "
          f"v{health['version']} pid {health['pid']}")
    status, _ = call(base, "GET", "/readyz")
    print(f"readyz  -> {status}")

    status, opened = call(base, "POST", "/v1/sessions", {
        "session": "http-demo", "interval_instructions": INTERVAL,
    })
    print(f"open    -> {status} {opened}")

    for index in range(24):
        phase_base = PHASE_A if (index // 6) % 2 == 0 else PHASE_B
        pcs = (phase_base + rng.integers(0, 48, size=BATCH) * 4).tolist()
        counts = rng.integers(20, 80, size=BATCH).tolist()
        _, result = call(
            base, "POST", "/v1/sessions/http-demo/observe-batch",
            {"pcs": pcs, "counts": counts, "cpi": 1.0},
        )
        for report in result["reports"]:
            print(f"  interval {report['interval_index']:3d}: "
                  f"phase {report['phase_id']}"
                  + (" [transition]" if report["is_transition"] else "")
                  + (f" -> predicts {report['predicted_next_phase']}"
                     if report["predicted_next_phase"] is not None
                     else ""))

    _, diag = call(base, "GET", "/v1/diagnostics")
    print(f"diagnostics: occupancy={diag['phase_occupancy']} "
          f"accuracy={diag['prediction']['accuracy']} "
          f"pool={diag['pool']['active_slots']}/"
          f"{diag['pool']['capacity']} "
          f"queue_depth={diag['ingest_queue_depth']}")

    with urllib.request.urlopen(base + "/metrics", timeout=10) as response:
        samples = parse_prometheus_text(response.read().decode())
    observes = samples[
        'repro_http_requests_total'
        '{method="POST",route="/v1/sessions/{id}/observe-batch"}'
    ]
    print(f"metrics: {len(samples)} series; "
          f"{int(observes)} observe-batch requests counted")

    print("subscribing to /v1/events while streaming more branches…")
    import threading

    def stream_more():
        for index in range(12):
            phase_base = PHASE_A if (index // 6) % 2 else PHASE_B
            pcs = (phase_base
                   + rng.integers(0, 48, size=BATCH) * 4).tolist()
            counts = rng.integers(20, 80, size=BATCH).tolist()
            call(base, "POST", "/v1/sessions/http-demo/observe-batch",
                 {"pcs": pcs, "counts": counts})

    feeder = threading.Thread(target=stream_more, daemon=True)
    feeder.start()
    for event in sse_events(service.http_host, service.http_port, 3):
        print(f"  SSE: interval {event['interval_index']} "
              f"phase {event['phase_id']} (seq {event['seq']})")
    feeder.join()

    status, _ = call(base, "POST", "/v1/drain", {"grace": 0.5})
    print(f"drain   -> {status}")
    status, body = call(base, "GET", "/readyz")
    print(f"readyz  -> {status} {body}  (draining)")
    handle.stop()
    print("service drained and stopped")


if __name__ == "__main__":
    main()
