"""Workload generator: regions + script + machine -> interval trace.

For each benchmark the generator:

1. calibrates every code region once against the machine model
   (real cache / branch-predictor / TLB simulation; see
   :meth:`repro.simulator.machine.Machine.calibrate`),
2. walks the phase script, emitting one :class:`~repro.workloads.trace.Interval`
   per stable interval (signature records sampled from the region,
   CPI drawn from the calibrated rate with log-normal noise), and
3. inserts *transition intervals* between segments of different regions:
   short runs of intervals whose code records blend the outgoing and
   incoming regions plus one-off "unique" blocks, and whose CPI blends
   the two regions' CPIs with extra noise — the paper's "unique
   behaviour between stable phases" (§4.4).

All randomness derives from a single seed through
:class:`numpy.random.SeedSequence`, so traces are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.simulator.machine import Machine, RegionCalibration
from repro.workloads.basic_block import CodeRegion
from repro.workloads.phase_script import PhaseScript
from repro.workloads.trace import (
    DEFAULT_INTERVAL_INSTRUCTIONS,
    Interval,
    IntervalTrace,
)

#: Address space where one-off transition blocks live, far from any
#: region's code segment so transition signatures are genuinely unique.
_TRANSIENT_CODE_BASE = 0x7000_0000
_TRANSIENT_CODE_SPAN = 0x0100_0000


@dataclass(frozen=True)
class TransitionConfig:
    """Shape of the synthetic transition intervals between segments.

    Parameters
    ----------
    min_length / max_length:
        Number of transition intervals inserted between two stable
        segments (drawn uniformly).
    unique_fraction:
        Share of a transition interval's instructions attributed to
        one-off blocks that never recur.
    unique_blocks:
        How many distinct one-off blocks each transition interval uses.
    cpi_scale_low / cpi_scale_high:
        Transition CPI is the blended region CPI times a uniform draw
        from this range (transitions tend to run colder).
    cpi_sigma:
        Extra log-normal noise applied to transition CPI.
    probability:
        Chance that a segment boundary gets transition intervals at all
        (some phase changes in real programs are clean).
    """

    min_length: int = 1
    max_length: int = 3
    unique_fraction: float = 0.30
    unique_blocks: int = 12
    cpi_scale_low: float = 1.0
    cpi_scale_high: float = 1.35
    cpi_sigma: float = 0.10
    probability: float = 0.9

    def __post_init__(self) -> None:
        if self.min_length < 1 or self.max_length < self.min_length:
            raise ConfigurationError(
                f"invalid transition length range "
                f"[{self.min_length}, {self.max_length}]"
            )
        if not 0.0 <= self.unique_fraction < 1.0:
            raise ConfigurationError(
                f"unique_fraction must be in [0, 1), got "
                f"{self.unique_fraction}"
            )
        if self.unique_blocks < 1:
            raise ConfigurationError(
                f"unique_blocks must be >= 1, got {self.unique_blocks}"
            )
        if not 0.0 < self.cpi_scale_low <= self.cpi_scale_high:
            raise ConfigurationError("invalid transition cpi scale range")
        if self.cpi_sigma < 0:
            raise ConfigurationError("cpi_sigma must be non-negative")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )


class WorkloadGenerator:
    """Generates an :class:`IntervalTrace` for one synthetic benchmark."""

    def __init__(
        self,
        name: str,
        regions: Sequence[CodeRegion],
        script: PhaseScript,
        machine: Optional[Machine] = None,
        seed: int = 0,
        interval_instructions: int = DEFAULT_INTERVAL_INSTRUCTIONS,
        draws_per_interval: int = 4000,
        calibration_events: int = 8192,
        transitions: Optional[TransitionConfig] = None,
    ) -> None:
        if not regions:
            raise ConfigurationError("at least one region is required")
        used = script.regions_used()
        if used and used[-1] >= len(regions):
            raise ConfigurationError(
                f"script references region {used[-1]} but only "
                f"{len(regions)} regions were supplied"
            )
        self.name = name
        self.regions = list(regions)
        self.script = script
        self.machine = machine or Machine()
        self.seed = seed
        self.interval_instructions = interval_instructions
        self.draws_per_interval = draws_per_interval
        self.calibration_events = calibration_events
        self.transitions = transitions or TransitionConfig()
        self._calibrations: Optional[List[RegionCalibration]] = None

    # -- calibration -------------------------------------------------------

    def calibrations(self) -> List[RegionCalibration]:
        """Calibrate every region once (cached)."""
        if self._calibrations is None:
            seeds = np.random.SeedSequence(self.seed).spawn(len(self.regions))
            self._calibrations = [
                self.machine.calibrate(
                    region.sampled_stream(
                        np.random.default_rng(child),
                        events=self.calibration_events,
                    )
                )
                for region, child in zip(self.regions, seeds)
            ]
        return self._calibrations

    # -- interval construction ----------------------------------------------

    def _stable_interval(
        self,
        rng: np.random.Generator,
        region_index: int,
        calibration: RegionCalibration,
    ) -> Interval:
        region = self.regions[region_index]
        pcs, counts, submode = region.sample_interval_records(
            rng,
            self.interval_instructions,
            draws=self.draws_per_interval,
        )
        cpi = (
            calibration.cpi
            * region.submodes[submode].cpi_scale
            * float(rng.lognormal(mean=0.0, sigma=region.cpi_sigma))
        )
        return Interval(
            branch_pcs=pcs,
            instr_counts=counts,
            cpi=cpi,
            region=region_index,
            is_transition=False,
        )

    def _transition_interval(
        self,
        rng: np.random.Generator,
        from_region: int,
        to_region: int,
        mix: float,
    ) -> Interval:
        """Build one transition interval ``mix`` of the way from A to B."""
        cfg = self.transitions
        cals = self.calibrations()
        instructions = self.interval_instructions

        shares = {
            "from": (1.0 - mix) * (1.0 - cfg.unique_fraction),
            "to": mix * (1.0 - cfg.unique_fraction),
            "unique": cfg.unique_fraction,
        }

        pcs_parts: List[np.ndarray] = []
        count_parts: List[np.ndarray] = []
        for key, region_index in (("from", from_region), ("to", to_region)):
            share = shares[key]
            if share <= 0.0:
                continue
            region = self.regions[region_index]
            pcs, counts, _ = region.sample_interval_records(
                rng,
                max(int(round(instructions * share)), 1),
                draws=max(self.draws_per_interval // 2, 1),
            )
            pcs_parts.append(pcs)
            count_parts.append(counts)

        unique_instr = max(int(round(instructions * shares["unique"])), 1)
        unique_pcs = (
            _TRANSIENT_CODE_BASE
            + rng.integers(
                0, _TRANSIENT_CODE_SPAN // 4, size=cfg.unique_blocks
            ).astype(np.int64)
            * 4
        )
        unique_weights = rng.dirichlet(np.full(cfg.unique_blocks, 0.8))
        unique_counts = np.floor(unique_weights * unique_instr).astype(np.int64)
        unique_counts[int(np.argmax(unique_weights))] += unique_instr - int(
            unique_counts.sum()
        )
        keep = unique_counts > 0
        pcs_parts.append(unique_pcs[keep])
        count_parts.append(unique_counts[keep])

        pcs = np.concatenate(pcs_parts)
        counts = np.concatenate(count_parts)
        # Force the exact interval length (parts were rounded separately).
        drift = instructions - int(counts.sum())
        counts[int(np.argmax(counts))] += drift

        blended_cpi = (1.0 - mix) * cals[from_region].cpi + mix * cals[
            to_region
        ].cpi
        cpi = (
            blended_cpi
            * float(rng.uniform(cfg.cpi_scale_low, cfg.cpi_scale_high))
            * float(rng.lognormal(mean=0.0, sigma=cfg.cpi_sigma))
        )
        return Interval(
            branch_pcs=pcs,
            instr_counts=counts,
            cpi=cpi,
            region=-1,
            is_transition=True,
        )

    # -- trace generation ------------------------------------------------------

    def generate(self) -> IntervalTrace:
        """Produce the full interval trace for this benchmark."""
        rng = np.random.default_rng(
            np.random.SeedSequence(self.seed).spawn(len(self.regions) + 1)[-1]
        )
        cals = self.calibrations()
        cfg = self.transitions

        intervals: List[Interval] = []
        previous_region: Optional[int] = None
        for segment in self.script.segments:
            if (
                previous_region is not None
                and previous_region != segment.region
                and rng.random() < cfg.probability
            ):
                # Transition length is characteristic of the (from, to)
                # region pair (real transitions traverse the same glue
                # code), with occasional jitter.
                span = cfg.max_length - cfg.min_length + 1
                run = cfg.min_length + (
                    (previous_region * 131 + segment.region * 37) % span
                )
                if rng.random() < 0.2:
                    run = int(
                        rng.integers(cfg.min_length, cfg.max_length + 1)
                    )
                for step in range(run):
                    mix = (step + 1.0) / (run + 1.0)
                    intervals.append(
                        self._transition_interval(
                            rng, previous_region, segment.region, mix
                        )
                    )
            for _ in range(segment.length):
                intervals.append(
                    self._stable_interval(
                        rng, segment.region, cals[segment.region]
                    )
                )
            previous_region = segment.region

        return IntervalTrace(
            name=self.name,
            intervals=intervals,
            interval_instructions=self.interval_instructions,
            metadata={
                "num_regions": len(self.regions),
                "num_segments": self.script.num_segments,
                "seed": self.seed,
                "region_cpis": [c.cpi for c in cals],
            },
        )
