"""Phase scripts: how regions are sequenced over a program's run.

A :class:`PhaseScript` is an ordered list of :class:`Segment` objects
(region index + length in intervals). The workload generator inserts
noisy *transition intervals* between consecutive segments of different
regions; the script itself describes only the stable structure.

Builders produce the phase-structure archetypes the paper's benchmarks
exhibit (§3, §4.5):

- :func:`stable_pattern` — few long segments (``ammp``, ``perl/d``).
- :func:`hierarchical_pattern` — nested loop over regions, inner
  alternation inside an outer cycle (``bzip2``, ``gzip``).
- :func:`irregular_pattern` — many short, randomly ordered segments
  (``gcc``, ``perl/s``).
- :func:`alternating_pattern` — regular flip-flop between regions
  (``galgel``-like periodic behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Segment:
    """A contiguous run of intervals executing one region."""

    region: int
    length: int

    def __post_init__(self) -> None:
        if self.region < 0:
            raise ConfigurationError(
                f"region index must be non-negative, got {self.region}"
            )
        if self.length <= 0:
            raise ConfigurationError(
                f"segment length must be positive, got {self.length}"
            )


@dataclass
class PhaseScript:
    """The stable-phase structure of a synthetic program run."""

    segments: List[Segment]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ConfigurationError("a phase script needs >= 1 segment")

    @property
    def total_intervals(self) -> int:
        """Stable intervals only (transitions are added by the generator)."""
        return sum(s.length for s in self.segments)

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    def regions_used(self) -> List[int]:
        """Sorted list of distinct region indices referenced."""
        return sorted({s.region for s in self.segments})

    def coalesced(self) -> "PhaseScript":
        """Merge adjacent segments that reference the same region."""
        merged: List[Segment] = []
        for segment in self.segments:
            if merged and merged[-1].region == segment.region:
                merged[-1] = Segment(
                    segment.region, merged[-1].length + segment.length
                )
            else:
                merged.append(segment)
        return PhaseScript(merged)


def parse_script(spec: str) -> PhaseScript:
    """Parse a compact script notation: ``"A:20 B:35 A:20 C:8"``.

    Region names are single tokens; the first distinct name becomes
    region 0, the second region 1, and so on (order of first
    appearance). Repeats are allowed and adjacent same-region segments
    are coalesced. Useful in tests, examples and REPL exploration.

    >>> script = parse_script("produce:20 consume:35 produce:20")
    >>> [(s.region, s.length) for s in script.segments]
    [(0, 20), (1, 35), (0, 20)]
    """
    tokens = spec.split()
    if not tokens:
        raise ConfigurationError("script specification is empty")
    names: List[str] = []
    segments: List[Segment] = []
    for token in tokens:
        name, _, length_text = token.partition(":")
        if not name or not length_text:
            raise ConfigurationError(
                f"malformed segment {token!r}; expected 'name:length'"
            )
        try:
            length = int(length_text)
        except ValueError:
            raise ConfigurationError(
                f"segment {token!r} has a non-integer length"
            ) from None
        if name not in names:
            names.append(name)
        segments.append(Segment(names.index(name), length))
    return PhaseScript(segments).coalesced()


def _draw_length(
    rng: np.random.Generator, low: int, high: int
) -> int:
    """Draw a segment length uniformly in [low, high]."""
    if low <= 0 or high < low:
        raise ConfigurationError(
            f"invalid length range [{low}, {high}]"
        )
    return int(rng.integers(low, high + 1))


def stable_pattern(
    rng: np.random.Generator,
    num_regions: int,
    total_intervals: int,
    min_length: int = 60,
    max_length: int = 400,
    length_jitter: float = 0.1,
) -> PhaseScript:
    """Few long segments cycling through the regions in order.

    Each region's segment length is characteristic (drawn once) with
    occasional ±10% perturbation — outer program loops repeat their
    per-iteration work, which keeps run lengths predictable.
    """
    _check_pattern_args(num_regions, total_intervals)
    if not 0.0 <= length_jitter <= 1.0:
        raise ConfigurationError(
            f"length_jitter must be in [0, 1], got {length_jitter}"
        )
    characteristic = [
        _draw_length(rng, min_length, max_length)
        for _ in range(num_regions)
    ]
    segments: List[Segment] = []
    produced = 0
    region = 0
    while produced < total_intervals:
        length = characteristic[region]
        if rng.random() < length_jitter:
            delta = max(int(round(length * 0.1)), 1)
            length = max(length + int(rng.integers(-delta, delta + 1)), 1)
        length = min(length, total_intervals - produced)
        segments.append(Segment(region, length))
        produced += length
        region = (region + 1) % num_regions
    return PhaseScript(segments).coalesced()


def hierarchical_pattern(
    rng: np.random.Generator,
    num_regions: int,
    total_intervals: int,
    inner_min: int = 8,
    inner_max: int = 50,
    outer_cycle: int = 3,
    length_jitter: float = 0.12,
) -> PhaseScript:
    """Nested-loop structure: an outer cycle over groups of regions.

    Regions are partitioned into ``outer_cycle`` groups; the script
    repeatedly visits each group and alternates between that group's
    regions with medium-length inner segments — the bzip2/gzip shape
    (compress / reorder / output stages, each with inner loops).

    Each region has a *characteristic* inner length drawn once; each
    visit reuses it exactly with probability ``1 - length_jitter`` and
    otherwise perturbs it by ±1-2 intervals. Real loop nests repeat
    their trip counts, which is what makes run-length-encoded phase
    history predictive (paper §5.2.3).
    """
    _check_pattern_args(num_regions, total_intervals)
    if outer_cycle <= 0:
        raise ConfigurationError(
            f"outer_cycle must be positive, got {outer_cycle}"
        )
    if not 0.0 <= length_jitter <= 1.0:
        raise ConfigurationError(
            f"length_jitter must be in [0, 1], got {length_jitter}"
        )
    groups: List[List[int]] = [[] for _ in range(min(outer_cycle, num_regions))]
    for region in range(num_regions):
        groups[region % len(groups)].append(region)
    characteristic = {
        region: _draw_length(rng, inner_min, inner_max)
        for region in range(num_regions)
    }

    segments: List[Segment] = []
    produced = 0
    group_index = 0
    while produced < total_intervals:
        group = groups[group_index % len(groups)]
        # Visit each region of the group once per outer iteration.
        for region in group:
            if produced >= total_intervals:
                break
            length = characteristic[region]
            if rng.random() < length_jitter:
                length = max(length + int(rng.integers(-2, 3)), 1)
            length = min(length, total_intervals - produced)
            segments.append(Segment(region, length))
            produced += length
        group_index += 1
    return PhaseScript(segments).coalesced()


def irregular_pattern(
    rng: np.random.Generator,
    num_regions: int,
    total_intervals: int,
    min_length: int = 2,
    max_length: int = 12,
    revisit_bias: float = 0.3,
    length_jitter: float = 0.5,
) -> PhaseScript:
    """Many short segments in near-random order (the gcc shape).

    ``revisit_bias`` is the probability that the next segment re-uses
    one of the two most recently seen regions (programs do loop), the
    rest of the mass is spread uniformly. Segment lengths are mostly a
    per-region characteristic (compiler passes take similar time per
    function) with ``length_jitter`` probability of a fresh draw.
    """
    _check_pattern_args(num_regions, total_intervals)
    if not 0.0 <= revisit_bias <= 1.0:
        raise ConfigurationError(
            f"revisit_bias must be in [0, 1], got {revisit_bias}"
        )
    if not 0.0 <= length_jitter <= 1.0:
        raise ConfigurationError(
            f"length_jitter must be in [0, 1], got {length_jitter}"
        )
    characteristic = [
        _draw_length(rng, min_length, max_length)
        for _ in range(num_regions)
    ]
    segments: List[Segment] = []
    produced = 0
    recent: List[int] = []
    current = int(rng.integers(num_regions))
    while produced < total_intervals:
        if rng.random() < length_jitter:
            length = _draw_length(rng, min_length, max_length)
        else:
            length = characteristic[current]
        length = min(length, total_intervals - produced)
        segments.append(Segment(current, length))
        produced += length
        if current in recent:
            recent.remove(current)
        recent.append(current)
        recent = recent[-2:]

        if recent and rng.random() < revisit_bias:
            nxt = int(rng.choice(recent))
        else:
            nxt = int(rng.integers(num_regions))
        if nxt == current and num_regions > 1:
            nxt = (nxt + 1) % num_regions
        current = nxt
    return PhaseScript(segments).coalesced()


def alternating_pattern(
    rng: np.random.Generator,
    num_regions: int,
    total_intervals: int,
    period_min: int = 10,
    period_max: int = 40,
) -> PhaseScript:
    """Strictly periodic rotation through the regions (galgel shape)."""
    _check_pattern_args(num_regions, total_intervals)
    segments: List[Segment] = []
    produced = 0
    region = 0
    period = _draw_length(rng, period_min, period_max)
    while produced < total_intervals:
        length = min(period, total_intervals - produced)
        segments.append(Segment(region, length))
        produced += length
        region = (region + 1) % num_regions
    return PhaseScript(segments).coalesced()


def _check_pattern_args(num_regions: int, total_intervals: int) -> None:
    if num_regions <= 0:
        raise ConfigurationError(
            f"num_regions must be positive, got {num_regions}"
        )
    if total_intervals <= 0:
        raise ConfigurationError(
            f"total_intervals must be positive, got {total_intervals}"
        )
