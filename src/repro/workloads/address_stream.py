"""Synthetic memory reference generators.

Each generator returns an array of byte addresses that exhibits one of
the classic locality patterns. They are used to give each code region a
distinct, *reproducible* memory personality which the cache models in
:mod:`repro.simulator` then turn into miss rates:

- ``strided``: sequential array walks — low D-cache miss rate once the
  stride fits a line, near-zero with small working sets.
- ``random_in_working_set``: uniform references over a working set —
  miss rate governed by working-set size vs. cache capacity.
- ``pointer_chase``: a random-permutation linked-list walk, the ``mcf``
  personality — nearly every reference misses once the list exceeds the
  cache.
- ``mixed``: a weighted blend of the above.

All generators take a :class:`numpy.random.Generator` so workload
construction is fully deterministic under a fixed seed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Patterns accepted by :func:`generate`.
PATTERNS = ("strided", "random", "pointer", "mixed")


def strided(
    rng: np.random.Generator,
    count: int,
    base: int,
    working_set_bytes: int,
    stride: int = 8,
) -> np.ndarray:
    """Sequential walk over the working set with a fixed stride.

    The walk wraps around the working set, restarting from a random
    offset each wrap so repeated calibrations are not phase-locked.
    """
    _validate(count, working_set_bytes)
    if stride <= 0:
        raise ConfigurationError(f"stride must be positive, got {stride}")
    start = int(rng.integers(0, max(working_set_bytes // stride, 1)))
    offsets = (start + np.arange(count, dtype=np.int64)) * stride
    return base + (offsets % working_set_bytes)


def random_in_working_set(
    rng: np.random.Generator,
    count: int,
    base: int,
    working_set_bytes: int,
    granule: int = 8,
) -> np.ndarray:
    """Uniformly random references over the working set."""
    _validate(count, working_set_bytes)
    slots = max(working_set_bytes // granule, 1)
    return base + rng.integers(0, slots, size=count).astype(np.int64) * granule


def pointer_chase(
    rng: np.random.Generator,
    count: int,
    base: int,
    working_set_bytes: int,
    node_bytes: int = 32,
) -> np.ndarray:
    """Walk a random-permutation cycle of linked nodes.

    Every step visits a node chosen by a fixed random permutation, so
    there is no spatial locality and almost no temporal reuse until the
    whole cycle has been traversed — the canonical cache-hostile pattern
    of pointer-based codes like ``mcf``.
    """
    _validate(count, working_set_bytes)
    if node_bytes <= 0:
        raise ConfigurationError(
            f"node_bytes must be positive, got {node_bytes}"
        )
    nodes = max(working_set_bytes // node_bytes, 2)
    permutation = rng.permutation(nodes)
    start = int(rng.integers(0, nodes))
    indices = np.empty(count, dtype=np.int64)
    current = start
    for i in range(count):
        indices[i] = current
        current = int(permutation[current])
    return base + indices * node_bytes


def mixed(
    rng: np.random.Generator,
    count: int,
    base: int,
    working_set_bytes: int,
    weights: Sequence[float] = (0.5, 0.3, 0.2),
) -> np.ndarray:
    """Interleave strided, random and pointer-chase references.

    ``weights`` gives the fraction of references drawn from each of the
    three component patterns (strided, random, pointer), in that order.
    """
    _validate(count, working_set_bytes)
    if len(weights) != 3 or any(w < 0 for w in weights):
        raise ConfigurationError(
            f"weights must be three non-negative numbers, got {weights!r}"
        )
    total = float(sum(weights))
    if total <= 0:
        raise ConfigurationError("weights must not all be zero")
    counts = [int(round(count * w / total)) for w in weights]
    counts[0] += count - sum(counts)  # absorb rounding in the first part
    parts = [
        strided(rng, counts[0], base, working_set_bytes),
        random_in_working_set(rng, counts[1], base, working_set_bytes),
        pointer_chase(rng, counts[2], base, working_set_bytes),
    ]
    stream = np.concatenate([p for p in parts if p.size])
    rng.shuffle(stream)
    return stream


def generate(
    pattern: str,
    rng: np.random.Generator,
    count: int,
    base: int,
    working_set_bytes: int,
) -> np.ndarray:
    """Dispatch to the generator named by ``pattern``."""
    if pattern == "strided":
        return strided(rng, count, base, working_set_bytes)
    if pattern == "random":
        return random_in_working_set(rng, count, base, working_set_bytes)
    if pattern == "pointer":
        return pointer_chase(rng, count, base, working_set_bytes)
    if pattern == "mixed":
        return mixed(rng, count, base, working_set_bytes)
    raise ConfigurationError(
        f"unknown address pattern {pattern!r}; expected one of {PATTERNS}"
    )


def _validate(count: int, working_set_bytes: int) -> None:
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    if working_set_bytes <= 0:
        raise ConfigurationError(
            f"working_set_bytes must be positive, got {working_set_bytes}"
        )
