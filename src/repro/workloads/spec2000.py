"""Synthetic models of the paper's eleven SPEC CPU2000 workloads.

Each model reproduces the phase *structure* the paper reports for its
benchmark (§3, §4.4-§4.5), not the benchmark's instruction semantics:

- ``ammp`` — FP code with a few long, very stable phases.
- ``bzip2/g``, ``bzip2/p`` — hierarchical (nested-loop) phase patterns:
  compress / reorder / output stages with inner alternation.
- ``galgel`` — periodic alternation between *related* regions (sibling
  block populations), the hardest case for code-signature similarity.
- ``gcc/1``, ``gcc/s`` — many short irregular phases, frequent
  transitions, big code footprint; the paper's hardest benchmarks
  (gcc/s spends ~30% of intervals in transitions at min-count 8).
- ``gzip/g``, ``gzip/p`` — long stable runs; gzip/g has exceptionally
  long phases and 40% of its changes lead to long stable phases.
- ``mcf`` — pointer-chasing with working sets far beyond the L2, high
  CPI, and sub-modes that reward a tightened similarity threshold.
- ``perl/d`` — few long stable phases (short program).
- ``perl/s`` — more complex phase behaviour with CPI sub-modes that
  benefit from the adaptive (dynamic-threshold) classifier.

Use :func:`build_benchmark` for a configured generator or
:func:`benchmark` for a generated trace. The ``scale`` parameter shrinks
the run length proportionally (tests use small scales for speed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.simulator.machine import Machine
from repro.workloads.basic_block import CodeRegion, make_submodes
from repro.workloads.generator import TransitionConfig, WorkloadGenerator
from repro.workloads.phase_script import (
    PhaseScript,
    alternating_pattern,
    hierarchical_pattern,
    irregular_pattern,
    stable_pattern,
)
from repro.workloads.trace import DEFAULT_INTERVAL_INSTRUCTIONS, IntervalTrace

#: Canonical paper names, in the paper's figure order.
BENCHMARK_NAMES: Tuple[str, ...] = (
    "ammp",
    "bzip2/g",
    "bzip2/p",
    "galgel",
    "gcc/1",
    "gcc/s",
    "gzip/g",
    "gzip/p",
    "mcf",
    "perl/d",
    "perl/s",
)

_KB = 1024
_MB = 1024 * 1024

_BuilderResult = Tuple[List[CodeRegion], PhaseScript, TransitionConfig]
_Builder = Callable[[np.random.Generator, int], _BuilderResult]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Descriptor of one synthetic benchmark model."""

    name: str
    seed: int
    description: str
    nominal_intervals: int


def _intervals(nominal: int, scale: float) -> int:
    count = max(int(round(nominal * scale)), 20)
    return count


def _region_base(index: int) -> int:
    """Give each region its own disjoint code segment."""
    return 0x0040_0000 + index * 0x0010_0000


# ---------------------------------------------------------------------------
# Benchmark builders. Each returns (regions, script, transition config).
# ---------------------------------------------------------------------------


def _build_ammp(rng: np.random.Generator, total: int) -> _BuilderResult:
    regions = [
        CodeRegion(
            "ammp.force", rng, num_blocks=40,
            code_base=_region_base(0), pattern="strided",
            working_set_bytes=96 * _KB, loads_per_instr=0.35,
            loop_fraction=0.8, data_bias=0.8, base_ipc=2.4, cpi_sigma=0.05,
        ),
        CodeRegion(
            "ammp.neighbor", rng, num_blocks=36,
            code_base=_region_base(1), pattern="random",
            working_set_bytes=512 * _KB, loads_per_instr=0.40,
            loop_fraction=0.7, data_bias=0.7, base_ipc=1.8, cpi_sigma=0.05,
        ),
        CodeRegion(
            "ammp.integrate", rng, num_blocks=32,
            code_base=_region_base(2), pattern="strided",
            working_set_bytes=48 * _KB, loads_per_instr=0.30,
            loop_fraction=0.85, data_bias=0.85, base_ipc=2.8, cpi_sigma=0.05,
        ),
    ]
    script = stable_pattern(rng, 3, total, min_length=100, max_length=350)
    return regions, script, TransitionConfig(min_length=1, max_length=2)


def _build_bzip2(
    rng: np.random.Generator, total: int, program_input: bool
) -> _BuilderResult:
    inner = (4, 18) if program_input else (5, 20)
    regions = [
        CodeRegion(
            "bzip2.read", rng, num_blocks=30,
            code_base=_region_base(0), pattern="strided",
            working_set_bytes=256 * _KB, loads_per_instr=0.30,
            loop_fraction=0.75, data_bias=0.8, base_ipc=2.2, cpi_sigma=0.07,
        ),
        CodeRegion(
            "bzip2.sort", rng, num_blocks=44,
            code_base=_region_base(1), pattern="random",
            working_set_bytes=1 * _MB, loads_per_instr=0.45,
            loop_fraction=0.5, data_bias=0.6, base_ipc=1.6, cpi_sigma=0.09,
        ),
        CodeRegion(
            "bzip2.mtf", rng, num_blocks=36,
            code_base=_region_base(2), pattern="mixed",
            working_set_bytes=128 * _KB, loads_per_instr=0.35,
            loop_fraction=0.6, data_bias=0.65, base_ipc=1.9, cpi_sigma=0.07,
        ),
        CodeRegion(
            "bzip2.huffman", rng, num_blocks=40,
            code_base=_region_base(3), pattern="strided",
            working_set_bytes=64 * _KB, loads_per_instr=0.25,
            loop_fraction=0.7, data_bias=0.75, base_ipc=2.5, cpi_sigma=0.07,
        ),
        CodeRegion(
            "bzip2.write", rng, num_blocks=28,
            code_base=_region_base(4), pattern="strided",
            working_set_bytes=32 * _KB, loads_per_instr=0.28,
            loop_fraction=0.8, data_bias=0.85, base_ipc=2.7, cpi_sigma=0.07,
        ),
    ]
    script = hierarchical_pattern(
        rng, 5, total, inner_min=inner[0], inner_max=inner[1], outer_cycle=2
    )
    return regions, script, TransitionConfig(min_length=1, max_length=3)


def _build_galgel(rng: np.random.Generator, total: int) -> _BuilderResult:
    solver = CodeRegion(
        "galgel.solver", rng, num_blocks=48,
        code_base=_region_base(0), pattern="strided",
        working_set_bytes=256 * _KB, loads_per_instr=0.4,
        loop_fraction=0.85, data_bias=0.8, base_ipc=2.2, cpi_sigma=0.09,
    )
    # Sibling regions share the solver's blocks with jittered weights:
    # signatures land near the similarity threshold, which is what makes
    # galgel hard for code-based classification.
    sibling_a = CodeRegion.sibling(
        solver, rng, "galgel.solver.varA", weight_jitter=0.45,
        cpi_scale_hint=1.25,
    )
    sibling_b = CodeRegion.sibling(
        solver, rng, "galgel.solver.varB", weight_jitter=0.45,
        cpi_scale_hint=0.85,
    )
    assembly = CodeRegion(
        "galgel.assembly", rng, num_blocks=40,
        code_base=_region_base(1), pattern="random",
        working_set_bytes=768 * _KB, loads_per_instr=0.45,
        loop_fraction=0.6, data_bias=0.7, base_ipc=1.7, cpi_sigma=0.09,
    )
    regions = [solver, sibling_a, sibling_b, assembly]
    script = alternating_pattern(rng, 4, total, period_min=8, period_max=18)
    return regions, script, TransitionConfig(min_length=1, max_length=2)


def _build_gcc(
    rng: np.random.Generator, total: int, scilab_input: bool
) -> _BuilderResult:
    num_regions = 14 if scilab_input else 12
    seg_range = (4, 10) if scilab_input else (4, 12)
    patterns = ("mixed", "random", "strided", "pointer")
    regions = []
    for index in range(num_regions):
        regions.append(
            CodeRegion(
                f"gcc.pass{index}", rng,
                num_blocks=int(rng.integers(40, 64)),
                code_base=_region_base(index),
                code_bytes=64 * _KB,  # big code footprint: I-cache misses
                pattern=patterns[index % len(patterns)],
                working_set_bytes=int(
                    rng.choice([128 * _KB, 256 * _KB, 512 * _KB, 2 * _MB])
                ),
                loads_per_instr=float(rng.uniform(0.3, 0.5)),
                hot_fraction=float(rng.uniform(0.82, 0.93)),
                loop_fraction=float(rng.uniform(0.35, 0.6)),
                data_bias=float(rng.uniform(0.55, 0.75)),
                base_ipc=float(rng.uniform(1.2, 2.6)),
                cpi_sigma=0.11,
            )
        )
    script = irregular_pattern(
        rng, num_regions, total,
        min_length=seg_range[0], max_length=seg_range[1], revisit_bias=0.35,
    )
    transitions = TransitionConfig(
        min_length=1,
        max_length=2,
        unique_fraction=0.35,
        probability=0.8,
    )
    return regions, script, transitions


def _build_gzip(
    rng: np.random.Generator, total: int, program_input: bool
) -> _BuilderResult:
    regions = [
        CodeRegion(
            "gzip.deflate", rng, num_blocks=36,
            code_base=_region_base(0), pattern="strided",
            working_set_bytes=128 * _KB, loads_per_instr=0.35,
            loop_fraction=0.75, data_bias=0.8, base_ipc=2.3, cpi_sigma=0.06,
        ),
        CodeRegion(
            "gzip.longest_match", rng, num_blocks=32,
            code_base=_region_base(1), pattern="random",
            working_set_bytes=384 * _KB, loads_per_instr=0.45,
            loop_fraction=0.65, data_bias=0.7, base_ipc=1.8, cpi_sigma=0.07,
        ),
        CodeRegion(
            "gzip.fill_window", rng, num_blocks=28,
            code_base=_region_base(2), pattern="strided",
            working_set_bytes=64 * _KB, loads_per_instr=0.30,
            loop_fraction=0.85, data_bias=0.9, base_ipc=2.8, cpi_sigma=0.06,
        ),
        CodeRegion(
            "gzip.tree", rng, num_blocks=34,
            code_base=_region_base(3), pattern="mixed",
            working_set_bytes=96 * _KB, loads_per_instr=0.33,
            loop_fraction=0.6, data_bias=0.7, base_ipc=2.1, cpi_sigma=0.07,
        ),
    ]
    if program_input:
        script = hierarchical_pattern(
            rng, 4, total, inner_min=8, inner_max=30, outer_cycle=2
        )
    else:
        # graphic input: few, exceptionally long stable runs.
        script = stable_pattern(rng, 3, total, min_length=120, max_length=300)
        regions = regions[:3]
    return regions, script, TransitionConfig(min_length=1, max_length=2)


def _build_mcf(rng: np.random.Generator, total: int) -> _BuilderResult:
    # Pointer-chasing with working sets far beyond the 128 KB L2.
    simplex = CodeRegion(
        "mcf.simplex", rng, num_blocks=38,
        code_base=_region_base(0), pattern="pointer",
        working_set_bytes=4 * _MB, loads_per_instr=0.5, hot_fraction=0.84,
        loop_fraction=0.45, data_bias=0.6, base_ipc=1.4, cpi_sigma=0.07,
    )
    # The dominant region runs in two sub-modes with distinct CPI: a
    # loose threshold lumps them (high CoV); tightening splits them —
    # mcf is the paper's showcase for the adaptive classifier (Fig. 6).
    simplex.set_submodes(
        make_submodes(
            rng, simplex.num_blocks, cpi_scales=(1.0, 1.45), intensity=0.4
        ),
        probabilities=[0.55, 0.45],
    )
    regions = [
        simplex,
        CodeRegion(
            "mcf.pricing", rng, num_blocks=34,
            code_base=_region_base(1), pattern="pointer",
            working_set_bytes=2 * _MB, loads_per_instr=0.45,
            hot_fraction=0.87,
            loop_fraction=0.5, data_bias=0.65, base_ipc=1.6, cpi_sigma=0.07,
        ),
        CodeRegion(
            "mcf.refresh", rng, num_blocks=30,
            code_base=_region_base(2), pattern="strided",
            working_set_bytes=1 * _MB, loads_per_instr=0.4,
            loop_fraction=0.7, data_bias=0.8, base_ipc=2.0, cpi_sigma=0.07,
        ),
    ]
    script = stable_pattern(rng, 3, total, min_length=30, max_length=100)
    return regions, script, TransitionConfig(min_length=1, max_length=3)


def _build_perl(
    rng: np.random.Generator, total: int, splitmail_input: bool
) -> _BuilderResult:
    if not splitmail_input:
        # diffmail: a short program with a few long stable phases.
        regions = [
            CodeRegion(
                "perl.interp", rng, num_blocks=44,
                code_base=_region_base(0), code_bytes=48 * _KB,
                pattern="mixed", working_set_bytes=256 * _KB,
                loads_per_instr=0.4, loop_fraction=0.5, data_bias=0.65,
                base_ipc=1.9, cpi_sigma=0.07,
            ),
            CodeRegion(
                "perl.regex", rng, num_blocks=36,
                code_base=_region_base(1), pattern="strided",
                working_set_bytes=64 * _KB, loads_per_instr=0.3,
                loop_fraction=0.7, data_bias=0.8, base_ipc=2.4,
                cpi_sigma=0.07,
            ),
            CodeRegion(
                "perl.io", rng, num_blocks=30,
                code_base=_region_base(2), pattern="strided",
                working_set_bytes=96 * _KB, loads_per_instr=0.35,
                loop_fraction=0.65, data_bias=0.75, base_ipc=2.1,
                cpi_sigma=0.07,
            ),
            CodeRegion(
                "perl.hash", rng, num_blocks=34,
                code_base=_region_base(3), pattern="random",
                working_set_bytes=512 * _KB, loads_per_instr=0.45,
                loop_fraction=0.55, data_bias=0.6, base_ipc=1.7,
                cpi_sigma=0.07,
            ),
        ]
        script = stable_pattern(rng, 4, total, min_length=80, max_length=300)
        return regions, script, TransitionConfig(min_length=1, max_length=2)

    # splitmail: more complex behaviour; two regions carry CPI sub-modes
    # so the dynamic-threshold classifier has something to split (Fig. 6).
    regions = []
    for index in range(6):
        region = CodeRegion(
            f"perl.split{index}", rng,
            num_blocks=int(rng.integers(32, 52)),
            code_base=_region_base(index), code_bytes=32 * _KB,
            pattern=("mixed", "random", "strided")[index % 3],
            working_set_bytes=int(
                rng.choice([96 * _KB, 256 * _KB, 768 * _KB])
            ),
            loads_per_instr=float(rng.uniform(0.3, 0.45)),
            loop_fraction=float(rng.uniform(0.45, 0.7)),
            data_bias=float(rng.uniform(0.6, 0.8)),
            base_ipc=float(rng.uniform(1.5, 2.5)),
            cpi_sigma=0.09,
        )
        if index in (0, 2):
            region.set_submodes(
                make_submodes(
                    rng, region.num_blocks, cpi_scales=(1.0, 1.4),
                    intensity=0.4,
                ),
                probabilities=[0.6, 0.4],
            )
        regions.append(region)
    script = irregular_pattern(
        rng, 6, total, min_length=8, max_length=40, revisit_bias=0.4
    )
    return regions, script, TransitionConfig(min_length=1, max_length=3)


# ---------------------------------------------------------------------------
# Registry and public API
# ---------------------------------------------------------------------------

_SPECS: Dict[str, BenchmarkSpec] = {
    "ammp": BenchmarkSpec(
        "ammp", seed=101, nominal_intervals=1200,
        description="FP molecular dynamics: few long stable phases",
    ),
    "bzip2/g": BenchmarkSpec(
        "bzip2/g", seed=102, nominal_intervals=1400,
        description="bzip2, graphic input: hierarchical phase pattern",
    ),
    "bzip2/p": BenchmarkSpec(
        "bzip2/p", seed=103, nominal_intervals=1300,
        description="bzip2, program input: hierarchical phase pattern",
    ),
    "galgel": BenchmarkSpec(
        "galgel", seed=104, nominal_intervals=1400,
        description="periodic alternation between related regions",
    ),
    "gcc/1": BenchmarkSpec(
        "gcc/1", seed=105, nominal_intervals=1500,
        description="gcc, 166 input: many short irregular phases",
    ),
    "gcc/s": BenchmarkSpec(
        "gcc/s", seed=106, nominal_intervals=1300,
        description="gcc, scilab input: very short phases, many transitions",
    ),
    "gzip/g": BenchmarkSpec(
        "gzip/g", seed=107, nominal_intervals=700,
        description="gzip, graphic input: exceptionally long stable runs",
    ),
    "gzip/p": BenchmarkSpec(
        "gzip/p", seed=108, nominal_intervals=1200,
        description="gzip, program input: hierarchical with long runs",
    ),
    "mcf": BenchmarkSpec(
        "mcf", seed=109, nominal_intervals=1300,
        description="pointer-chasing, cache-hostile, CPI sub-modes",
    ),
    "perl/d": BenchmarkSpec(
        "perl/d", seed=110, nominal_intervals=800,
        description="perl, diffmail input: few long stable phases",
    ),
    "perl/s": BenchmarkSpec(
        "perl/s", seed=111, nominal_intervals=1200,
        description="perl, splitmail input: complex phases with sub-modes",
    ),
}


def _dispatch(
    name: str, rng: np.random.Generator, total: int
) -> _BuilderResult:
    if name == "ammp":
        return _build_ammp(rng, total)
    if name == "bzip2/g":
        return _build_bzip2(rng, total, program_input=False)
    if name == "bzip2/p":
        return _build_bzip2(rng, total, program_input=True)
    if name == "galgel":
        return _build_galgel(rng, total)
    if name == "gcc/1":
        return _build_gcc(rng, total, scilab_input=False)
    if name == "gcc/s":
        return _build_gcc(rng, total, scilab_input=True)
    if name == "gzip/g":
        return _build_gzip(rng, total, program_input=False)
    if name == "gzip/p":
        return _build_gzip(rng, total, program_input=True)
    if name == "mcf":
        return _build_mcf(rng, total)
    if name == "perl/d":
        return _build_perl(rng, total, splitmail_input=False)
    if name == "perl/s":
        return _build_perl(rng, total, splitmail_input=True)
    raise ConfigurationError(
        f"unknown benchmark {name!r}; expected one of {BENCHMARK_NAMES}"
    )


def spec(name: str) -> BenchmarkSpec:
    """Return the descriptor for a benchmark name."""
    try:
        return _SPECS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; expected one of {BENCHMARK_NAMES}"
        ) from None


def build_benchmark(
    name: str,
    machine: Optional[Machine] = None,
    scale: float = 1.0,
    seed: Optional[int] = None,
    interval_instructions: int = DEFAULT_INTERVAL_INSTRUCTIONS,
) -> WorkloadGenerator:
    """Construct the generator for one of the paper's benchmarks.

    Parameters
    ----------
    name:
        One of :data:`BENCHMARK_NAMES`.
    machine:
        Machine model used for region calibration (Table 1 by default).
    scale:
        Run-length multiplier; 1.0 reproduces the nominal run. Tests use
        small scales for speed.
    seed:
        Override the benchmark's fixed seed (for robustness studies).
    """
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    descriptor = spec(name)
    effective_seed = descriptor.seed if seed is None else seed
    structure_rng = np.random.default_rng(
        np.random.SeedSequence(effective_seed)
    )
    total = _intervals(descriptor.nominal_intervals, scale)
    regions, script, transitions = _dispatch(name, structure_rng, total)
    return WorkloadGenerator(
        name=name,
        regions=regions,
        script=script,
        machine=machine,
        seed=effective_seed + 7919,  # decouple sampling from structure
        interval_instructions=interval_instructions,
        transitions=transitions,
    )


def benchmark(
    name: str,
    machine: Optional[Machine] = None,
    scale: float = 1.0,
    seed: Optional[int] = None,
) -> IntervalTrace:
    """Generate the interval trace for one of the paper's benchmarks."""
    return build_benchmark(
        name, machine=machine, scale=scale, seed=seed
    ).generate()


def all_benchmarks(
    machine: Optional[Machine] = None, scale: float = 1.0
) -> Dict[str, IntervalTrace]:
    """Generate every benchmark's trace (the full evaluation input).

    Returns a name-keyed dictionary in the paper's figure order. At
    full scale this takes a couple of minutes; experiments should
    prefer :func:`repro.harness.cache.cached_trace`, which memoizes.
    """
    return {
        name: benchmark(name, machine=machine, scale=scale)
        for name in BENCHMARK_NAMES
    }
