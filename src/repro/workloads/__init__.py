"""Workload substrate: synthetic SPEC CPU2000 benchmark models.

The paper runs eleven SPEC 2000 benchmark/input pairs under
SimpleScalar. Neither is available offline, so this package builds the
closest synthetic equivalent (DESIGN.md §2): each benchmark is a set of
*code regions* — disjoint basic-block populations with distinct branch,
memory and ILP behaviour — sequenced by a *phase script* with explicit
noisy transition intervals between stable segments.

Modules:

- :mod:`repro.workloads.basic_block` — basic blocks, sub-modes, code
  regions, and their per-interval signature sampling.
- :mod:`repro.workloads.address_stream` — synthetic memory reference
  generators (strided / random-in-working-set / pointer-chase / mixed).
- :mod:`repro.workloads.branch_stream` — synthetic branch outcome
  generators (loop branches vs data-dependent branches).
- :mod:`repro.workloads.phase_script` — segment sequencing patterns
  (stable, hierarchical, irregular, alternating).
- :mod:`repro.workloads.trace` — interval records and whole-run traces.
- :mod:`repro.workloads.generator` — calibrates regions on the machine
  model and emits :class:`~repro.workloads.trace.IntervalTrace` objects.
- :mod:`repro.workloads.spec2000` — the eleven benchmark models.
"""

from repro.workloads.basic_block import BasicBlock, CodeRegion, SubMode
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.phase_script import PhaseScript, Segment
from repro.workloads.spec2000 import (
    BENCHMARK_NAMES,
    BenchmarkSpec,
    benchmark,
    build_benchmark,
)
from repro.workloads.trace import Interval, IntervalTrace

__all__ = [
    "BENCHMARK_NAMES",
    "BasicBlock",
    "BenchmarkSpec",
    "CodeRegion",
    "Interval",
    "IntervalTrace",
    "PhaseScript",
    "Segment",
    "SubMode",
    "WorkloadGenerator",
    "benchmark",
    "build_benchmark",
]
