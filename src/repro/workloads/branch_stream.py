"""Synthetic branch outcome generators.

Gives each code region a branch-behaviour personality for calibration
against the hybrid predictor in :mod:`repro.simulator.branch`:

- *loop branches* are taken with high probability and follow a periodic
  pattern (taken ``trip_count - 1`` times, then not taken) — highly
  predictable by both gshare and bimodal.
- *data-dependent branches* are Bernoulli with a per-branch bias —
  predictable only up to their bias.

A region's overall predictability is set by the mix of the two and by
the bias distribution of its data-dependent branches.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError


def loop_branch_outcomes(
    rng: np.random.Generator, count: int, trip_count: int
) -> np.ndarray:
    """Outcomes of a loop back-edge with the given trip count.

    The branch is taken ``trip_count - 1`` consecutive times, then falls
    through, repeating. The phase within the pattern is randomized.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    if trip_count < 2:
        raise ConfigurationError(
            f"trip_count must be at least 2, got {trip_count}"
        )
    phase = int(rng.integers(0, trip_count))
    positions = (np.arange(count, dtype=np.int64) + phase) % trip_count
    return positions != (trip_count - 1)


def biased_outcomes(
    rng: np.random.Generator, count: int, taken_probability: float
) -> np.ndarray:
    """Independent Bernoulli outcomes with the given taken probability."""
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    if not 0.0 <= taken_probability <= 1.0:
        raise ConfigurationError(
            f"taken_probability must be in [0, 1], got {taken_probability}"
        )
    return rng.random(count) < taken_probability


def region_branch_sample(
    rng: np.random.Generator,
    branch_pcs: np.ndarray,
    branch_weights: np.ndarray,
    count: int,
    loop_fraction: float,
    data_bias: float,
    trip_count: int = 16,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``count`` (pc, outcome) pairs for one region.

    Static branches are partitioned into loop branches (the first
    ``loop_fraction`` of the population, weighted) and data-dependent
    branches. Dynamic instances are drawn from ``branch_weights``; each
    instance's outcome follows its static branch's class.

    Returns
    -------
    (pcs, taken):
        Parallel arrays of sampled PCs and boolean outcomes.
    """
    branch_pcs = np.asarray(branch_pcs, dtype=np.int64)
    branch_weights = np.asarray(branch_weights, dtype=np.float64)
    if branch_pcs.ndim != 1 or branch_pcs.shape != branch_weights.shape:
        raise ConfigurationError(
            "branch_pcs and branch_weights must be parallel 1-D arrays"
        )
    if branch_pcs.size == 0:
        raise ConfigurationError("region has no static branches")
    if not 0.0 <= loop_fraction <= 1.0:
        raise ConfigurationError(
            f"loop_fraction must be in [0, 1], got {loop_fraction}"
        )
    total = branch_weights.sum()
    if total <= 0:
        raise ConfigurationError("branch weights must sum to a positive value")

    probabilities = branch_weights / total
    choices = rng.choice(branch_pcs.size, size=count, p=probabilities)
    pcs = branch_pcs[choices]

    num_loop = int(round(branch_pcs.size * loop_fraction))
    is_loop_static = np.zeros(branch_pcs.size, dtype=bool)
    is_loop_static[:num_loop] = True
    is_loop = is_loop_static[choices]

    taken = np.empty(count, dtype=bool)
    loop_count = int(is_loop.sum())
    if loop_count:
        taken[is_loop] = loop_branch_outcomes(rng, loop_count, trip_count)
    data_count = count - loop_count
    if data_count:
        taken[~is_loop] = biased_outcomes(rng, data_count, data_bias)
    return pcs, taken
