"""Canonical single-region microbenchmarks.

Small, named :class:`~repro.workloads.basic_block.CodeRegion` factories
with extreme, well-understood personalities. They serve three roles:

- characterization tests of the machine model (each stresses exactly
  one structure, so its calibration must show the expected signature);
- building blocks for user-defined workloads;
- documentation by example of what each personality knob does.

Each factory takes a :class:`numpy.random.Generator` and returns a
fully configured region.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.basic_block import CodeRegion

_KB = 1024
_MB = 1024 * 1024


def streaming(rng: np.random.Generator, name: str = "ubench.stream") -> CodeRegion:
    """Sequential array sweep: near-perfect caches, predictable branches.

    The fastest personality: expect CPI close to 1 / base_ipc.
    """
    return CodeRegion(
        name, rng, num_blocks=16,
        code_base=0x0100_0000, pattern="strided",
        working_set_bytes=32 * _KB, loads_per_instr=0.3,
        hot_fraction=0.9, loop_fraction=0.9, data_bias=0.95,
        base_ipc=3.0, cpi_sigma=0.01,
    )


def pointer_chase(
    rng: np.random.Generator, name: str = "ubench.chase"
) -> CodeRegion:
    """Dependent loads over a list far beyond the L2: memory-bound.

    Expect the highest CPI of the set, dominated by L2 misses.
    """
    return CodeRegion(
        name, rng, num_blocks=16,
        code_base=0x0200_0000, pattern="pointer",
        working_set_bytes=8 * _MB, loads_per_instr=0.5,
        hot_fraction=0.5, loop_fraction=0.6, data_bias=0.8,
        base_ipc=1.5, cpi_sigma=0.02,
    )


def branchy(rng: np.random.Generator, name: str = "ubench.branchy") -> CodeRegion:
    """Data-dependent branches near coin-flip bias: predictor-bound.

    Expect the highest branch misprediction ratio of the set.
    """
    return CodeRegion(
        name, rng, num_blocks=24,
        code_base=0x0300_0000, pattern="strided",
        working_set_bytes=16 * _KB, loads_per_instr=0.25,
        hot_fraction=0.9, loop_fraction=0.05, data_bias=0.55,
        base_ipc=2.0, cpi_sigma=0.02,
    )


def icache_heavy(
    rng: np.random.Generator, name: str = "ubench.icache"
) -> CodeRegion:
    """Code footprint far beyond the 16 KB L1 I-cache: fetch-bound.

    Expect the highest I-cache miss ratio of the set.
    """
    return CodeRegion(
        name, rng, num_blocks=60,
        code_base=0x0400_0000, code_bytes=256 * _KB,
        pattern="strided",
        working_set_bytes=16 * _KB, loads_per_instr=0.25,
        hot_fraction=0.9, loop_fraction=0.5, data_bias=0.8,
        base_ipc=2.0, cpi_sigma=0.02,
    )


#: All factories by name, for sweeps.
ALL_MICROBENCHMARKS = {
    "stream": streaming,
    "chase": pointer_chase,
    "branchy": branchy,
    "icache": icache_heavy,
}
