"""Interval trace serialization.

Traces are expensive to generate (per-region machine calibration plus
per-interval sampling), so a downstream user will want to generate once
and reload. The format is a single ``.npz`` file: flat arrays with an
index of per-interval record offsets, plus a JSON-encoded metadata
blob. Round-trips are exact (integer records, float CPIs).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import TraceError
from repro.workloads.trace import Interval, IntervalTrace

_FORMAT_VERSION = 1


def save_trace(trace: IntervalTrace, path: "Union[str, Path]") -> Path:
    """Write a trace to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")

    offsets = np.zeros(len(trace) + 1, dtype=np.int64)
    for index, interval in enumerate(trace):
        offsets[index + 1] = offsets[index] + interval.num_records
    pcs = np.concatenate([iv.branch_pcs for iv in trace])
    counts = np.concatenate([iv.instr_counts for iv in trace])

    header = {
        "version": _FORMAT_VERSION,
        "name": trace.name,
        "interval_instructions": trace.interval_instructions,
        "metadata": trace.metadata,
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(
            json.dumps(header, default=float).encode("utf-8"),
            dtype=np.uint8,
        ),
        offsets=offsets,
        branch_pcs=pcs,
        instr_counts=counts,
        cpis=trace.cpis,
        regions=trace.regions,
        transitions=trace.transition_mask,
    )
    return path


def load_trace(path: "Union[str, Path]") -> IntervalTrace:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no trace file at {path}")
    with np.load(path, allow_pickle=False) as data:
        try:
            header = json.loads(bytes(data["header"]).decode("utf-8"))
            offsets = data["offsets"]
            pcs = data["branch_pcs"]
            counts = data["instr_counts"]
            cpis = data["cpis"]
            regions = data["regions"]
            transitions = data["transitions"]
        except KeyError as missing:
            raise TraceError(
                f"{path} is not a trace file (missing {missing})"
            ) from None

    if header.get("version") != _FORMAT_VERSION:
        raise TraceError(
            f"unsupported trace format version {header.get('version')!r}"
        )
    num_intervals = offsets.shape[0] - 1
    if not (
        cpis.shape[0] == regions.shape[0] == transitions.shape[0]
        == num_intervals
    ):
        raise TraceError(f"{path} has inconsistent interval counts")

    intervals = []
    for index in range(num_intervals):
        lo, hi = int(offsets[index]), int(offsets[index + 1])
        intervals.append(
            Interval(
                branch_pcs=pcs[lo:hi],
                instr_counts=counts[lo:hi],
                cpi=float(cpis[index]),
                region=int(regions[index]),
                is_transition=bool(transitions[index]),
            )
        )
    return IntervalTrace(
        name=str(header["name"]),
        intervals=intervals,
        interval_instructions=int(header["interval_instructions"]),
        metadata=dict(header.get("metadata", {})),
    )
