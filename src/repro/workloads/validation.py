"""Workload-model diagnostics: will a classifier be able to see this?

A synthetic workload is only useful if its structure is *classifiable*:
intervals of one region must produce signatures within the similarity
threshold of each other, and different regions must sit safely outside
it. This module measures those margins directly — the analysis used to
tune the shipped SPEC 2000 models — so users building custom workloads
(see ``examples/custom_workload.py``) can check their design before
running experiments.

The report answers three questions per region pair:

- within-region jitter: the typical signature distance between two
  intervals of the same region (should be well under the threshold);
- cross-region separation: the typical distance between intervals of
  different regions (should be well over it);
- margin: separation minus jitter, in threshold units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.classifier import PhaseClassifier
from repro.core.config import ClassifierConfig
from repro.core.distance import relative_distance
from repro.errors import ConfigurationError
from repro.workloads.basic_block import CodeRegion
from repro.workloads.trace import Interval


@dataclass(frozen=True)
class SeparabilityReport:
    """Signature-space geometry of a set of code regions.

    Distances are relative (0 = identical, 1 = disjoint), measured with
    the classifier configuration supplied to :func:`check_separability`.
    """

    within_jitter: Dict[int, float]
    within_jitter_p95: Dict[int, float]
    cross_separation: Dict[Tuple[int, int], float]
    threshold: float

    @property
    def max_jitter(self) -> float:
        return max(self.within_jitter_p95.values())

    @property
    def min_separation(self) -> float:
        if not self.cross_separation:
            return float("inf")
        return min(self.cross_separation.values())

    @property
    def classifiable(self) -> bool:
        """Jitter safely inside the threshold, separation safely outside.

        Uses a 10% guard band on both sides: borderline models classify
        erratically (signature replacement drift can push them over).
        """
        return (
            self.max_jitter < self.threshold * 0.9
            and self.min_separation > self.threshold * 1.1
        )

    def ambiguous_pairs(self) -> List[Tuple[int, int]]:
        """Region pairs whose separation falls inside the guard band
        around the threshold — candidates for classification flapping
        (this is what makes ``galgel`` hard by design)."""
        return sorted(
            pair
            for pair, distance in self.cross_separation.items()
            if distance <= self.threshold * 1.1
        )

    def summary(self) -> str:
        lines = [
            f"separability at threshold {self.threshold:.3f}:",
            f"  worst within-region jitter (p95): {self.max_jitter:.3f}",
            f"  smallest cross-region separation: "
            f"{self.min_separation:.3f}",
            f"  classifiable: {'yes' if self.classifiable else 'NO'}",
        ]
        ambiguous = self.ambiguous_pairs()
        if ambiguous:
            pairs = ", ".join(f"{a}-{b}" for a, b in ambiguous)
            lines.append(f"  ambiguous region pairs: {pairs}")
        return "\n".join(lines)


def check_separability(
    regions: Sequence[CodeRegion],
    config: "ClassifierConfig | None" = None,
    samples_per_region: int = 8,
    interval_instructions: int = 1_000_000,
    seed: int = 0,
) -> SeparabilityReport:
    """Measure signature-space margins of a set of code regions.

    For each region, ``samples_per_region`` interval signatures are
    drawn; within-region jitter is the mean (and p95) pairwise distance
    among them, cross-region separation the mean distance between the
    samples of each pair of regions.
    """
    if not regions:
        raise ConfigurationError("at least one region is required")
    if samples_per_region < 2:
        raise ConfigurationError(
            f"samples_per_region must be >= 2, got {samples_per_region}"
        )
    config = config or ClassifierConfig()
    classifier = PhaseClassifier(config)
    rng = np.random.default_rng(seed)

    signatures: List[List] = []
    for region in regions:
        region_signatures = []
        for _ in range(samples_per_region):
            pcs, counts, _ = region.sample_interval_records(
                rng, interval_instructions
            )
            interval = Interval(pcs, counts, cpi=1.0)
            region_signatures.append(classifier.signature_for(interval))
        signatures.append(region_signatures)

    within: Dict[int, float] = {}
    within_p95: Dict[int, float] = {}
    for index, sigs in enumerate(signatures):
        distances = [
            relative_distance(sigs[i], sigs[j])
            for i in range(len(sigs))
            for j in range(i + 1, len(sigs))
        ]
        within[index] = float(np.mean(distances))
        within_p95[index] = float(np.percentile(distances, 95))

    cross: Dict[Tuple[int, int], float] = {}
    for a in range(len(signatures)):
        for b in range(a + 1, len(signatures)):
            distances = [
                relative_distance(sa, sb)
                for sa in signatures[a]
                for sb in signatures[b]
            ]
            cross[(a, b)] = float(np.mean(distances))

    return SeparabilityReport(
        within_jitter=within,
        within_jitter_p95=within_p95,
        cross_separation=cross,
        threshold=config.similarity_threshold,
    )
