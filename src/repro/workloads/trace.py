"""Interval traces: the interface between workloads and the classifier.

An :class:`Interval` is everything the phase-tracking hardware would see
for one fixed-length slice of execution (10M instructions by default):

- the (branch PC, trailing instruction count) records that drive the
  accumulator table, and
- the interval's measured CPI (the paper's homogeneity metric).

Ground-truth fields (``region`` and ``is_transition``) are carried along
for analysis and testing only — the classifier never reads them, exactly
as the paper's hardware never sees region labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import TraceError

#: The paper's interval granularity: 10 million instructions (§1, §3).
DEFAULT_INTERVAL_INSTRUCTIONS = 10_000_000


@dataclass
class Interval:
    """One fixed-length interval of execution.

    Parameters
    ----------
    branch_pcs:
        Branch program counters observed in the interval. Records may be
        aggregated per static branch (the accumulator table only sums, so
        aggregation is behaviour-preserving).
    instr_counts:
        Instructions committed after each corresponding branch record.
        ``instr_counts.sum()`` equals the interval length in instructions.
    cpi:
        Cycles per instruction measured for the interval.
    region:
        Ground-truth region label (-1 for a transition interval).
    is_transition:
        Ground-truth flag: this interval lies between stable segments.
    """

    branch_pcs: np.ndarray
    instr_counts: np.ndarray
    cpi: float
    region: int = -1
    is_transition: bool = False

    def __post_init__(self) -> None:
        self.branch_pcs = np.asarray(self.branch_pcs, dtype=np.int64)
        self.instr_counts = np.asarray(self.instr_counts, dtype=np.int64)
        if self.branch_pcs.shape != self.instr_counts.shape:
            raise TraceError(
                "branch_pcs and instr_counts must be parallel arrays: "
                f"{self.branch_pcs.shape} vs {self.instr_counts.shape}"
            )
        if self.branch_pcs.ndim != 1:
            raise TraceError("interval records must be one-dimensional")
        if self.branch_pcs.size == 0:
            raise TraceError("an interval must contain at least one record")
        if np.any(self.instr_counts < 0):
            raise TraceError("instruction counts must be non-negative")
        if not np.isfinite(self.cpi) or self.cpi <= 0:
            raise TraceError(f"cpi must be a positive float, got {self.cpi}")

    @property
    def instructions(self) -> int:
        """Total committed instructions in the interval."""
        return int(self.instr_counts.sum())

    @property
    def num_records(self) -> int:
        return int(self.branch_pcs.shape[0])


@dataclass
class IntervalTrace:
    """A whole program run as a sequence of intervals.

    Carries descriptive metadata so experiment output can name the
    workload it came from.
    """

    name: str
    intervals: List[Interval]
    interval_instructions: int = DEFAULT_INTERVAL_INSTRUCTIONS
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.intervals:
            raise TraceError(f"trace '{self.name}' has no intervals")
        if self.interval_instructions <= 0:
            raise TraceError(
                "interval_instructions must be positive, got "
                f"{self.interval_instructions}"
            )

    def __len__(self) -> int:
        return len(self.intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.intervals)

    def __getitem__(self, index: int) -> Interval:
        return self.intervals[index]

    @property
    def cpis(self) -> np.ndarray:
        """CPI of every interval, in execution order."""
        return np.array([iv.cpi for iv in self.intervals], dtype=np.float64)

    @property
    def regions(self) -> np.ndarray:
        """Ground-truth region label per interval (-1 = transition)."""
        return np.array([iv.region for iv in self.intervals], dtype=np.int64)

    @property
    def transition_mask(self) -> np.ndarray:
        """Boolean mask of ground-truth transition intervals."""
        return np.array(
            [iv.is_transition for iv in self.intervals], dtype=bool
        )

    @property
    def total_instructions(self) -> int:
        return sum(iv.instructions for iv in self.intervals)

    def whole_program_cov(self) -> float:
        """CoV of CPI over *all* intervals (paper Fig. 3, "Whole Program").

        Returns standard deviation divided by mean, as a fraction.
        """
        cpis = self.cpis
        mean = float(cpis.mean())
        if mean == 0.0:
            raise TraceError("mean CPI is zero; trace is degenerate")
        return float(cpis.std()) / mean

    def slice(self, start: int, stop: Optional[int] = None) -> "IntervalTrace":
        """Return a sub-trace covering ``intervals[start:stop]``."""
        sub = self.intervals[start:stop]
        if not sub:
            raise TraceError(
                f"slice [{start}:{stop}] of trace '{self.name}' is empty"
            )
        return IntervalTrace(
            name=f"{self.name}[{start}:{stop if stop is not None else ''}]",
            intervals=sub,
            interval_instructions=self.interval_instructions,
            metadata=dict(self.metadata),
        )


def concatenate_traces(name: str, traces: Sequence[IntervalTrace]) -> IntervalTrace:
    """Concatenate several traces into one run (utility for tests/examples)."""
    if not traces:
        raise TraceError("cannot concatenate zero traces")
    granularities = {t.interval_instructions for t in traces}
    if len(granularities) != 1:
        raise TraceError(
            f"traces have mixed interval sizes: {sorted(granularities)}"
        )
    intervals: List[Interval] = []
    for trace in traces:
        intervals.extend(trace.intervals)
    return IntervalTrace(
        name=name,
        intervals=intervals,
        interval_instructions=traces[0].interval_instructions,
    )
