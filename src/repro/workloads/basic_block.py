"""Basic blocks, sub-modes and code regions.

A :class:`CodeRegion` is the atom of synthetic workload construction: a
population of static basic blocks (branch PCs with execution weights)
plus a microarchitectural personality (memory pattern, branch
predictability, dependence-limited IPC). A stable *phase* in the paper's
sense corresponds to a run of intervals executing one region.

Sub-modes (:class:`SubMode`) model intra-region behaviour variation:
a region may alternate between a few weight/CPI variants. With a loose
similarity threshold the variants classify into one phase (raising its
CPI CoV); a tightened threshold splits them — exactly the effect the
paper's adaptive classifier exploits (§4.6, Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads import address_stream, branch_stream
from repro.simulator.sampling import SampledStream


@dataclass(frozen=True)
class BasicBlock:
    """A static basic block: its terminating branch PC and its weight.

    ``weight`` is the block's share of dynamic execution within its
    region (weights of a region sum to 1).
    """

    pc: int
    weight: float

    def __post_init__(self) -> None:
        if self.pc < 0:
            raise ConfigurationError(f"pc must be non-negative, got {self.pc}")
        if self.weight < 0:
            raise ConfigurationError(
                f"weight must be non-negative, got {self.weight}"
            )


@dataclass(frozen=True)
class SubMode:
    """One behaviour variant of a region.

    Parameters
    ----------
    weight_multipliers:
        Per-block multiplicative adjustment applied to the region's base
        block weights when this sub-mode is active (renormalized).
    cpi_scale:
        Multiplier on the region's calibrated CPI while in this sub-mode.
    probability:
        Chance that an interval of the region runs in this sub-mode.
    """

    weight_multipliers: Tuple[float, ...]
    cpi_scale: float = 1.0
    probability: float = 1.0

    def __post_init__(self) -> None:
        if any(m < 0 for m in self.weight_multipliers):
            raise ConfigurationError("weight multipliers must be >= 0")
        if self.cpi_scale <= 0:
            raise ConfigurationError(
                f"cpi_scale must be positive, got {self.cpi_scale}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )


def make_submodes(
    rng: np.random.Generator,
    num_blocks: int,
    cpi_scales: Sequence[float],
    intensity: float = 0.4,
) -> List[SubMode]:
    """Build a set of sub-modes with distinct weight emphases.

    Each sub-mode boosts a random half of the blocks by ``1 + intensity``
    and damps the other half by ``1 - intensity``, so different
    sub-modes emphasise different code while sharing the same static
    block population. ``cpi_scales`` gives one CPI multiplier per
    sub-mode; probabilities are uniform.
    """
    if not cpi_scales:
        raise ConfigurationError("cpi_scales must not be empty")
    if not 0.0 <= intensity < 1.0:
        raise ConfigurationError(
            f"intensity must be in [0, 1), got {intensity}"
        )
    probability = 1.0 / len(cpi_scales)
    submodes = []
    for scale in cpi_scales:
        boosted = rng.random(num_blocks) < 0.5
        multipliers = np.where(boosted, 1.0 + intensity, 1.0 - intensity)
        submodes.append(
            SubMode(
                weight_multipliers=tuple(float(m) for m in multipliers),
                cpi_scale=float(scale),
                probability=probability,
            )
        )
    return submodes


class CodeRegion:
    """A stationary region of code with a fixed behaviour personality.

    Parameters
    ----------
    name:
        Label used in traces and diagnostics.
    rng:
        Generator used *once* at construction to draw the static
        structure (block PCs and weights). Per-interval sampling uses
        the generator passed to the sampling methods, so a region's
        static identity is independent of how often it is sampled.
    num_blocks:
        Static basic blocks in the region.
    code_base / code_bytes:
        Address range the blocks live in; controls I-cache footprint.
    weight_concentration:
        Dirichlet concentration for block weights. Small values give
        heavy-tailed (realistic) weight distributions.
    pattern / working_set_bytes / loads_per_instr:
        Data-memory personality (see :mod:`repro.workloads.address_stream`).
    hot_fraction:
        Share of data references that hit a small (2 KB) hot buffer —
        stack slots and hot locals. Real programs direct most references
        at a tiny resident set; only the remainder follows the region's
        characteristic pattern, which keeps miss *rates* realistic while
        preserving each pattern's miss-rate ordering.
    loop_fraction / data_bias / trip_count:
        Branch personality (see :mod:`repro.workloads.branch_stream`).
    base_ipc:
        Dependence-limited IPC of the region's code.
    cpi_sigma:
        Log-normal sigma of within-sub-mode CPI noise (sets the floor of
        per-phase CoV).
    submodes:
        Behaviour variants; defaults to a single identity sub-mode.
    """

    def __init__(
        self,
        name: str,
        rng: np.random.Generator,
        num_blocks: int = 48,
        code_base: int = 0x40_0000,
        code_bytes: int = 8 * 1024,
        weight_concentration: float = 0.5,
        pattern: str = "strided",
        working_set_bytes: int = 64 * 1024,
        loads_per_instr: float = 0.3,
        hot_fraction: float = 0.9,
        loop_fraction: float = 0.6,
        data_bias: float = 0.7,
        trip_count: int = 16,
        base_ipc: float = 2.0,
        cpi_sigma: float = 0.03,
        submodes: Optional[Sequence[SubMode]] = None,
    ) -> None:
        if num_blocks < 2:
            raise ConfigurationError(
                f"a region needs at least 2 blocks, got {num_blocks}"
            )
        if code_bytes < 4 * num_blocks:
            raise ConfigurationError(
                "code_bytes too small to place all blocks at distinct PCs"
            )
        if weight_concentration <= 0:
            raise ConfigurationError(
                "weight_concentration must be positive, got "
                f"{weight_concentration}"
            )
        if cpi_sigma < 0:
            raise ConfigurationError(
                f"cpi_sigma must be non-negative, got {cpi_sigma}"
            )
        if pattern not in address_stream.PATTERNS:
            raise ConfigurationError(
                f"unknown pattern {pattern!r}; expected one of "
                f"{address_stream.PATTERNS}"
            )
        if not 0.0 <= hot_fraction < 1.0:
            raise ConfigurationError(
                f"hot_fraction must be in [0, 1), got {hot_fraction}"
            )

        self.name = name
        self.num_blocks = num_blocks
        self.code_base = code_base
        self.code_bytes = code_bytes
        self.pattern = pattern
        self.working_set_bytes = working_set_bytes
        self.loads_per_instr = loads_per_instr
        self.hot_fraction = hot_fraction
        self.loop_fraction = loop_fraction
        self.data_bias = data_bias
        self.trip_count = trip_count
        self.base_ipc = base_ipc
        self.cpi_sigma = cpi_sigma

        # Static structure: distinct word-aligned PCs inside the code
        # segment, heavy-tailed weights.
        slots = code_bytes // 4
        chosen = rng.choice(slots, size=num_blocks, replace=False)
        self.block_pcs = (code_base + np.sort(chosen) * 4).astype(np.int64)
        self.block_weights = rng.dirichlet(
            np.full(num_blocks, weight_concentration)
        )

        if submodes is None:
            submodes = [SubMode(weight_multipliers=(1.0,) * num_blocks)]
        self.submodes = list(submodes)
        if not self.submodes:
            raise ConfigurationError("submodes must not be empty")
        for mode in self.submodes:
            if len(mode.weight_multipliers) != num_blocks:
                raise ConfigurationError(
                    f"sub-mode multiplier length {len(mode.weight_multipliers)}"
                    f" does not match num_blocks {num_blocks}"
                )
        probs = np.array([m.probability for m in self.submodes], dtype=float)
        if probs.sum() <= 0:
            raise ConfigurationError("sub-mode probabilities sum to zero")
        self._submode_probs = probs / probs.sum()

    @classmethod
    def sibling(
        cls,
        base: "CodeRegion",
        rng: np.random.Generator,
        name: str,
        weight_jitter: float = 0.6,
        cpi_scale_hint: float = 1.0,
        **overrides: object,
    ) -> "CodeRegion":
        """Create a region sharing ``base``'s static blocks.

        The sibling reuses the base region's block PCs but perturbs the
        weights multiplicatively (log-normal with sigma
        ``weight_jitter``), producing two regions whose signatures are
        *related* — near the classification threshold — which is what
        makes benchmarks like ``galgel`` hard for code-based phase
        classification. Personality fields can be overridden via
        keyword arguments; ``cpi_scale_hint`` nudges ``base_ipc`` so the
        sibling's CPI differs even when other personality fields match.
        """
        if weight_jitter < 0:
            raise ConfigurationError(
                f"weight_jitter must be non-negative, got {weight_jitter}"
            )
        params = dict(
            num_blocks=base.num_blocks,
            code_base=base.code_base,
            code_bytes=base.code_bytes,
            pattern=base.pattern,
            working_set_bytes=base.working_set_bytes,
            loads_per_instr=base.loads_per_instr,
            hot_fraction=base.hot_fraction,
            loop_fraction=base.loop_fraction,
            data_bias=base.data_bias,
            trip_count=base.trip_count,
            base_ipc=base.base_ipc / cpi_scale_hint,
            cpi_sigma=base.cpi_sigma,
        )
        params.update(overrides)
        region = cls(name=name, rng=rng, **params)  # type: ignore[arg-type]
        region.block_pcs = base.block_pcs.copy()
        jitter = rng.lognormal(mean=0.0, sigma=weight_jitter,
                               size=base.num_blocks)
        weights = base.block_weights * jitter
        region.block_weights = weights / weights.sum()
        return region

    # -- derived properties ------------------------------------------------

    @property
    def blocks(self) -> List[BasicBlock]:
        """The region's static blocks as value objects."""
        return [
            BasicBlock(pc=int(pc), weight=float(w))
            for pc, w in zip(self.block_pcs, self.block_weights)
        ]

    def set_submodes(
        self,
        submodes: Sequence[SubMode],
        probabilities: Optional[Sequence[float]] = None,
    ) -> None:
        """Replace the region's sub-modes after construction.

        ``probabilities`` overrides the per-sub-mode probabilities (it is
        normalized); when omitted, each sub-mode's own ``probability``
        field is used.
        """
        submodes = list(submodes)
        if not submodes:
            raise ConfigurationError("submodes must not be empty")
        for mode in submodes:
            if len(mode.weight_multipliers) != self.num_blocks:
                raise ConfigurationError(
                    f"sub-mode multiplier length "
                    f"{len(mode.weight_multipliers)} does not match "
                    f"num_blocks {self.num_blocks}"
                )
        if probabilities is None:
            probs = np.array([m.probability for m in submodes], dtype=float)
        else:
            probs = np.asarray(probabilities, dtype=float)
            if probs.shape != (len(submodes),):
                raise ConfigurationError(
                    "probabilities must match the number of sub-modes"
                )
        if np.any(probs < 0) or probs.sum() <= 0:
            raise ConfigurationError(
                "sub-mode probabilities must be non-negative and sum > 0"
            )
        self.submodes = submodes
        self._submode_probs = probs / probs.sum()

    def submode_weights(self, submode_index: int) -> np.ndarray:
        """Normalized block weights while the given sub-mode is active."""
        mode = self.submodes[submode_index]
        weights = self.block_weights * np.asarray(mode.weight_multipliers)
        total = weights.sum()
        if total <= 0:
            raise ConfigurationError(
                f"sub-mode {submode_index} of region '{self.name}' zeroes "
                "all block weights"
            )
        return weights / total

    # -- per-interval sampling ----------------------------------------------

    def pick_submode(self, rng: np.random.Generator) -> int:
        """Draw a sub-mode index according to the configured probabilities."""
        return int(rng.choice(len(self.submodes), p=self._submode_probs))

    def sample_interval_records(
        self,
        rng: np.random.Generator,
        interval_instructions: int,
        draws: int = 4000,
        submode_index: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Sample one interval's (branch PC, instruction count) records.

        Dynamic block execution counts are drawn multinomially (``draws``
        trials) from the active sub-mode's weights, then scaled so the
        instruction counts sum exactly to ``interval_instructions``.
        Aggregating records per static block is behaviour-preserving for
        the accumulator table, which only sums per-PC contributions.

        Returns ``(pcs, instr_counts, submode_index)``.
        """
        if interval_instructions <= 0:
            raise ConfigurationError(
                "interval_instructions must be positive, got "
                f"{interval_instructions}"
            )
        if draws <= 0:
            raise ConfigurationError(f"draws must be positive, got {draws}")
        if submode_index is None:
            submode_index = self.pick_submode(rng)
        weights = self.submode_weights(submode_index)
        counts = rng.multinomial(draws, weights)
        active = counts > 0
        pcs = self.block_pcs[active]
        block_counts = counts[active].astype(np.float64)

        instr = np.floor(
            block_counts / draws * interval_instructions
        ).astype(np.int64)
        # Distribute the rounding remainder onto the heaviest block so the
        # interval sums exactly to its nominal length.
        remainder = interval_instructions - int(instr.sum())
        instr[int(np.argmax(block_counts))] += remainder
        return pcs, instr, submode_index

    # -- calibration stream ---------------------------------------------------

    def sampled_stream(
        self, rng: np.random.Generator, events: int = 8192
    ) -> SampledStream:
        """Build the machine-calibration sample for this region."""
        if events <= 0:
            raise ConfigurationError(f"events must be positive, got {events}")

        # Data references: a hot 2 KB buffer absorbs most references;
        # the remainder follows the region's characteristic pattern.
        cold_count = max(int(round(events * (1.0 - self.hot_fraction))), 1)
        hot_count = events - cold_count
        cold = address_stream.generate(
            self.pattern,
            rng,
            cold_count,
            base=0x1000_0000,
            working_set_bytes=self.working_set_bytes,
        )
        if hot_count > 0:
            hot = address_stream.random_in_working_set(
                rng, hot_count, base=0x0800_0000, working_set_bytes=2048
            )
            data_addresses = np.empty(events, dtype=np.int64)
            hot_slots = rng.permutation(events)[:hot_count]
            hot_mask = np.zeros(events, dtype=bool)
            hot_mask[hot_slots] = True
            data_addresses[hot_mask] = hot
            data_addresses[~hot_mask] = cold
        else:
            data_addresses = cold

        # Instruction fetches: walk sequentially from sampled block PCs,
        # touching a handful of lines per block visit.
        visits = max(events // 8, 1)
        starts = rng.choice(self.block_pcs, size=visits, p=self.block_weights)
        run = np.arange(8, dtype=np.int64) * 4
        instruction_addresses = (starts[:, None] + run[None, :]).ravel()

        branch_pcs, branch_taken = branch_stream.region_branch_sample(
            rng,
            self.block_pcs,
            self.block_weights,
            count=events,
            loop_fraction=self.loop_fraction,
            data_bias=self.data_bias,
            trip_count=self.trip_count,
        )

        # ~1 branch per 6 instructions, a typical integer-code density.
        branches_per_instr = 1.0 / 6.0
        return SampledStream(
            instruction_addresses=instruction_addresses,
            data_addresses=data_addresses,
            branch_pcs=branch_pcs,
            branch_taken=branch_taken,
            base_ipc=self.base_ipc,
            loads_per_instr=self.loads_per_instr,
            fetches_per_instr=0.25,
            branches_per_instr=branches_per_instr,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CodeRegion({self.name!r}, blocks={self.num_blocks}, "
            f"pattern={self.pattern!r}, ws={self.working_set_bytes}B, "
            f"submodes={len(self.submodes)})"
        )
