"""Phase classification core: the paper's primary contribution.

This package implements the dynamic phase classification architecture of
Sherwood et al. (ISCA 2003) plus the four improvements of Lau et al.
(HPCA 2005):

- :mod:`repro.core.accumulator` — the N-counter accumulator table fed by
  (branch PC, instruction count) records.
- :mod:`repro.core.bitselect` — static and dynamic selection of which
  counter bits form the compressed signature (§4.2).
- :mod:`repro.core.signature` — compressed signature values.
- :mod:`repro.core.distance` — Manhattan distance and the relative
  similarity measure thresholds are stated in.
- :mod:`repro.core.signature_table` — the finite LRU past-signature
  table with per-entry min counters and similarity thresholds.
- :mod:`repro.core.classifier` — the full online classifier: transition
  phase (§4.4), most-similar matching (§4.1), and adaptive per-phase
  threshold tightening driven by CPI feedback (§4.6).
- :mod:`repro.core.events` — per-interval results and whole-run records.
- :mod:`repro.core.online` — the streaming branch-by-branch
  :class:`~repro.core.online.PhaseTracker` for deployable systems.
- :mod:`repro.core.pool` — the structure-of-arrays
  :class:`~repro.core.pool.TrackerPool` batching thousands of logical
  trackers into single numpy passes, with the scalar tracker as its
  behavioural oracle.
"""

from repro.core.accumulator import AccumulatorTable
from repro.core.bitselect import (
    BitSelector,
    DynamicBitSelector,
    StaticBitSelector,
)
from repro.core.classifier import PhaseClassifier
from repro.core.config import ClassifierConfig, TRANSITION_PHASE_ID
from repro.core.online import PhaseTracker, TrackerReport
from repro.core.distance import manhattan_distance, relative_distance
from repro.core.events import ClassificationResult, ClassificationRun
from repro.core.pool import (
    ClassifierPool,
    PooledTracker,
    TrackerPool,
    classify_traces_batched,
)
from repro.core.signature import Signature
from repro.core.signature_table import SignatureTable, TableEntry

__all__ = [
    "AccumulatorTable",
    "BitSelector",
    "ClassificationResult",
    "ClassificationRun",
    "ClassifierConfig",
    "ClassifierPool",
    "DynamicBitSelector",
    "PhaseClassifier",
    "PhaseTracker",
    "PooledTracker",
    "Signature",
    "SignatureTable",
    "StaticBitSelector",
    "TRANSITION_PHASE_ID",
    "TableEntry",
    "TrackerPool",
    "TrackerReport",
    "classify_traces_batched",
    "manhattan_distance",
    "relative_distance",
]
