"""Structure-of-arrays tracker pool: batched classification for many
logical trackers per numpy call.

The scalar :class:`~repro.core.online.PhaseTracker` steps its signature
table, min-counters and adaptive thresholds one tracker at a time in
Python; with thousands of concurrent sessions the per-tracker loop —
not the arithmetic — dominates. This module keeps *all* of that state
in shared numpy arrays instead:

- :class:`ClassifierPool` — N logical classifiers in
  structure-of-arrays form. Accumulator counters live in one ``(N, C)``
  array; signature tables in ``(N, T, C)``; min-counters, adaptive
  thresholds, LRU ticks and CPI statistics in parallel ``(N, T)``
  arrays. One :meth:`ClassifierPool.classify` call runs the paper's
  interval-boundary pipeline (Manhattan distance, threshold
  eligibility, most-similar argmin, min-counter/phase allocation,
  adaptive threshold feedback) for every ready slot at once.
- :class:`TrackerPool` — the public pool API: interval bookkeeping on
  top of a :class:`ClassifierPool`, with per-slot next-phase and
  length predictors (ordinary Python objects — they only run at
  interval boundaries, off the vectorized hot path).
  :meth:`TrackerPool.observe_batch` ingests branch records for many
  sessions per call with a segmented scatter-add.
- :class:`PooledTracker` — a per-slot facade quacking like
  :class:`~repro.core.online.PhaseTracker`, so registry sessions and
  snapshot/persistence code can hold a pool slot where they previously
  held a scalar tracker.
- :func:`classify_traces_batched` — the experiment engine's opt-in
  fast path: classify many whole traces in lockstep interval rounds.

Equivalence contract
--------------------
The scalar ``PhaseTracker`` is the oracle. For the same branch streams
the pool produces **identical** phase IDs, transition decisions,
predictor inputs and exported snapshots, byte for byte:

- All float arithmetic (relative distance, CPI running means,
  threshold halving) applies the same IEEE-754 double operations in
  the same order as the scalar path — elementwise numpy float64 ops
  are the same hardware ops Python floats use.
- The scalar table's *list order* (which breaks most-similar distance
  ties, "first" policy matches and LRU eviction scans) is reproduced
  with a per-entry insertion tick: scalar list order is exactly
  ascending insertion order, so "first minimal in list order" becomes
  "minimal insertion tick among candidates".
- Saturating accumulator adds commute with batching (clipping after
  each non-negative sub-batch equals clipping once at the end), so the
  segmented scatter-add matches the scalar per-segment ingest exactly.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.accumulator import _EXACT_FLOAT_SUM, _hash_pc_unchecked
from repro.core.config import (
    ACCUMULATOR_BITS,
    TRANSITION_PHASE_ID,
    ClassifierConfig,
)
from repro.core.distance import Normalizer, max_normalizer, sum_normalizer
from repro.core.events import ClassificationResult, ClassificationRun
from repro.core.online import PhaseChangeListener, TrackerReport
from repro.errors import ConfigurationError, PoolError, PredictionError
from repro.prediction import change_predictor_from_spec
from repro.prediction.composite import CompositePhasePredictor
from repro.prediction.length import PhaseLengthPredictor
from repro.prediction.rle import RLEChangePredictor
from repro.workloads.trace import DEFAULT_INTERVAL_INSTRUCTIONS, IntervalTrace

#: Sentinel larger than any real tick / record index / target.
_BIG = np.iinfo(np.int64).max


def _bit_length(values: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` for non-negative int64 values.

    A shift cascade rather than a log2 so no float rounding can
    disagree with the scalar ``bit_length`` at powers of two.
    """
    values = values.astype(np.int64, copy=True)
    out = np.zeros(values.shape, dtype=np.int64)
    for shift in (32, 16, 8, 4, 2, 1):
        big = values >= (np.int64(1) << np.int64(shift))
        out[big] += shift
        values = np.where(big, values >> np.int64(shift), values)
    return out + values  # remaining value is 0 or 1


class ClassifierPool:
    """N logical phase classifiers in structure-of-arrays form.

    One pool slot is state-equivalent to one
    :class:`~repro.core.classifier.PhaseClassifier`; a single
    :meth:`classify` call advances many slots in one vectorized pass.
    All slots share one :class:`ClassifierConfig` — batching requires a
    common table geometry.

    Raises :class:`~repro.errors.PoolError` for configurations the
    structure-of-arrays layout cannot host: an infinite signature
    table, or a custom distance normalizer (only the named
    :func:`~repro.core.distance.sum_normalizer` and
    :func:`~repro.core.distance.max_normalizer` have batched forms).
    """

    def __init__(
        self,
        capacity: int,
        config: Optional[ClassifierConfig] = None,
        normalizer: Normalizer = sum_normalizer,
    ) -> None:
        if capacity <= 0:
            raise PoolError(f"capacity must be positive, got {capacity}")
        self.config = config or ClassifierConfig()
        if self.config.table_entries is None:
            raise PoolError(
                "the pool needs a finite signature table; "
                "table_entries=None (the infinite prior-work table) "
                "requires the scalar classifier"
            )
        if normalizer is not sum_normalizer and normalizer is not max_normalizer:
            raise PoolError(
                "the pool batches distance normalization and supports only "
                "sum_normalizer and max_normalizer; custom normalizers "
                "require the scalar classifier"
            )
        self.normalizer = normalizer
        self.capacity = capacity
        self._allocate_arrays(capacity)

    def _allocate_arrays(self, capacity: int) -> None:
        num_counters = self.config.num_counters
        table_entries = self.config.table_entries
        # Accumulator tier: raw per-interval counters and totals.
        self._counters = np.zeros((capacity, num_counters), dtype=np.int64)
        self._acc_total = np.zeros(capacity, dtype=np.int64)
        # Signature-table tier, (N, T) unless noted.
        self._sig = np.zeros(
            (capacity, table_entries, num_counters), dtype=np.int64
        )
        self._sig_total = np.zeros((capacity, table_entries), dtype=np.int64)
        self._threshold = np.zeros((capacity, table_entries), dtype=np.float64)
        self._phase = np.full((capacity, table_entries), -1, dtype=np.int64)
        self._min_counter = np.zeros((capacity, table_entries), dtype=np.int64)
        self._last_used = np.zeros((capacity, table_entries), dtype=np.int64)
        self._insert_tick = np.zeros((capacity, table_entries), dtype=np.int64)
        self._valid = np.zeros((capacity, table_entries), dtype=bool)
        self._cpi_count = np.zeros((capacity, table_entries), dtype=np.int64)
        self._cpi_mean = np.zeros((capacity, table_entries), dtype=np.float64)
        # Per-slot scalars.
        self._clock = np.zeros(capacity, dtype=np.int64)
        self._evictions = np.zeros(capacity, dtype=np.int64)
        self._next_phase_id = np.full(
            capacity, TRANSITION_PHASE_ID + 1, dtype=np.int64
        )
        self._phases_allocated = np.zeros(capacity, dtype=np.int64)
        self._counter_max = (1 << ACCUMULATOR_BITS) - 1
        self._sig_max = (1 << self.config.bits_per_counter) - 1

    def grow(self, capacity: int) -> None:
        """Extend every array to ``capacity`` slots (contents kept)."""
        if capacity <= self.capacity:
            return
        old = self.__dict__.copy()
        self._allocate_arrays(capacity)
        for name in (
            "_counters", "_acc_total", "_sig", "_sig_total", "_threshold",
            "_phase", "_min_counter", "_last_used", "_insert_tick",
            "_valid", "_cpi_count", "_cpi_mean", "_clock", "_evictions",
            "_next_phase_id", "_phases_allocated",
        ):
            getattr(self, name)[: self.capacity] = old[name]
        self.capacity = capacity

    # -- per-slot bookkeeping -------------------------------------------------

    @property
    def phases_allocated(self) -> np.ndarray:
        """Per-slot count of real phase IDs allocated (read-only view)."""
        return self._phases_allocated

    @property
    def evictions(self) -> np.ndarray:
        """Per-slot LRU eviction counts (read-only view)."""
        return self._evictions

    def reset_slots(self, slots: np.ndarray) -> None:
        """Return the given slots to the just-constructed state."""
        self._counters[slots] = 0
        self._acc_total[slots] = 0
        self._sig[slots] = 0
        self._sig_total[slots] = 0
        self._threshold[slots] = 0.0
        self._phase[slots] = -1
        self._min_counter[slots] = 0
        self._last_used[slots] = 0
        self._insert_tick[slots] = 0
        self._valid[slots] = False
        self._cpi_count[slots] = 0
        self._cpi_mean[slots] = 0.0
        self._clock[slots] = 0
        self._evictions[slots] = 0
        self._next_phase_id[slots] = TRANSITION_PHASE_ID + 1
        self._phases_allocated[slots] = 0

    # -- ingest ---------------------------------------------------------------

    def ingest(
        self, slots: np.ndarray, pcs: np.ndarray, counts: np.ndarray
    ) -> None:
        """Scatter-add branch records into the slots' accumulators.

        ``slots`` may repeat: each record updates its own slot's hashed
        counter. Identical to per-slot
        :meth:`~repro.core.accumulator.AccumulatorTable.update_batch`
        calls — non-negative saturating adds clip the same regardless
        of sub-batching, and the float64 bincount is only used where it
        is exact.
        """
        if pcs.size == 0:
            return
        num_counters = self.config.num_counters
        indices = _hash_pc_unchecked(pcs, num_counters)
        flat = slots * np.int64(num_counters) + indices
        total = int(counts.sum())
        touched = np.unique(slots)
        if total < _EXACT_FLOAT_SUM:
            weights = counts.astype(np.float64)
            sums = np.bincount(
                flat, weights=weights,
                minlength=self.capacity * num_counters,
            ).astype(np.int64)
            per_slot = np.bincount(
                slots, weights=weights, minlength=self.capacity
            ).astype(np.int64)
        else:
            sums = np.zeros(self.capacity * num_counters, dtype=np.int64)
            np.add.at(sums, flat, counts)
            per_slot = np.zeros(self.capacity, dtype=np.int64)
            np.add.at(per_slot, slots, counts)
        gathered = sums.reshape(self.capacity, num_counters)[touched]
        self._counters[touched] = np.minimum(
            self._counters[touched] + gathered, self._counter_max
        )
        self._acc_total[touched] += per_slot[touched]

    # -- the batched boundary pipeline ---------------------------------------

    def form_signatures(self, slots: np.ndarray) -> np.ndarray:
        """Compress the slots' accumulated counters into signatures and
        clear the accumulators (scalar ``_form_signature`` semantics)."""
        counters = self._counters[slots]
        bits = self.config.bits_per_counter
        if self.config.bit_selector == "dynamic":
            average = self._acc_total[slots] // self.config.num_counters
            window_top = _bit_length(average) + 2
            shift = np.maximum(window_top - bits, 0)
        else:
            shift = np.full(
                len(slots), self.config.static_low_bit, dtype=np.int64
            )
        # Accumulator counters are 24-bit, so any shift >= 24 yields 0;
        # clamp to keep numpy's shift semantics defined.
        shift = np.minimum(shift, 63 - bits)
        selected = (counters >> shift[:, None]) & self._sig_max
        overflowed = (counters >> (shift[:, None] + bits)) > 0
        signatures = np.where(overflowed, self._sig_max, selected)
        self._counters[slots] = 0
        self._acc_total[slots] = 0
        return signatures

    def classify(
        self, slots: np.ndarray, cpis: np.ndarray
    ) -> Dict[str, np.ndarray]:
        """One batched interval-boundary pass over unique ready slots.

        Forms each slot's signature from its accumulator, matches it
        against the slot's table (Manhattan distance, per-entry
        thresholds, the configured match policy), applies min-counter
        phase allocation and — when configured — adaptive threshold
        feedback. Returns parallel arrays: ``phase_id``, ``matched``,
        ``distance``, ``threshold_tightened``, ``new_phase_allocated``.
        """
        slots = np.asarray(slots, dtype=np.int64)
        cpis = np.broadcast_to(
            np.asarray(cpis, dtype=np.float64), slots.shape
        )
        if len(np.unique(slots)) != len(slots):
            raise PoolError("classify requires unique slots per call")
        signatures = self.form_signatures(slots)
        own_total = signatures.sum(axis=1)

        # Distance + eligibility against every (valid) table entry.
        stored = self._sig[slots]
        distances = np.abs(stored - signatures[:, None, :]).sum(axis=2)
        if self.normalizer is sum_normalizer:
            denominators = np.maximum(
                self._sig_total[slots] + own_total[:, None], 1
            ).astype(np.float64)
        else:  # max_normalizer, the only other constructor-accepted one
            denominators = np.maximum(
                2 * np.maximum(self._sig_total[slots], own_total[:, None]), 1
            ).astype(np.float64)
        relative = distances / denominators
        valid = self._valid[slots]
        eligible = valid & (relative <= self._threshold[slots])
        any_hit = eligible.any(axis=1)

        # Match selection mirrors the scalar list-order tie-breaks via
        # insertion ticks (list order == ascending insertion order).
        ticks = self._insert_tick[slots]
        if self.config.match_policy == "most_similar":
            masked = np.where(eligible, relative, np.inf)
            row_min = masked.min(axis=1)
            candidate = eligible & (masked == row_min[:, None])
            match_idx = np.argmin(
                np.where(candidate, ticks, _BIG), axis=1
            )
        else:  # "first": first eligible entry in list order
            match_idx = np.argmin(np.where(eligible, ticks, _BIG), axis=1)

        # One LRU tick per classified slot, as in scalar touch/insert.
        self._clock[slots] += 1
        tick = self._clock[slots]

        entry_idx = match_idx.copy()
        distance = np.zeros(len(slots), dtype=np.float64)

        hit = np.nonzero(any_hit)[0]
        if hit.size:
            h_slots = slots[hit]
            h_idx = match_idx[hit]
            distance[hit] = relative[hit, h_idx]
            self._min_counter[h_slots, h_idx] += 1
            self._sig[h_slots, h_idx] = signatures[hit]
            self._sig_total[h_slots, h_idx] = own_total[hit]
            self._last_used[h_slots, h_idx] = tick[hit]

        miss = np.nonzero(~any_hit)[0]
        if miss.size:
            m_slots = slots[miss]
            m_valid = self._valid[m_slots]
            full = m_valid.all(axis=1)
            first_free = np.argmax(~m_valid, axis=1)
            victim = np.argmin(
                np.where(m_valid, self._last_used[m_slots], _BIG), axis=1
            )
            ins_idx = np.where(full, victim, first_free)
            entry_idx[miss] = ins_idx
            self._evictions[m_slots] += full
            self._sig[m_slots, ins_idx] = signatures[miss]
            self._sig_total[m_slots, ins_idx] = own_total[miss]
            self._threshold[m_slots, ins_idx] = (
                self.config.similarity_threshold
            )
            self._phase[m_slots, ins_idx] = -1
            self._min_counter[m_slots, ins_idx] = 1
            self._last_used[m_slots, ins_idx] = tick[miss]
            self._insert_tick[m_slots, ins_idx] = tick[miss]
            self._valid[m_slots, ins_idx] = True
            self._cpi_count[m_slots, ins_idx] = 0
            self._cpi_mean[m_slots, ins_idx] = 0.0

        # Min-counter phase allocation (transition phase until stable).
        entry_phase = self._phase[slots, entry_idx]
        entry_min = self._min_counter[slots, entry_idx]
        allocate = (entry_phase < 0) & (
            entry_min > self.config.min_count_threshold
        )
        fresh_ids = self._next_phase_id[slots]
        if allocate.any():
            a_rows = np.nonzero(allocate)[0]
            self._phase[slots[a_rows], entry_idx[a_rows]] = fresh_ids[a_rows]
            self._next_phase_id[slots[a_rows]] += 1
            self._phases_allocated[slots[a_rows]] += 1
        entry_phase = np.where(allocate, fresh_ids, entry_phase)
        phase_id = np.where(
            entry_phase < 0, TRANSITION_PHASE_ID, entry_phase
        )

        # Adaptive classifier (§4.6): stable entries only.
        tightened = np.zeros(len(slots), dtype=bool)
        if self.config.adaptive:
            stable = phase_id != TRANSITION_PHASE_ID
            count = self._cpi_count[slots, entry_idx]
            mean = self._cpi_mean[slots, entry_idx]
            no_history = (count == 0) | (mean == 0.0)
            safe_mean = np.where(mean == 0.0, 1.0, mean)
            deviation = np.where(
                no_history, 0.0, np.abs(cpis - mean) / safe_mean
            )
            tightened = stable & (
                deviation > self.config.perf_dev_threshold
            )
            recorded = stable & ~tightened
            if tightened.any():
                t_rows = np.nonzero(tightened)[0]
                self._threshold[slots[t_rows], entry_idx[t_rows]] /= 2.0
                self._cpi_count[slots[t_rows], entry_idx[t_rows]] = 0
                self._cpi_mean[slots[t_rows], entry_idx[t_rows]] = 0.0
            if recorded.any():
                r_rows = np.nonzero(recorded)[0]
                new_count = count[r_rows] + 1
                self._cpi_count[slots[r_rows], entry_idx[r_rows]] = new_count
                self._cpi_mean[slots[r_rows], entry_idx[r_rows]] = (
                    mean[r_rows] + (cpis[r_rows] - mean[r_rows]) / new_count
                )

        return {
            "phase_id": phase_id,
            "matched": any_hit,
            "distance": distance,
            "threshold_tightened": tightened,
            "new_phase_allocated": allocate,
        }

    # -- snapshot interop -----------------------------------------------------

    def export_slot(self, slot: int) -> dict:
        """The slot's classifier state, byte-identical to
        :meth:`~repro.core.classifier.PhaseClassifier.export_state`."""
        order = np.argsort(
            np.where(self._valid[slot], self._insert_tick[slot], _BIG),
            kind="stable",
        )
        live = order[: int(self._valid[slot].sum())]
        bits = self.config.bits_per_counter
        entries = [
            {
                "values": [int(v) for v in self._sig[slot, i]],
                "bits": bits,
                "threshold": float(self._threshold[slot, i]),
                "phase_id": (
                    int(self._phase[slot, i])
                    if self._phase[slot, i] >= 0 else None
                ),
                "min_counter": int(self._min_counter[slot, i]),
                "last_used": int(self._last_used[slot, i]),
                "cpi_count": int(self._cpi_count[slot, i]),
                "cpi_mean": float(self._cpi_mean[slot, i]),
            }
            for i in (int(i) for i in live)
        ]
        return {
            "config": asdict(self.config),
            "next_phase_id": int(self._next_phase_id[slot]),
            "phases_allocated": int(self._phases_allocated[slot]),
            "accumulator": {
                "counters": [int(v) for v in self._counters[slot]],
                "total": int(self._acc_total[slot]),
            },
            "table": {
                "clock": int(self._clock[slot]),
                "evictions": int(self._evictions[slot]),
                "entries": entries,
            },
        }

    def restore_slot(self, slot: int, state: dict) -> None:
        """Load scalar classifier state into a slot.

        Snapshot list order becomes ascending insertion ticks ``0..k-1``
        — valid because the stored clock is at least the total insert
        count, so every future tick sorts after every restored entry.
        """
        exported = ClassifierConfig(**state["config"])
        if exported != self.config:
            raise ConfigurationError(
                "snapshot was exported under a different classifier "
                f"configuration: {exported} vs {self.config}"
            )
        table = state["table"]
        entries = table["entries"]
        if len(entries) > self.config.table_entries:
            raise ConfigurationError(
                f"snapshot has {len(entries)} table entries, pool table "
                f"holds {self.config.table_entries}"
            )
        counters = np.asarray(
            state["accumulator"]["counters"], dtype=np.int64
        )
        if counters.shape != (self.config.num_counters,):
            raise ConfigurationError(
                f"snapshot has {counters.size} counters, table has "
                f"{self.config.num_counters}"
            )
        self.reset_slots(np.array([slot]))
        self._counters[slot] = counters
        self._acc_total[slot] = int(state["accumulator"]["total"])
        self._next_phase_id[slot] = int(state["next_phase_id"])
        self._phases_allocated[slot] = int(state["phases_allocated"])
        self._clock[slot] = int(table["clock"])
        self._evictions[slot] = int(table["evictions"])
        for position, record in enumerate(entries):
            values = np.asarray(record["values"], dtype=np.int64)
            if values.shape != (self.config.num_counters,):
                raise ConfigurationError(
                    "snapshot entry signature has wrong dimensions"
                )
            if int(record["bits"]) != self.config.bits_per_counter:
                raise ConfigurationError(
                    "snapshot entry bits disagree with the configuration"
                )
            self._sig[slot, position] = values
            self._sig_total[slot, position] = int(values.sum())
            self._threshold[slot, position] = float(record["threshold"])
            self._phase[slot, position] = (
                -1 if record["phase_id"] is None else int(record["phase_id"])
            )
            self._min_counter[slot, position] = int(record["min_counter"])
            self._last_used[slot, position] = int(record["last_used"])
            self._insert_tick[slot, position] = position
            self._valid[slot, position] = True
            self._cpi_count[slot, position] = int(record["cpi_count"])
            self._cpi_mean[slot, position] = float(record["cpi_mean"])


class TrackerPool:
    """N logical phase trackers behind one batched API.

    The pool owns the hot-path state in numpy arrays (see
    :class:`ClassifierPool`) plus per-slot interval bookkeeping; the
    next-phase and length predictors stay ordinary per-slot Python
    objects — they only run at interval boundaries.

    Use :meth:`acquire` for a :class:`PooledTracker` facade that drops
    into code written against :class:`~repro.core.online.PhaseTracker`,
    or drive slot handles directly through :meth:`observe_batch` /
    :meth:`complete_intervals` for the many-sessions-per-call paths.

    Parameters
    ----------
    capacity:
        Initial number of slots; grows by doubling when exhausted
        unless ``auto_grow=False`` (then allocation raises
        :class:`~repro.errors.PoolError`).
    config:
        The shared classifier configuration (finite table required).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` hub. When given,
        the pool keeps slot-occupancy/capacity gauges, lifecycle
        counters (acquire/release/adopt/grow) and a boundary-round
        batch-size histogram current. All instrumentation sits on the
        slot-lifecycle and boundary paths — never per branch.
    """

    def __init__(
        self,
        capacity: int = 1024,
        config: Optional[ClassifierConfig] = None,
        *,
        auto_grow: bool = True,
        telemetry=None,
    ) -> None:
        self.classifiers = ClassifierPool(capacity, config)
        self.config = self.classifiers.config
        self.auto_grow = auto_grow
        self.telemetry = telemetry
        self._instrument(telemetry)
        capacity = self.classifiers.capacity
        self._interval_instructions = np.full(
            capacity, DEFAULT_INTERVAL_INSTRUCTIONS, dtype=np.int64
        )
        self._instructions = np.zeros(capacity, dtype=np.int64)
        self._boundary_pending = np.zeros(capacity, dtype=bool)
        self._interval_index = np.zeros(capacity, dtype=np.int64)
        self._previous_phase = np.full(capacity, -1, dtype=np.int64)
        self._branches = np.zeros(capacity, dtype=np.int64)
        self._allocated = np.zeros(capacity, dtype=bool)
        self._generation = np.zeros(capacity, dtype=np.int64)
        self._next_phase: List[Optional[CompositePhasePredictor]] = (
            [None] * capacity
        )
        self._length: List[Optional[PhaseLengthPredictor]] = (
            [None] * capacity
        )
        self._listeners: List[List[PhaseChangeListener]] = (
            [[] for _ in range(capacity)]
        )
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        if self._m_capacity is not None:
            self._m_capacity.set(capacity)

    # -- instrumentation ------------------------------------------------------

    def _instrument(self, telemetry) -> None:
        """Bind pool metrics on the hub (or None them all out)."""
        if telemetry is None:
            self._m_capacity = None
            self._m_active = None
            self._m_acquires = None
            self._m_releases = None
            self._m_adoptions = None
            self._m_grows = None
            self._m_batch = None
            return
        self._m_capacity = telemetry.gauge(
            "repro_pool_capacity", help="Total tracker pool slots."
        )
        self._m_active = telemetry.gauge(
            "repro_pool_active_slots",
            help="Tracker pool slots currently allocated.",
        )
        self._m_acquires = telemetry.counter(
            "repro_pool_acquires_total",
            help="Slots handed out by allocate()/acquire().",
        )
        self._m_releases = telemetry.counter(
            "repro_pool_releases_total",
            help="Slots returned to the free list.",
        )
        self._m_adoptions = telemetry.counter(
            "repro_pool_adoptions_total",
            help="Snapshots adopted into pool slots via try_adopt().",
        )
        self._m_grows = telemetry.counter(
            "repro_pool_grows_total",
            help="Capacity-doubling growth events.",
        )
        self._m_batch = telemetry.histogram(
            "repro_pool_boundary_batch_size",
            help="Slots classified per batched boundary round.",
            start=1.0, factor=2.0, count=16,
        )

    # -- slot lifecycle -------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self.classifiers.capacity

    @property
    def active_slots(self) -> int:
        """Currently allocated slots."""
        return int(self._allocated.sum())

    def _grow(self) -> None:
        old_capacity = self.capacity
        new_capacity = old_capacity * 2
        self.classifiers.grow(new_capacity)
        for name, fill in (
            ("_interval_instructions", DEFAULT_INTERVAL_INSTRUCTIONS),
            ("_instructions", 0),
            ("_boundary_pending", False),
            ("_interval_index", 0),
            ("_previous_phase", -1),
            ("_branches", 0),
            ("_allocated", False),
            ("_generation", 0),
        ):
            old = getattr(self, name)
            grown = np.full(new_capacity, fill, dtype=old.dtype)
            grown[:old_capacity] = old
            setattr(self, name, grown)
        self._next_phase.extend([None] * old_capacity)
        self._length.extend([None] * old_capacity)
        self._listeners.extend([] for _ in range(old_capacity))
        self._free.extend(range(new_capacity - 1, old_capacity - 1, -1))
        if self._m_grows is not None:
            self._m_grows.inc()
            self._m_capacity.set(new_capacity)

    def allocate(
        self,
        interval_instructions: Optional[int] = None,
        change_predictor: "RLEChangePredictor | None | str" = "default",
    ) -> int:
        """Claim a fresh slot; returns its handle.

        Raises :class:`~repro.errors.PoolError` when the pool is full
        and growth is disabled.
        """
        interval = interval_instructions or DEFAULT_INTERVAL_INSTRUCTIONS
        if interval <= 0:
            raise PredictionError(
                "interval_instructions must be positive, got "
                f"{interval_instructions}"
            )
        if not self._free:
            if not self.auto_grow:
                raise PoolError(
                    f"pool is full ({self.capacity} slots) and growth "
                    "is disabled"
                )
            self._grow()
        slot = self._free.pop()
        if change_predictor == "default":
            change_predictor = RLEChangePredictor(2)
        self._next_phase[slot] = CompositePhasePredictor(change_predictor)
        self._length[slot] = PhaseLengthPredictor()
        self._listeners[slot] = []
        self._interval_instructions[slot] = interval
        self._instructions[slot] = 0
        self._boundary_pending[slot] = False
        self._interval_index[slot] = 0
        self._previous_phase[slot] = -1
        self._branches[slot] = 0
        self.classifiers.reset_slots(np.array([slot]))
        self._allocated[slot] = True
        if self._m_acquires is not None:
            self._m_acquires.inc()
            self._m_active.set(self.active_slots)
        return slot

    def acquire(
        self,
        interval_instructions: Optional[int] = None,
        change_predictor: "RLEChangePredictor | None | str" = "default",
    ) -> "PooledTracker":
        """Allocate a slot wrapped in a :class:`PooledTracker` facade."""
        slot = self.allocate(interval_instructions, change_predictor)
        return PooledTracker(self, slot)

    def release(self, slot: int) -> None:
        """Return a slot to the free list; its handle becomes stale."""
        self._check_slot(slot)
        self._allocated[slot] = False
        self._generation[slot] += 1
        self._next_phase[slot] = None
        self._length[slot] = None
        self._listeners[slot] = []
        self._free.append(slot)
        if self._m_releases is not None:
            self._m_releases.inc()
            self._m_active.set(self.active_slots)

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.capacity or not self._allocated[slot]:
            raise PoolError(f"slot {slot} is not allocated")

    def _check_slots(self, slots: np.ndarray) -> None:
        if slots.size == 0:
            return
        if slots.min() < 0 or slots.max() >= self.capacity:
            raise PoolError("slot handle out of range")
        if not self._allocated[slots].all():
            bad = slots[~self._allocated[slots]]
            raise PoolError(f"slot {int(bad[0])} is not allocated")

    def compatible(self, config: ClassifierConfig) -> bool:
        """Whether sessions with ``config`` can live in this pool."""
        return config == self.config

    # -- streaming ------------------------------------------------------------

    def observe_branch(self, slot: int, pc: int, instructions: int) -> bool:
        """Scalar-granularity ingest for one slot (facade support)."""
        self._check_slot(slot)
        if self._boundary_pending[slot]:
            raise PredictionError(
                "interval boundary reached; call complete_interval(cpi) "
                "before observing more branches"
            )
        if instructions < 0:
            raise ValueError(
                f"instructions must be non-negative, got {instructions}"
            )
        index = int(_hash_pc_unchecked(
            np.array([pc]), self.config.num_counters
        )[0])
        counters = self.classifiers._counters
        counters[slot, index] = min(
            int(counters[slot, index]) + instructions,
            self.classifiers._counter_max,
        )
        self.classifiers._acc_total[slot] += instructions
        self._instructions[slot] += instructions
        self._branches[slot] += 1
        if self._instructions[slot] >= self._interval_instructions[slot]:
            self._boundary_pending[slot] = True
        return bool(self._boundary_pending[slot])

    def observe_batch(
        self,
        slots,
        pcs,
        counts,
        cpi: float = 1.0,
    ) -> List[Tuple[int, TrackerReport]]:
        """Ingest branch records for many sessions in one call.

        ``slots``/``pcs``/``counts`` are parallel arrays; each record
        belongs to the slot named beside it and slots may interleave
        freely. Every interval boundary any slot crosses is closed with
        a batched classification pass; ``cpi`` is attributed to every
        completed interval. Returns ``(slot, report)`` pairs ordered by
        the position of each interval's crossing record in the input —
        the order a record-by-record scalar replay would produce.
        Behaviourally identical to per-slot
        :meth:`~repro.core.online.PhaseTracker.observe_batch` calls.
        """
        slots = np.asarray(slots, dtype=np.int64)
        pcs = np.asarray(pcs, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if not (slots.shape == pcs.shape == counts.shape) or slots.ndim != 1:
            raise PredictionError(
                "slots, pcs and counts must be parallel 1-D arrays: "
                f"{slots.shape} vs {pcs.shape} vs {counts.shape}"
            )
        self._check_slots(slots)
        if np.any(self._boundary_pending[slots]):
            raise PredictionError(
                "interval boundary reached; call complete_interval(cpi) "
                "before observing more branches"
            )
        if slots.size == 0:
            return []
        if np.any(counts < 0):
            raise ValueError("instruction counts must be non-negative")
        cpis = np.full(slots.size, cpi, dtype=np.float64)
        return [
            (slot, report)
            for _, slot, report in self._observe_records(
                slots, pcs, counts, cpis
            )
        ]

    def observe_fanin(
        self,
        segments: Sequence[Tuple[int, Sequence[int], Sequence[int], float]],
    ) -> List[List[TrackerReport]]:
        """Ingest per-session record slices in one fused pass.

        ``segments`` is a sequence of ``(slot, pcs, counts, cpi)``
        slices — one per caller request. All slices are concatenated
        and driven through the same segmented boundary machinery as
        :meth:`observe_batch`; each completed interval is attributed
        the ``cpi`` of the segment whose record crossed the boundary,
        exactly as per-segment scalar ``observe_batch(..., cpi=...)``
        calls would. Returns one report list per segment, in the order
        each segment's boundaries were crossed — byte-identical to
        running the segments one at a time in order.

        This is the service's cross-session ingest coalescing entry
        point: many connections' queued observes become one batched
        pool pass, with the reports fanned back per request.
        """
        if not segments:
            return []
        slot_parts: List[np.ndarray] = []
        pc_parts: List[np.ndarray] = []
        count_parts: List[np.ndarray] = []
        cpi_parts: List[np.ndarray] = []
        offsets = np.zeros(len(segments), dtype=np.int64)
        total = 0
        for index, (slot, pcs, counts, cpi) in enumerate(segments):
            pcs = np.asarray(pcs, dtype=np.int64)
            counts = np.asarray(counts, dtype=np.int64)
            if pcs.shape != counts.shape or pcs.ndim != 1:
                raise PredictionError(
                    "segment pcs and counts must be parallel 1-D arrays: "
                    f"{pcs.shape} vs {counts.shape}"
                )
            offsets[index] = total
            total += pcs.size
            if pcs.size == 0:
                continue
            slot_parts.append(
                np.full(pcs.size, np.int64(slot), dtype=np.int64)
            )
            pc_parts.append(pcs)
            count_parts.append(counts)
            cpi_parts.append(np.full(pcs.size, cpi, dtype=np.float64))
        reports: List[List[TrackerReport]] = [[] for _ in segments]
        if total == 0:
            return reports
        slots = np.concatenate(slot_parts)
        pcs_all = np.concatenate(pc_parts)
        counts_all = np.concatenate(count_parts)
        cpis_all = np.concatenate(cpi_parts)
        self._check_slots(slots)
        if np.any(self._boundary_pending[slots]):
            raise PredictionError(
                "interval boundary reached; call complete_interval(cpi) "
                "before observing more branches"
            )
        if np.any(counts_all < 0):
            raise ValueError("instruction counts must be non-negative")
        for position, _, report in self._observe_records(
            slots, pcs_all, counts_all, cpis_all
        ):
            # The owning segment is the last one starting at or before
            # the crossing record (empty segments share offsets but can
            # never own a record).
            segment = int(
                np.searchsorted(offsets, position, side="right")
            ) - 1
            reports[segment].append(report)
        return reports

    def _observe_records(
        self,
        slots: np.ndarray,
        pcs: np.ndarray,
        counts: np.ndarray,
        cpis: np.ndarray,
    ) -> List[Tuple[int, int, TrackerReport]]:
        """The segmented multi-session ingest rounds shared by
        :meth:`observe_batch` and :meth:`observe_fanin`.

        ``cpis`` is per-record; a completed interval is attributed the
        CPI of the record that crossed the boundary. Returns
        ``(position, slot, report)`` boundary events ordered by the
        crossing record's position in the input arrays.
        """
        # Stable sort groups records per slot while preserving each
        # slot's record order (and lets every round reduce per group).
        order = np.argsort(slots, kind="stable")
        s_slots = slots[order]
        s_pcs = pcs[order]
        s_counts = counts[order]
        s_cpis = cpis[order]
        total_records = s_slots.size
        uniq, starts = np.unique(s_slots, return_index=True)
        ends = np.append(starts[1:], total_records)
        group_count = uniq.size
        group_of = np.repeat(np.arange(group_count), ends - starts)
        prefix = np.cumsum(s_counts)
        base = np.where(starts > 0, prefix[np.maximum(starts - 1, 0)], 0)
        wcum = prefix - np.repeat(base, ends - starts)
        record_idx = np.arange(total_records, dtype=np.int64)

        cursor = starts.copy()
        consumed = np.zeros(group_count, dtype=np.int64)
        boundary_events: List[Tuple[int, int, TrackerReport]] = []
        active = cursor < ends
        classifier = self.classifiers

        while active.any():
            act = np.nonzero(active)[0]
            act_slots = uniq[act]
            needed = (
                self._interval_instructions[act_slots]
                - self._instructions[act_slots]
            )
            target = np.full(group_count, _BIG, dtype=np.int64)
            target[act] = consumed[act] + needed
            ok = wcum >= target[group_of]
            # Segments span from one active cursor to the next; records
            # outside a group's unconsumed tail can never be "ok":
            # consumed records have wcum <= consumed < target, and
            # inactive groups carry the _BIG target.
            mins = np.minimum.reduceat(
                np.where(ok, record_idx, _BIG), cursor[act]
            )
            has_boundary = mins < ends[act]
            take_end = np.where(has_boundary, mins, ends[act] - 1)

            # Consume [cursor, take_end] per active group via one mask.
            delta = np.zeros(total_records + 1, dtype=np.int64)
            np.add.at(delta, cursor[act], 1)
            np.add.at(delta, take_end + 1, -1)
            taken = np.cumsum(delta[:total_records]) > 0
            classifier.ingest(s_slots[taken], s_pcs[taken], s_counts[taken])

            segment_totals = wcum[take_end] - consumed[act]
            self._instructions[act_slots] += segment_totals
            self._branches[act_slots] += take_end - cursor[act] + 1
            # ClassifierPool.ingest already advanced the accumulator
            # totals for the taken records.

            crossing = np.nonzero(has_boundary)[0]
            if crossing.size:
                b_groups = act[crossing]
                b_slots = uniq[b_groups]
                self._boundary_pending[b_slots] = True
                reports = self._complete(
                    b_slots, s_cpis[take_end[crossing]]
                )
                crossing_records = order[take_end[crossing]]
                for position, slot, report in zip(
                    crossing_records, b_slots, reports
                ):
                    boundary_events.append(
                        (int(position), int(slot), report)
                    )
                consumed[b_groups] = wcum[take_end[crossing]]
                cursor[b_groups] = take_end[crossing] + 1
            finished = act[np.nonzero(~has_boundary)[0]]
            cursor[finished] = ends[finished]
            active = cursor < ends

        boundary_events.sort(key=lambda event: event[0])
        return boundary_events

    def complete_interval(self, slot: int, cpi: float) -> TrackerReport:
        """Close one slot's current interval (facade support)."""
        self._check_slot(slot)
        if (
            not self._boundary_pending[slot]
            and self._instructions[slot] == 0
        ):
            raise PredictionError("no interval content to complete")
        return self._complete(
            np.array([slot], dtype=np.int64),
            np.array([cpi], dtype=np.float64),
        )[0]

    def _complete(
        self, slots: np.ndarray, cpis: np.ndarray
    ) -> List[TrackerReport]:
        """Classify the slots' pending intervals in one batched pass and
        run the per-slot (boundary-rate) predictor updates."""
        if self._m_batch is not None:
            self._m_batch.observe(len(slots))
        verdict = self.classifiers.classify(slots, cpis)
        reports: List[TrackerReport] = []
        for row, slot in enumerate(int(s) for s in slots):
            phase_id = int(verdict["phase_id"][row])
            next_phase = self._next_phase[slot]
            length = self._length[slot]
            next_phase.step(phase_id)
            length.advance(phase_id)
            try:
                prediction = next_phase.predict()
            except PredictionError:  # pragma: no cover - first interval
                prediction = None

            self._instructions[slot] = 0
            self._branches[slot] = 0
            self._boundary_pending[slot] = False

            previous = int(self._previous_phase[slot])
            phase_changed = previous >= 0 and phase_id != previous
            report = TrackerReport(
                interval_index=int(self._interval_index[slot]),
                phase_id=phase_id,
                is_transition=phase_id == TRANSITION_PHASE_ID,
                phase_changed=phase_changed,
                new_phase_allocated=bool(
                    verdict["new_phase_allocated"][row]
                ),
                predicted_next_phase=(
                    prediction.phase_id if prediction is not None else None
                ),
                prediction_confident=(
                    prediction.confident if prediction is not None else False
                ),
                predicted_length_class=length.outstanding_prediction,
            )
            self._interval_index[slot] += 1
            self._previous_phase[slot] = phase_id
            if phase_changed:
                self._notify(slot, report)
            reports.append(report)
        return reports

    def _notify(self, slot: int, report: TrackerReport) -> None:
        for listener in self._listeners[slot]:
            try:
                listener(report)
            except Exception:  # noqa: BLE001 - isolation boundary
                import logging

                logging.getLogger(__name__).exception(
                    "phase-change listener %r raised at interval %d; "
                    "continuing",
                    listener,
                    report.interval_index,
                )

    # -- per-slot lifecycle ---------------------------------------------------

    def reset_slot(self, slot: int) -> None:
        """Scalar ``PhaseTracker.reset`` semantics for one slot."""
        self._check_slot(slot)
        self.classifiers.reset_slots(np.array([slot]))
        self._next_phase[slot].reset()
        self._length[slot].reset()
        self._instructions[slot] = 0
        self._boundary_pending[slot] = False
        self._interval_index[slot] = 0
        self._previous_phase[slot] = -1
        self._branches[slot] = 0
        self._listeners[slot] = []

    # -- snapshot interop -----------------------------------------------------

    def export_slot(self, slot: int) -> dict:
        """The slot's full tracker state — byte-identical to the scalar
        :meth:`~repro.core.online.PhaseTracker.export_state`."""
        self._check_slot(slot)
        next_phase = self._next_phase[slot]
        change = next_phase.change_predictor
        previous = self._previous_phase[slot]
        return {
            "interval_instructions": int(self._interval_instructions[slot]),
            "instructions": int(self._instructions[slot]),
            "boundary_pending": bool(self._boundary_pending[slot]),
            "interval_index": int(self._interval_index[slot]),
            "previous_phase": int(previous) if previous >= 0 else None,
            "branches_in_interval": int(self._branches[slot]),
            "classifier": self.classifiers.export_slot(slot),
            "change_predictor": (
                {"kind": change.snapshot_kind,
                 "kwargs": change.snapshot_kwargs()}
                if change is not None else None
            ),
            "next_phase": next_phase.export_state(),
            "length_predictor": self._length[slot].export_state(),
        }

    def restore_slot(self, slot: int, state: dict) -> None:
        """Load scalar tracker state into an allocated slot.

        The slot's predictors are rebuilt from the snapshot's
        ``change_predictor`` spec, exactly as
        :func:`repro.service.snapshot.restore_tracker` does for scalar
        trackers.
        """
        self._check_slot(slot)
        self.classifiers.restore_slot(slot, state["classifier"])
        change = change_predictor_from_spec(state.get("change_predictor"))
        next_phase = CompositePhasePredictor(change)
        next_phase.restore_state(state["next_phase"])
        length = PhaseLengthPredictor()
        length.restore_state(state["length_predictor"])
        self._next_phase[slot] = next_phase
        self._length[slot] = length
        self._interval_instructions[slot] = int(
            state["interval_instructions"]
        )
        self._instructions[slot] = int(state["instructions"])
        self._boundary_pending[slot] = bool(state["boundary_pending"])
        self._interval_index[slot] = int(state["interval_index"])
        previous = state["previous_phase"]
        self._previous_phase[slot] = -1 if previous is None else int(previous)
        self._branches[slot] = int(state["branches_in_interval"])

    def try_adopt(self, state: dict) -> "Optional[PooledTracker]":
        """Restore exported tracker state into a fresh slot, if this
        pool can host it.

        Returns ``None`` — a soft signal to fall back to a scalar
        tracker — when the snapshot's configuration does not match the
        pool's. Genuinely malformed state raises, with the slot
        released first.
        """
        try:
            exported = ClassifierConfig(**state["classifier"]["config"])
        except (KeyError, TypeError, ConfigurationError):
            return None
        if exported != self.config:
            return None
        slot = self.allocate(
            interval_instructions=int(state["interval_instructions"]),
            change_predictor=None,
        )
        try:
            self.restore_slot(slot, state)
        except Exception:
            self.release(slot)
            raise
        if self._m_adoptions is not None:
            self._m_adoptions.inc()
        return PooledTracker(self, slot)

    # -- inspection -----------------------------------------------------------

    def add_phase_change_listener(
        self, slot: int, listener: PhaseChangeListener
    ) -> None:
        self._check_slot(slot)
        self._listeners[slot].append(listener)

    def intervals_observed(self, slot: int) -> int:
        self._check_slot(slot)
        return int(self._interval_index[slot])

    def current_phase(self, slot: int) -> Optional[int]:
        self._check_slot(slot)
        previous = self._previous_phase[slot]
        return int(previous) if previous >= 0 else None


class PooledTracker:
    """A pool slot wearing the scalar :class:`PhaseTracker` interface.

    Holds the pool and a slot handle; every method checks the handle is
    still current (a released slot's facade raises
    :class:`~repro.errors.PoolError` instead of silently reading
    recycled state). Code written against the scalar tracker — the
    session registry, snapshotting, persistence — runs unchanged.
    """

    __slots__ = ("pool", "slot", "_generation", "_final")

    def __init__(self, pool: TrackerPool, slot: int) -> None:
        self.pool = pool
        self.slot = slot
        self._generation = int(pool._generation[slot])
        self._final: Optional[dict] = None

    def _check(self) -> None:
        if (
            not self.pool._allocated[self.slot]
            or int(self.pool._generation[self.slot]) != self._generation
        ):
            raise PoolError(
                f"slot {self.slot} was released; this handle is stale"
            )

    def release(self) -> None:
        """Return the slot to the pool; the facade becomes unusable.

        Read-only summary stats (``intervals_observed``,
        ``current_phase``) keep answering with their final values —
        a scalar tracker object also stays readable after its session
        closes, and the service reports those stats in close events.
        """
        self._check()
        self._final = {
            "intervals_observed": self.pool.intervals_observed(self.slot),
            "current_phase": self.pool.current_phase(self.slot),
        }
        self.pool.release(self.slot)

    # -- the PhaseTracker interface -------------------------------------------

    def observe_branch(self, pc: int, instructions: int) -> bool:
        self._check()
        return self.pool.observe_branch(self.slot, pc, instructions)

    def observe_batch(
        self, pcs, counts, cpi: float = 1.0
    ) -> List[TrackerReport]:
        self._check()
        pcs = np.asarray(pcs, dtype=np.int64)
        slots = np.full(pcs.shape, self.slot, dtype=np.int64)
        return [
            report
            for _, report in self.pool.observe_batch(
                slots, pcs, counts, cpi=cpi
            )
        ]

    def complete_interval(self, cpi: float) -> TrackerReport:
        self._check()
        return self.pool.complete_interval(self.slot, cpi)

    def add_phase_change_listener(
        self, listener: PhaseChangeListener
    ) -> None:
        self._check()
        self.pool.add_phase_change_listener(self.slot, listener)

    def reset(self) -> None:
        self._check()
        self.pool.reset_slot(self.slot)

    def export_state(self) -> dict:
        self._check()
        return self.pool.export_slot(self.slot)

    def restore_state(self, state: dict) -> None:
        self._check()
        self.pool.restore_slot(self.slot, state)

    # -- properties mirroring PhaseTracker ------------------------------------

    @property
    def interval_instructions(self) -> int:
        self._check()
        return int(self.pool._interval_instructions[self.slot])

    @interval_instructions.setter
    def interval_instructions(self, value: int) -> None:
        self._check()
        if value <= 0:
            raise PredictionError(
                f"interval_instructions must be positive, got {value}"
            )
        self.pool._interval_instructions[self.slot] = value

    @property
    def intervals_observed(self) -> int:
        if self._final is not None:
            return self._final["intervals_observed"]
        self._check()
        return self.pool.intervals_observed(self.slot)

    @property
    def current_phase(self) -> Optional[int]:
        if self._final is not None:
            return self._final["current_phase"]
        self._check()
        return self.pool.current_phase(self.slot)

    @property
    def instructions_into_interval(self) -> int:
        self._check()
        return int(self.pool._instructions[self.slot])

    @property
    def next_phase(self) -> CompositePhasePredictor:
        self._check()
        return self.pool._next_phase[self.slot]

    @property
    def length_predictor(self) -> PhaseLengthPredictor:
        self._check()
        return self.pool._length[self.slot]

    @property
    def config(self) -> ClassifierConfig:
        return self.pool.config

    @property
    def telemetry(self):
        """Pooled trackers do not carry per-slot telemetry."""
        return None


def classify_traces_batched(
    traces: Sequence[IntervalTrace],
    config: Optional[ClassifierConfig] = None,
) -> List[ClassificationRun]:
    """Classify many traces in lockstep interval rounds on one pool.

    Value-identical to running
    :meth:`~repro.core.classifier.PhaseClassifier.classify_trace`
    per trace (each slot is an independent classifier), but each round
    ingests and classifies every still-running trace's next interval in
    one vectorized pass — the experiment engine's opt-in fast path.
    """
    if not traces:
        return []
    pool = ClassifierPool(len(traces), config)
    results: List[List[ClassificationResult]] = [[] for _ in traces]
    lengths = [len(trace) for trace in traces]
    for interval_index in range(max(lengths)):
        ready = [
            position for position, length in enumerate(lengths)
            if interval_index < length
        ]
        intervals = [traces[position][interval_index] for position in ready]
        slot_repeats = np.repeat(
            np.asarray(ready, dtype=np.int64),
            [interval.branch_pcs.size for interval in intervals],
        )
        pool.ingest(
            slot_repeats,
            np.concatenate([i.branch_pcs for i in intervals]),
            np.concatenate([i.instr_counts for i in intervals]),
        )
        verdict = pool.classify(
            np.asarray(ready, dtype=np.int64),
            np.asarray([i.cpi for i in intervals], dtype=np.float64),
        )
        for row, position in enumerate(ready):
            results[position].append(ClassificationResult(
                phase_id=int(verdict["phase_id"][row]),
                matched=bool(verdict["matched"][row]),
                distance=float(verdict["distance"][row]),
                threshold_tightened=bool(
                    verdict["threshold_tightened"][row]
                ),
                new_phase_allocated=bool(
                    verdict["new_phase_allocated"][row]
                ),
            ))
    return [
        ClassificationRun(
            results=results[position],
            num_phases=int(pool.phases_allocated[position]),
            evictions=int(pool.evictions[position]),
        )
        for position in range(len(traces))
    ]
