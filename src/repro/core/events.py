"""Classification results: per-interval records and whole-run summaries.

The classifier emits one :class:`ClassificationResult` per interval; a
:class:`ClassificationRun` aggregates them for a whole trace and is the
input to the analysis package (CoV, run lengths) and the predictors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import TRANSITION_PHASE_ID
from repro.errors import TraceError


@dataclass(frozen=True)
class ClassificationResult:
    """The classifier's verdict for one interval.

    Parameters
    ----------
    phase_id:
        Assigned phase; :data:`TRANSITION_PHASE_ID` (0) for intervals in
        the transition phase.
    matched:
        Whether the signature matched an existing table entry (``False``
        means a new entry was inserted).
    distance:
        Relative distance to the matched entry (0.0 on insert).
    threshold_tightened:
        The adaptive classifier halved this entry's threshold on this
        interval.
    new_phase_allocated:
        A real phase ID was allocated on this interval (the entry just
        became stable).
    """

    phase_id: int
    matched: bool
    distance: float
    threshold_tightened: bool = False
    new_phase_allocated: bool = False

    @property
    def is_transition(self) -> bool:
        return self.phase_id == TRANSITION_PHASE_ID


@dataclass
class ClassificationRun:
    """All per-interval results for one trace, plus run-level metrics."""

    results: List[ClassificationResult]
    num_phases: int
    evictions: int

    def __post_init__(self) -> None:
        if not self.results:
            raise TraceError("a classification run must cover >= 1 interval")

    def __len__(self) -> int:
        return len(self.results)

    @property
    def phase_ids(self) -> np.ndarray:
        """Phase ID per interval, in execution order."""
        return np.array([r.phase_id for r in self.results], dtype=np.int64)

    @property
    def transition_mask(self) -> np.ndarray:
        """True where the interval was classified into the transition phase."""
        return self.phase_ids == TRANSITION_PHASE_ID

    @property
    def transition_fraction(self) -> float:
        """Fraction of intervals classified as transitions (Fig. 4)."""
        return float(self.transition_mask.mean())

    @property
    def num_intervals(self) -> int:
        return len(self.results)

    @property
    def distinct_phases_observed(self) -> int:
        """Distinct real phase IDs that actually appear in the stream."""
        ids = self.phase_ids
        return int(np.unique(ids[ids != TRANSITION_PHASE_ID]).size)

    def phase_interval_indices(self) -> Dict[int, np.ndarray]:
        """Map phase ID -> indices of intervals classified into it.

        Includes the transition phase under key 0 when present.
        """
        ids = self.phase_ids
        return {
            int(phase): np.nonzero(ids == phase)[0]
            for phase in np.unique(ids)
        }

    def phase_change_mask(self) -> np.ndarray:
        """Boolean mask: interval ``i`` is True when ``phase[i] !=
        phase[i-1]`` (the first interval is False by convention)."""
        ids = self.phase_ids
        mask = np.zeros(ids.shape, dtype=bool)
        mask[1:] = ids[1:] != ids[:-1]
        return mask

    @property
    def phase_change_fraction(self) -> float:
        """Fraction of interval boundaries that change phase (§5.2.1:
        ~25% in the paper)."""
        if len(self.results) < 2:
            return 0.0
        ids = self.phase_ids
        return float((ids[1:] != ids[:-1]).mean())
