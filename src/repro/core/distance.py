"""Signature similarity: Manhattan distance and its relative form.

The paper compares signatures with the Manhattan (L1) distance (§4.1
step 3) and states thresholds as percentages: "a signature must differ
from a past signature by less than 12.5%".

The normalization turning an absolute L1 distance into that percentage
is not spelled out in the paper; we normalize by the sum of the two
signatures' total weights::

    relative = manhattan(a, b) / (total(a) + total(b))

which has the properties the thresholds imply: identical signatures are
0% different, signatures with disjoint support are 100% different, and
the measure is symmetric. The choice is pluggable — pass a different
``normalizer`` to :func:`relative_distance` to explore alternatives
(an ablation in ``benchmarks/bench_ablation_distance.py``).
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

from repro.core.signature import Signature

_VectorLike = Union[Signature, np.ndarray]

#: Normalizer: (total_a, total_b) -> positive denominator.
Normalizer = Callable[[int, int], float]


def _as_array(value: _VectorLike) -> np.ndarray:
    if isinstance(value, Signature):
        return value.values
    return np.asarray(value, dtype=np.int64)


def manhattan_distance(a: _VectorLike, b: _VectorLike) -> int:
    """The L1 distance between two signature vectors."""
    va, vb = _as_array(a), _as_array(b)
    if va.shape != vb.shape:
        raise ValueError(
            f"signatures have different dimensions: {va.shape} vs {vb.shape}"
        )
    return int(np.abs(va - vb).sum())


def sum_normalizer(total_a: int, total_b: int) -> float:
    """Default: normalize by the combined weight of both signatures."""
    return float(max(total_a + total_b, 1))


def max_normalizer(total_a: int, total_b: int) -> float:
    """Alternative: normalize by twice the heavier signature's weight.

    Since ``2 * max(a, b) >= a + b``, this is slightly *looser* than
    :func:`sum_normalizer` when the two signatures' totals differ.
    """
    return float(max(2 * max(total_a, total_b), 1))


def relative_distance(
    a: _VectorLike,
    b: _VectorLike,
    normalizer: Normalizer = sum_normalizer,
) -> float:
    """Manhattan distance as a fraction in [0, 1].

    0.0 means identical; 1.0 (under the default normalizer) means the
    signatures share no weight at all.
    """
    va, vb = _as_array(a), _as_array(b)
    distance = manhattan_distance(va, vb)
    return distance / normalizer(int(va.sum()), int(vb.sum()))


def relative_distance_matrix(
    matrix: np.ndarray,
    vector: np.ndarray,
    normalizer: Normalizer = sum_normalizer,
) -> np.ndarray:
    """Vectorized relative distance of one signature against many.

    ``matrix`` is (entries x dims); ``vector`` is (dims,). Returns a
    float array of length ``entries``. This is the hot path of the
    classifier, hence the batch form.
    """
    matrix = np.asarray(matrix, dtype=np.int64)
    vector = np.asarray(vector, dtype=np.int64)
    if matrix.ndim != 2 or matrix.shape[1] != vector.shape[0]:
        raise ValueError(
            f"shape mismatch: matrix {matrix.shape} vs vector {vector.shape}"
        )
    distances = np.abs(matrix - vector[None, :]).sum(axis=1)
    row_totals = matrix.sum(axis=1)
    vector_total = int(vector.sum())
    if normalizer is sum_normalizer:  # vectorized hot path
        denominators = np.maximum(row_totals + vector_total, 1).astype(
            np.float64
        )
    elif normalizer is max_normalizer:
        denominators = np.maximum(
            2 * np.maximum(row_totals, vector_total), 1
        ).astype(np.float64)
    else:
        denominators = np.array(
            [normalizer(int(t), vector_total) for t in row_totals],
            dtype=np.float64,
        )
    return distances / denominators
