"""The accumulator table: per-interval code-signature collection.

The hardware front-end (paper §4.1 steps 1-2) records each committed
branch PC together with the number of instructions committed since the
previous branch; the PC is hashed into one of N saturating counters and
the counter is incremented by the instruction count. At the end of each
interval the counters form the interval's raw code signature.

This implementation batches the per-branch updates with ``np.bincount``,
which is arithmetically identical to the sequential hardware update
(addition commutes) but orders of magnitude faster in Python.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.core.config import ACCUMULATOR_BITS

#: Knuth's multiplicative hash constant (2^32 / golden ratio).
_HASH_MULTIPLIER = np.uint64(2654435761)
_HASH_MASK = np.uint64(0xFFFF_FFFF)

#: Largest per-bucket sum that a float64 ``np.bincount`` accumulates
#: exactly (53-bit mantissa); beyond it the batch path falls back to an
#: integer scatter-add.
_EXACT_FLOAT_SUM = 1 << 53


def validate_num_counters(num_counters: int) -> None:
    """Reject counter counts that are not positive powers of two.

    Validation lives here (and in :class:`AccumulatorTable.__init__`)
    rather than inside the per-call hash path; direct users composing
    their own tables can call it once up front.
    """
    if num_counters <= 0 or num_counters & (num_counters - 1):
        raise ConfigurationError(
            f"num_counters must be a positive power of two, got "
            f"{num_counters}"
        )


def _hash_pc_unchecked(pcs: np.ndarray, num_counters: int) -> np.ndarray:
    """The hash itself, assuming ``num_counters`` was validated."""
    words = (np.asarray(pcs, dtype=np.uint64) >> np.uint64(2))
    hashed = (words * _HASH_MULTIPLIER) & _HASH_MASK
    folded = hashed ^ (hashed >> np.uint64(16))
    return (folded & np.uint64(num_counters - 1)).astype(np.int64)


def hash_pc(pcs: np.ndarray, num_counters: int) -> np.ndarray:
    """Hash branch PCs into accumulator indices.

    A multiplicative hash on the word-aligned PC, folded over 16 bits so
    both halves of the product contribute. Deterministic across runs.
    """
    validate_num_counters(num_counters)
    return _hash_pc_unchecked(pcs, num_counters)


class AccumulatorTable:
    """N saturating counters accumulating instruction counts per hash bucket.

    Parameters
    ----------
    num_counters:
        Number of counters (signature dimensions); power of two.
    counter_bits:
        Counter width; 24 bits per the paper (never overflows a 10M
        instruction interval).
    """

    def __init__(
        self, num_counters: int = 16, counter_bits: int = ACCUMULATOR_BITS
    ) -> None:
        validate_num_counters(num_counters)
        if not 1 <= counter_bits <= 62:
            raise ConfigurationError(
                f"counter_bits must be in [1, 62], got {counter_bits}"
            )
        self.num_counters = num_counters
        self.counter_bits = counter_bits
        self._max_value = (1 << counter_bits) - 1
        self._counters = np.zeros(num_counters, dtype=np.int64)
        self._total = 0

    @property
    def counters(self) -> np.ndarray:
        """A copy of the current counter values."""
        return self._counters.copy()

    @property
    def total_increment(self) -> int:
        """Sum of all increments this interval (pre-saturation)."""
        return self._total

    @property
    def average_counter_value(self) -> int:
        """Average increment per counter (used by dynamic bit selection).

        Computed as total / N — in hardware a shift, since N is a power
        of two.
        """
        return self._total // self.num_counters

    def update(self, pc: int, instructions: int) -> None:
        """Record one committed branch (hardware-faithful single update)."""
        if instructions < 0:
            raise ValueError(
                f"instructions must be non-negative, got {instructions}"
            )
        index = int(_hash_pc_unchecked(np.array([pc]), self.num_counters)[0])
        self._counters[index] = min(
            int(self._counters[index]) + instructions, self._max_value
        )
        self._total += instructions

    def update_batch(self, pcs: np.ndarray, instructions: np.ndarray) -> None:
        """Record a batch of branches (vectorized, addition-equivalent)."""
        pcs = np.asarray(pcs)
        instructions = np.asarray(instructions, dtype=np.int64)
        if pcs.shape != instructions.shape:
            raise ValueError(
                "pcs and instructions must be parallel arrays: "
                f"{pcs.shape} vs {instructions.shape}"
            )
        if np.any(instructions < 0):
            raise ValueError("instruction counts must be non-negative")
        indices = _hash_pc_unchecked(pcs, self.num_counters)
        total = int(instructions.sum())
        if total < _EXACT_FLOAT_SUM:
            # Every per-bucket sum is bounded by the batch total, so the
            # float64 bincount is exact — and much faster than a scatter-add.
            sums = np.bincount(
                indices, weights=instructions.astype(np.float64),
                minlength=self.num_counters,
            ).astype(np.int64)
        else:
            # Integer scatter-add: slower, but never rounds (the
            # hardware-faithful path accumulates in integers).
            sums = np.zeros(self.num_counters, dtype=np.int64)
            np.add.at(sums, indices, instructions)
        self._counters = np.minimum(self._counters + sums, self._max_value)
        self._total += total

    def clear(self) -> None:
        """Reset all counters for the next interval."""
        self._counters.fill(0)
        self._total = 0

    # -- snapshot hooks -------------------------------------------------------

    def export_state(self) -> dict:
        """JSON-safe mid-interval state (counters and running total)."""
        return {
            "counters": [int(v) for v in self._counters],
            "total": self._total,
        }

    def restore_state(self, state: dict) -> None:
        """Restore state captured by :meth:`export_state`.

        The table geometry (``num_counters``, ``counter_bits``) is not
        part of the state; the caller reconstructs the table from its
        configuration first.
        """
        counters = np.asarray(state["counters"], dtype=np.int64)
        if counters.shape != self._counters.shape:
            raise ConfigurationError(
                f"snapshot has {counters.size} counters, table has "
                f"{self.num_counters}"
            )
        self._counters = counters.copy()
        self._total = int(state["total"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AccumulatorTable(n={self.num_counters}, "
            f"bits={self.counter_bits}, total={self._total})"
        )
