"""The online phase classifier.

Combines the accumulator table, bit selection, signature table,
transition-phase min counters and adaptive thresholds into the full
architecture of the paper:

1. **Track the code** — each interval's (branch PC, instruction count)
   records accumulate into the hashed counter table.
2. **Form the signature** — at interval end the counters are compressed
   by the configured bit selector.
3. **Classify** — the signature is compared against the table. On a
   match (most-similar policy by default) the stored signature is
   replaced by the current one and the entry's Min Counter increments;
   on a miss a new entry is inserted. An entry's intervals belong to
   the transition phase (ID 0) until the Min Counter exceeds the
   min-count threshold, at which point a real phase ID is allocated.
4. **Adapt** — with the adaptive classifier enabled, each stable entry
   tracks the running-average CPI of its intervals; an interval whose
   CPI deviates more than the performance-deviation threshold halves
   the entry's similarity threshold and clears its CPI statistics.

The classifier is driven interval by interval
(:meth:`PhaseClassifier.classify_interval`) or over a whole trace
(:meth:`PhaseClassifier.classify_trace`).
"""

from __future__ import annotations

from dataclasses import asdict
from typing import List, Optional

import numpy as np

from repro.core.accumulator import AccumulatorTable
from repro.core.bitselect import (
    BitSelector,
    DynamicBitSelector,
    StaticBitSelector,
)
from repro.core.config import TRANSITION_PHASE_ID, ClassifierConfig
from repro.core.distance import Normalizer, sum_normalizer
from repro.core.events import ClassificationResult, ClassificationRun
from repro.core.signature import Signature
from repro.core.signature_table import SignatureTable, TableEntry
from repro.errors import ConfigurationError
from repro.workloads.trace import Interval, IntervalTrace


class PhaseClassifier:
    """Online phase classification per the paper's architecture.

    Example
    -------
    >>> from repro.core import ClassifierConfig, PhaseClassifier
    >>> from repro.workloads import benchmark
    >>> trace = benchmark("gzip/g", scale=0.1)
    >>> classifier = PhaseClassifier(ClassifierConfig.paper_default())
    >>> run = classifier.classify_trace(trace)
    >>> run.num_phases >= 1
    True
    """

    def __init__(
        self,
        config: Optional[ClassifierConfig] = None,
        normalizer: Normalizer = sum_normalizer,
    ) -> None:
        self.config = config or ClassifierConfig()
        self.accumulator = AccumulatorTable(self.config.num_counters)
        self.table = SignatureTable(
            capacity=self.config.table_entries,
            default_threshold=self.config.similarity_threshold,
            normalizer=normalizer,
        )
        self.bit_selector = self._build_bit_selector(self.config)
        self._next_phase_id = TRANSITION_PHASE_ID + 1
        self.phases_allocated = 0

    @staticmethod
    def _build_bit_selector(config: ClassifierConfig) -> BitSelector:
        if config.bit_selector == "dynamic":
            return DynamicBitSelector(bits=config.bits_per_counter)
        return StaticBitSelector(
            bits=config.bits_per_counter, low_bit=config.static_low_bit
        )

    # -- signature formation ---------------------------------------------

    def signature_for(self, interval: Interval) -> Signature:
        """Form the compressed signature for one interval's records.

        The accumulator table is cleared, fed the interval's branch
        records, and compressed with the configured bit selector.
        """
        self.accumulator.clear()
        self.accumulator.update_batch(
            interval.branch_pcs, interval.instr_counts
        )
        compressed = self.bit_selector.compress(
            self.accumulator.counters,
            self.accumulator.average_counter_value,
        )
        return Signature(compressed, bits=self.config.bits_per_counter)

    # -- classification -----------------------------------------------------

    def classify_interval(self, interval: Interval) -> ClassificationResult:
        """Classify one interval; returns its phase verdict."""
        signature = self.signature_for(interval)
        return self.classify_signature(signature, interval.cpi)

    def classify_signature(
        self, signature: Signature, cpi: float
    ) -> ClassificationResult:
        """Classify an already-formed signature (paper §4.1 step 3).

        This is the entry point for streaming drivers
        (:class:`repro.core.online.PhaseTracker`) that feed the
        accumulator branch by branch themselves; ``cpi`` is the
        interval's measured CPI used only by the adaptive feedback.
        """
        match = self.table.best_match(signature, self.config.match_policy)

        if match is None:
            entry = self.table.insert(signature)
            entry.min_counter = 1
            distance = 0.0
            matched = False
        else:
            entry, distance = match
            entry.min_counter += 1
            self.table.touch(entry, signature)
            matched = True

        new_phase = False
        if (
            entry.phase_id is None
            and entry.min_counter > self.config.min_count_threshold
        ):
            entry.phase_id = self._next_phase_id
            self._next_phase_id += 1
            self.phases_allocated += 1
            new_phase = True

        phase_id = (
            entry.phase_id if entry.phase_id is not None
            else TRANSITION_PHASE_ID
        )

        tightened = False
        if self.config.adaptive and phase_id != TRANSITION_PHASE_ID:
            tightened = self._apply_performance_feedback(entry, cpi)

        return ClassificationResult(
            phase_id=phase_id,
            matched=matched,
            distance=distance,
            threshold_tightened=tightened,
            new_phase_allocated=new_phase,
        )

    def _apply_performance_feedback(
        self, entry: TableEntry, cpi: float
    ) -> bool:
        """§4.6: halve the entry's threshold on large CPI deviation.

        Classification itself remains purely code-based; CPI only
        decides *when* to tighten. Returns whether tightening occurred.
        """
        deviation = entry.cpi_deviation(cpi)
        threshold = self.config.perf_dev_threshold
        assert threshold is not None  # guarded by caller
        if deviation > threshold:
            entry.similarity_threshold /= 2.0
            entry.clear_cpi_stats()
            return True
        entry.record_cpi(cpi)
        return False

    def classify_trace(self, trace: IntervalTrace) -> ClassificationRun:
        """Classify every interval of a trace, in order."""
        results: List[ClassificationResult] = [
            self.classify_interval(interval) for interval in trace
        ]
        return ClassificationRun(
            results=results,
            num_phases=self.phases_allocated,
            evictions=self.table.evictions,
        )

    # -- maintenance ----------------------------------------------------------

    def reset(self) -> None:
        """Return to the just-constructed state without rebuilding the
        accumulator, table or bit-selector objects (session recycling)."""
        self.accumulator.clear()
        self.table.clear()
        self._next_phase_id = TRANSITION_PHASE_ID + 1
        self.phases_allocated = 0

    # -- snapshot hooks -------------------------------------------------------

    def export_state(self) -> dict:
        """JSON-safe full classifier state.

        The configuration travels with the state so a restored
        classifier is self-describing; the bit selector is stateless
        and rebuilt from the configuration.
        """
        return {
            "config": asdict(self.config),
            "next_phase_id": self._next_phase_id,
            "phases_allocated": self.phases_allocated,
            "accumulator": self.accumulator.export_state(),
            "table": self.table.export_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Restore state captured by :meth:`export_state`.

        The classifier must have been constructed with the same
        configuration the state was exported under.
        """
        exported = ClassifierConfig(**state["config"])
        if exported != self.config:
            raise ConfigurationError(
                "snapshot was exported under a different classifier "
                f"configuration: {exported} vs {self.config}"
            )
        self._next_phase_id = int(state["next_phase_id"])
        self.phases_allocated = int(state["phases_allocated"])
        self.accumulator.restore_state(state["accumulator"])
        self.table.restore_state(state["table"])

    def notify_reconfiguration(self) -> None:
        """Flush all CPI feedback state (paper §4.6: an optimization that
        changes CPI must clear the feedback data, since classification
        must stay independent of the underlying hardware)."""
        self.table.flush_cpi_stats()

    @property
    def num_phases(self) -> int:
        """Real phase IDs allocated so far."""
        return self.phases_allocated
