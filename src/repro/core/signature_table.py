"""The past-signature table with LRU replacement.

Each entry holds (paper §4.1, §4.4, §4.6):

- the most recent signature classified into the entry (a match replaces
  the stored signature with the current one),
- the entry's phase ID — lazily allocated once the entry turns *stable*,
- the Min Counter counting how many intervals have been classified into
  the entry (the transition-phase mechanism),
- a per-entry similarity threshold (tightened by the adaptive
  classifier), and
- running CPI statistics used by the adaptive classifier's
  performance-deviation test.

The table supports a finite capacity with LRU replacement, or ``None``
capacity modelling the prior work's infinite table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.core.distance import Normalizer, relative_distance_matrix, sum_normalizer
from repro.core.signature import Signature


@dataclass
class TableEntry:
    """One signature-table entry (see module docstring for field roles)."""

    signature: Signature
    similarity_threshold: float
    phase_id: Optional[int] = None
    min_counter: int = 0
    last_used: int = 0
    cpi_count: int = 0
    cpi_mean: float = 0.0

    def record_cpi(self, cpi: float) -> None:
        """Fold one interval's CPI into the running average."""
        self.cpi_count += 1
        self.cpi_mean += (cpi - self.cpi_mean) / self.cpi_count

    def clear_cpi_stats(self) -> None:
        """Flush CPI statistics (after threshold tightening, or when an
        external reconfiguration invalidates performance history)."""
        self.cpi_count = 0
        self.cpi_mean = 0.0

    def cpi_deviation(self, cpi: float) -> float:
        """Relative deviation of ``cpi`` from the running average.

        Returns 0.0 when no history exists yet.
        """
        if self.cpi_count == 0 or self.cpi_mean == 0.0:
            return 0.0
        return abs(cpi - self.cpi_mean) / self.cpi_mean


class SignatureTable:
    """Finite (or infinite) LRU table of past signatures.

    Parameters
    ----------
    capacity:
        Maximum live entries; ``None`` means unbounded (prior work's
        idealized table).
    default_threshold:
        Similarity threshold assigned to newly inserted entries.
    normalizer:
        Distance normalization strategy (see :mod:`repro.core.distance`).
    """

    def __init__(
        self,
        capacity: Optional[int],
        default_threshold: float,
        normalizer: Normalizer = sum_normalizer,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ConfigurationError(
                f"capacity must be positive or None, got {capacity}"
            )
        if not 0.0 < default_threshold <= 1.0:
            raise ConfigurationError(
                f"default_threshold must be in (0, 1], got "
                f"{default_threshold}"
            )
        self.capacity = capacity
        self.default_threshold = default_threshold
        self.normalizer = normalizer
        self._entries: List[TableEntry] = []
        self._matrix: Optional[np.ndarray] = None  # rebuilt lazily
        self._clock = 0
        self.evictions = 0

    # -- bookkeeping --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[TableEntry]:
        """Live entries (mutable references, in insertion order)."""
        return self._entries

    def _signature_matrix(self) -> np.ndarray:
        if self._matrix is None:
            self._matrix = np.stack(
                [entry.signature.values for entry in self._entries]
            )
        return self._matrix

    def _invalidate_matrix(self) -> None:
        self._matrix = None

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    # -- search -------------------------------------------------------------

    def find_matches(
        self, signature: Signature
    ) -> List[Tuple[TableEntry, float]]:
        """All entries whose per-entry threshold admits ``signature``.

        Returns (entry, relative distance) pairs in table order.
        """
        if not self._entries:
            return []
        distances = relative_distance_matrix(
            self._signature_matrix(), signature.values, self.normalizer
        )
        thresholds = np.array(
            [entry.similarity_threshold for entry in self._entries]
        )
        eligible = np.nonzero(distances <= thresholds)[0]
        return [
            (self._entries[int(i)], float(distances[int(i)]))
            for i in eligible
        ]

    def best_match(
        self, signature: Signature, policy: str = "most_similar"
    ) -> Optional[Tuple[TableEntry, float]]:
        """The entry ``signature`` classifies into, or ``None``.

        ``policy`` is ``"most_similar"`` (this paper: the eligible entry
        with the smallest distance) or ``"first"`` (prior work: the
        first eligible entry in table order).
        """
        matches = self.find_matches(signature)
        if not matches:
            return None
        if policy == "first":
            return matches[0]
        if policy == "most_similar":
            return min(matches, key=lambda pair: pair[1])
        raise ConfigurationError(
            f"unknown match policy {policy!r}; expected 'most_similar' or "
            "'first'"
        )

    # -- mutation -----------------------------------------------------------

    def touch(self, entry: TableEntry, signature: Signature) -> None:
        """Record a classification hit: replace the stored signature with
        the current one (paper §4.1 step 3) and refresh LRU state."""
        entry.signature = signature
        entry.last_used = self._tick()
        self._invalidate_matrix()

    def insert(self, signature: Signature) -> TableEntry:
        """Insert a new entry, evicting the LRU entry if at capacity."""
        if self.capacity is not None and len(self._entries) >= self.capacity:
            victim_index = min(
                range(len(self._entries)),
                key=lambda i: self._entries[i].last_used,
            )
            del self._entries[victim_index]
            self.evictions += 1
        entry = TableEntry(
            signature=signature,
            similarity_threshold=self.default_threshold,
            last_used=self._tick(),
        )
        self._entries.append(entry)
        self._invalidate_matrix()
        return entry

    def flush_cpi_stats(self) -> None:
        """Clear CPI history on every entry (paper §4.6: performed when a
        reconfiguration changes the program's CPI)."""
        for entry in self._entries:
            entry.clear_cpi_stats()

    def clear(self) -> None:
        """Drop every entry and reset LRU/eviction bookkeeping, leaving
        capacity, threshold and normalizer configuration in place."""
        self._entries.clear()
        self._invalidate_matrix()
        self._clock = 0
        self.evictions = 0

    # -- snapshot hooks -------------------------------------------------------

    def export_state(self) -> dict:
        """JSON-safe full table state (entries, LRU clock, evictions)."""
        return {
            "clock": self._clock,
            "evictions": self.evictions,
            "entries": [
                {
                    "values": [int(v) for v in entry.signature.values],
                    "bits": entry.signature.bits,
                    "threshold": entry.similarity_threshold,
                    "phase_id": entry.phase_id,
                    "min_counter": entry.min_counter,
                    "last_used": entry.last_used,
                    "cpi_count": entry.cpi_count,
                    "cpi_mean": entry.cpi_mean,
                }
                for entry in self._entries
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Restore state captured by :meth:`export_state`, replacing any
        current contents. Capacity/threshold configuration is the
        caller's responsibility (rebuilt from the classifier config)."""
        self._entries = [
            TableEntry(
                signature=Signature(record["values"], bits=record["bits"]),
                similarity_threshold=float(record["threshold"]),
                phase_id=record["phase_id"],
                min_counter=int(record["min_counter"]),
                last_used=int(record["last_used"]),
                cpi_count=int(record["cpi_count"]),
                cpi_mean=float(record["cpi_mean"]),
            )
            for record in state["entries"]
        ]
        self._invalidate_matrix()
        self._clock = int(state["clock"])
        self.evictions = int(state["evictions"])
