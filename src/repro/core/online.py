"""Streaming phase tracking: the deployable branch-by-branch interface.

:class:`PhaseTracker` is what an online system (a DVS governor, a
reconfiguration manager, an OS scheduler) would actually embed: it is
driven one committed branch at a time, detects interval boundaries
itself, classifies each completed interval, keeps the next-phase and
phase-length predictors trained, and notifies registered listeners on
phase changes.

Typical use::

    tracker = PhaseTracker()
    tracker.add_phase_change_listener(
        lambda report: print("now in phase", report.phase_id))
    ...
    for pc, instructions in committed_branches:
        if tracker.observe_branch(pc, instructions):
            report = tracker.complete_interval(cpi=read_cpi_counter())

The caller supplies the interval's CPI at the boundary (a hardware
implementation reads cycle/instruction counters); everything else is
internal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.classifier import PhaseClassifier
from repro.core.config import ClassifierConfig, TRANSITION_PHASE_ID
from repro.core.events import ClassificationResult
from repro.core.signature import Signature
from repro.errors import PredictionError
from repro.prediction.composite import (
    CompositePhasePredictor,
    NextPhasePrediction,
)
from repro.prediction.length import PhaseLengthPredictor
from repro.prediction.rle import RLEChangePredictor
from repro.workloads.trace import DEFAULT_INTERVAL_INSTRUCTIONS


@dataclass(frozen=True)
class TrackerReport:
    """Everything the tracker knows at one interval boundary."""

    interval_index: int
    phase_id: int
    is_transition: bool
    phase_changed: bool
    new_phase_allocated: bool
    predicted_next_phase: Optional[int]
    prediction_confident: bool
    predicted_length_class: Optional[int]


#: Listener signature for phase-change notifications.
PhaseChangeListener = Callable[[TrackerReport], None]


class PhaseTracker:
    """Branch-granularity online phase tracking, prediction included.

    Parameters
    ----------
    config:
        Classifier configuration (paper §5.1 defaults).
    interval_instructions:
        Interval length; boundaries are detected when the committed
        instruction count reaches this (the branch record that crosses
        the boundary is attributed entirely to the completing interval,
        as the hardware's queue drain would).
    change_predictor:
        Phase-change predictor backing next-phase prediction; defaults
        to an RLE-2 table. Pass ``None`` for pure last-value.
    """

    def __init__(
        self,
        config: Optional[ClassifierConfig] = None,
        interval_instructions: int = DEFAULT_INTERVAL_INSTRUCTIONS,
        change_predictor: "RLEChangePredictor | None | str" = "default",
    ) -> None:
        if interval_instructions <= 0:
            raise PredictionError(
                "interval_instructions must be positive, got "
                f"{interval_instructions}"
            )
        self.classifier = PhaseClassifier(
            config or ClassifierConfig.paper_default()
        )
        self.interval_instructions = interval_instructions
        if change_predictor == "default":
            change_predictor = RLEChangePredictor(2)
        self.next_phase = CompositePhasePredictor(change_predictor)
        self.length_predictor = PhaseLengthPredictor()
        self._instructions = 0
        self._boundary_pending = False
        self._interval_index = 0
        self._previous_phase: Optional[int] = None
        self._listeners: List[PhaseChangeListener] = []

    # -- wiring ---------------------------------------------------------------

    def add_phase_change_listener(
        self, listener: PhaseChangeListener
    ) -> None:
        """Register a callback fired whenever the phase ID changes."""
        self._listeners.append(listener)

    # -- the streaming interface ------------------------------------------------

    def observe_branch(self, pc: int, instructions: int) -> bool:
        """Record one committed branch; returns True at a boundary.

        When True is returned the caller must call
        :meth:`complete_interval` with the interval's measured CPI
        before observing further branches.
        """
        if self._boundary_pending:
            raise PredictionError(
                "interval boundary reached; call complete_interval(cpi) "
                "before observing more branches"
            )
        self.classifier.accumulator.update(pc, instructions)
        self._instructions += instructions
        if self._instructions >= self.interval_instructions:
            self._boundary_pending = True
        return self._boundary_pending

    def complete_interval(self, cpi: float) -> TrackerReport:
        """Close the current interval: classify, predict, notify."""
        if not self._boundary_pending and self._instructions == 0:
            raise PredictionError("no interval content to complete")

        accumulator = self.classifier.accumulator
        compressed = self.classifier.bit_selector.compress(
            accumulator.counters, accumulator.average_counter_value
        )
        signature = Signature(
            compressed, bits=self.classifier.config.bits_per_counter
        )
        result: ClassificationResult = self.classifier.classify_signature(
            signature, cpi
        )
        accumulator.clear()
        self._instructions = 0
        self._boundary_pending = False

        self.next_phase.step(result.phase_id)
        self.length_predictor.observe(result.phase_id)

        prediction: Optional[NextPhasePrediction] = None
        try:
            prediction = self.next_phase.predict()
        except PredictionError:  # pragma: no cover - first interval only
            prediction = None

        phase_changed = (
            self._previous_phase is not None
            and result.phase_id != self._previous_phase
        )
        report = TrackerReport(
            interval_index=self._interval_index,
            phase_id=result.phase_id,
            is_transition=result.phase_id == TRANSITION_PHASE_ID,
            phase_changed=phase_changed,
            new_phase_allocated=result.new_phase_allocated,
            predicted_next_phase=(
                prediction.phase_id if prediction is not None else None
            ),
            prediction_confident=(
                prediction.confident if prediction is not None else False
            ),
            predicted_length_class=(
                self.length_predictor.outstanding_prediction
            ),
        )
        self._interval_index += 1
        self._previous_phase = result.phase_id

        if phase_changed:
            for listener in self._listeners:
                listener(report)
        return report

    # -- inspection ---------------------------------------------------------------

    @property
    def intervals_observed(self) -> int:
        return self._interval_index

    @property
    def current_phase(self) -> Optional[int]:
        """Phase of the most recently completed interval."""
        return self._previous_phase

    @property
    def instructions_into_interval(self) -> int:
        """Committed instructions since the last boundary."""
        return self._instructions
