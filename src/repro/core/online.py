"""Streaming phase tracking: the deployable branch-by-branch interface.

:class:`PhaseTracker` is what an online system (a DVS governor, a
reconfiguration manager, an OS scheduler) would actually embed: it is
driven one committed branch at a time, detects interval boundaries
itself, classifies each completed interval, keeps the next-phase and
phase-length predictors trained, and notifies registered listeners on
phase changes.

Typical use::

    tracker = PhaseTracker()
    tracker.add_phase_change_listener(
        lambda report: print("now in phase", report.phase_id))
    ...
    for pc, instructions in committed_branches:
        if tracker.observe_branch(pc, instructions):
            report = tracker.complete_interval(cpi=read_cpi_counter())

The caller supplies the interval's CPI at the boundary (a hardware
implementation reads cycle/instruction counters); everything else is
internal.

Pass ``telemetry=`` a :class:`repro.telemetry.Telemetry` hub to make
the tracker observable: per-interval stage spans (signature formation,
table matching, prediction update), signature-table hit/miss/eviction
counters, predictor accuracy counters, a per-branch ingest-latency
histogram, and one structured ``interval`` event per boundary. The
bare (``telemetry=None``) hot path is unchanged.
"""

from __future__ import annotations

import logging
from dataclasses import asdict, dataclass
from typing import Callable, List, Optional, TYPE_CHECKING

import numpy as np

from repro.core.classifier import PhaseClassifier
from repro.core.config import ClassifierConfig, TRANSITION_PHASE_ID
from repro.core.events import ClassificationResult
from repro.core.signature import Signature
from repro.errors import PredictionError
from repro.prediction.composite import (
    CompositePhasePredictor,
    NextPhasePrediction,
)
from repro.prediction.length import PhaseLengthPredictor
from repro.prediction.rle import RLEChangePredictor
from repro.workloads.trace import DEFAULT_INTERVAL_INSTRUCTIONS

if TYPE_CHECKING:  # pragma: no cover - import-time typing only
    from repro.telemetry import Telemetry

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class TrackerReport:
    """Everything the tracker knows at one interval boundary."""

    interval_index: int
    phase_id: int
    is_transition: bool
    phase_changed: bool
    new_phase_allocated: bool
    predicted_next_phase: Optional[int]
    prediction_confident: bool
    predicted_length_class: Optional[int]

    def to_dict(self, legacy: bool = False) -> dict:
        """The report's wire format: plain JSON-safe field/value pairs.

        This is the single serializer every consumer shares — telemetry
        ``interval`` events and the service protocol's interval pushes
        both carry exactly these keys. ``legacy=True`` additionally
        emits the deprecated ``"interval"`` alias of
        ``"interval_index"`` for consumers that predate the rename;
        the alias is off by default and slated for removal.
        """
        payload = asdict(self)
        if legacy:
            payload["interval"] = payload["interval_index"]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TrackerReport":
        """Rebuild a report from its :meth:`to_dict` form."""
        return cls(**{name: payload[name] for name in (
            "interval_index", "phase_id", "is_transition", "phase_changed",
            "new_phase_allocated", "predicted_next_phase",
            "prediction_confident", "predicted_length_class",
        )})


#: Listener signature for phase-change notifications.
PhaseChangeListener = Callable[[TrackerReport], None]


class PhaseTracker:
    """Branch-granularity online phase tracking, prediction included.

    Parameters
    ----------
    config:
        Classifier configuration (paper §5.1 defaults).
    interval_instructions:
        Interval length; boundaries are detected when the committed
        instruction count reaches this (the branch record that crosses
        the boundary is attributed entirely to the completing interval,
        as the hardware's queue drain would).
    change_predictor:
        Phase-change predictor backing next-phase prediction; defaults
        to an RLE-2 table. Pass ``None`` for pure last-value.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry` hub. When given,
        the tracker records counters, stage spans and per-interval
        events into it; when ``None`` (default) no telemetry work
        happens on either the per-branch or the per-interval path.
    """

    def __init__(
        self,
        config: Optional[ClassifierConfig] = None,
        interval_instructions: int = DEFAULT_INTERVAL_INSTRUCTIONS,
        change_predictor: "RLEChangePredictor | None | str" = "default",
        telemetry: "Optional[Telemetry]" = None,
    ) -> None:
        if interval_instructions <= 0:
            raise PredictionError(
                "interval_instructions must be positive, got "
                f"{interval_instructions}"
            )
        self.classifier = PhaseClassifier(
            config or ClassifierConfig.paper_default()
        )
        self.interval_instructions = interval_instructions
        if change_predictor == "default":
            change_predictor = RLEChangePredictor(2)
        self.next_phase = CompositePhasePredictor(change_predictor)
        self.length_predictor = PhaseLengthPredictor()
        self._instructions = 0
        self._boundary_pending = False
        self._interval_index = 0
        self._previous_phase: Optional[int] = None
        self._listeners: List[PhaseChangeListener] = []
        self._branches_in_interval = 0
        self._telemetry = telemetry
        if telemetry is not None:
            self._init_telemetry(telemetry)

    # -- wiring ---------------------------------------------------------------

    def _init_telemetry(self, telemetry: "Telemetry") -> None:
        metrics = telemetry.metrics
        self._m_branches = metrics.counter(
            "repro_tracker_branches_total",
            "Committed branches observed by the tracker",
        )
        self._m_instructions = metrics.counter(
            "repro_tracker_instructions_total",
            "Committed instructions attributed to completed intervals",
        )
        self._m_intervals = metrics.counter(
            "repro_tracker_intervals_total",
            "Intervals classified at boundaries",
        )
        self._m_transitions = metrics.counter(
            "repro_tracker_transition_intervals_total",
            "Intervals classified into the transition phase (ID 0)",
        )
        self._m_phase_changes = metrics.counter(
            "repro_tracker_phase_changes_total",
            "Interval boundaries where the phase ID changed",
        )
        self._m_new_phases = metrics.counter(
            "repro_tracker_new_phases_total",
            "Real phase IDs allocated (entries turning stable)",
        )
        self._m_listener_errors = metrics.counter(
            "repro_tracker_listener_errors_total",
            "Phase-change listener callbacks that raised",
        )
        self._m_table_hits = metrics.counter(
            "repro_signature_table_hits_total",
            "Signatures matched to an existing table entry",
        )
        self._m_table_misses = metrics.counter(
            "repro_signature_table_misses_total",
            "Signatures that inserted a new table entry",
        )
        self._m_table_evictions = metrics.counter(
            "repro_signature_table_evictions_total",
            "LRU evictions from the signature table",
        )
        self._m_table_occupancy = metrics.gauge(
            "repro_signature_table_occupancy",
            "Live signature-table entries",
        )
        self._m_halvings = metrics.counter(
            "repro_classifier_threshold_halvings_total",
            "Adaptive similarity-threshold halvings (paper §4.6)",
        )
        self._m_pred_total = metrics.counter(
            "repro_next_phase_predictions_total",
            "Next-phase predictions evaluated against the actual phase",
        )
        self._m_pred_correct = metrics.counter(
            "repro_next_phase_correct_total",
            "Next-phase predictions that were correct",
        )
        self._m_pred_confident = metrics.counter(
            "repro_next_phase_confident_total",
            "Next-phase predictions issued with confidence",
        )
        self._m_pred_confident_correct = metrics.counter(
            "repro_next_phase_confident_correct_total",
            "Confident next-phase predictions that were correct",
        )
        self._h_branch_ingest = metrics.histogram(
            "repro_branch_ingest_seconds",
            "Mean per-branch observe latency, measured per interval",
            start=1e-8,
            factor=4.0,
            count=14,
        )
        self._evictions_seen = 0
        self._last_prediction: Optional[NextPhasePrediction] = None
        self._observe_window_start: Optional[float] = None
        telemetry.emit(
            "tracker_start",
            interval_instructions=self.interval_instructions,
            config=asdict(self.classifier.config),
            change_predictor=type(
                self.next_phase.change_predictor
            ).__name__ if self.next_phase.change_predictor else None,
        )

    def add_phase_change_listener(
        self, listener: PhaseChangeListener
    ) -> None:
        """Register a callback fired whenever the phase ID changes.

        Listeners are isolated: a raising listener is logged (and
        counted/recorded when telemetry is attached) and the remaining
        listeners still run — interval completion never aborts on a
        listener failure.
        """
        self._listeners.append(listener)

    # -- the streaming interface ------------------------------------------------

    def observe_branch(self, pc: int, instructions: int) -> bool:
        """Record one committed branch; returns True at a boundary.

        When True is returned the caller must call
        :meth:`complete_interval` with the interval's measured CPI
        before observing further branches.
        """
        if self._boundary_pending:
            raise PredictionError(
                "interval boundary reached; call complete_interval(cpi) "
                "before observing more branches"
            )
        self.classifier.accumulator.update(pc, instructions)
        self._instructions += instructions
        self._branches_in_interval += 1
        if self._instructions >= self.interval_instructions:
            self._boundary_pending = True
        return self._boundary_pending

    def observe_batch(
        self, pcs, counts, cpi: float = 1.0
    ) -> List[TrackerReport]:
        """Ingest many committed branches at once, closing every interval
        boundary the batch crosses.

        Behaviourally identical to calling :meth:`observe_branch` per
        record and :meth:`complete_interval` at each boundary (the
        accumulator's saturating adds commute with batching), but the
        per-interval segments are ingested vectorized — this is the
        service's batched-ingest fast path. ``cpi`` is attributed to
        every interval the batch completes. Returns the boundary
        reports, oldest first; the batch never ends boundary-pending.
        """
        if self._boundary_pending:
            raise PredictionError(
                "interval boundary reached; call complete_interval(cpi) "
                "before observing more branches"
            )
        pcs = np.asarray(pcs, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if pcs.shape != counts.shape or pcs.ndim != 1:
            raise PredictionError(
                "pcs and counts must be parallel 1-D arrays: "
                f"{pcs.shape} vs {counts.shape}"
            )
        if pcs.size == 0:
            return []
        if np.any(counts < 0):
            raise ValueError("instruction counts must be non-negative")

        accumulator = self.classifier.accumulator
        prefix = np.cumsum(counts)
        reports: List[TrackerReport] = []
        start = 0
        consumed = 0
        total = pcs.size
        while start < total:
            needed = self.interval_instructions - self._instructions
            boundary = int(
                np.searchsorted(prefix, consumed + needed, side="left")
            )
            if boundary >= total:
                accumulator.update_batch(pcs[start:], counts[start:])
                self._instructions += int(prefix[-1]) - consumed
                self._branches_in_interval += total - start
                break
            accumulator.update_batch(
                pcs[start:boundary + 1], counts[start:boundary + 1]
            )
            self._instructions += int(prefix[boundary]) - consumed
            self._branches_in_interval += boundary + 1 - start
            self._boundary_pending = True
            reports.append(self.complete_interval(cpi))
            consumed = int(prefix[boundary])
            start = boundary + 1
        return reports

    def complete_interval(self, cpi: float) -> TrackerReport:
        """Close the current interval: classify, predict, notify."""
        if not self._boundary_pending and self._instructions == 0:
            raise PredictionError("no interval content to complete")

        telemetry = self._telemetry
        interval_instructions = self._instructions
        interval_branches = self._branches_in_interval

        if telemetry is None:
            signature = self._form_signature()
            result = self.classifier.classify_signature(signature, cpi)
            prediction = self._update_predictors(result.phase_id)
        else:
            now = telemetry.tracer.clock()
            if (
                self._observe_window_start is not None
                and interval_branches > 0
            ):
                self._h_branch_ingest.observe(
                    (now - self._observe_window_start) / interval_branches
                )
            with telemetry.span("interval"):
                with telemetry.span("signature"):
                    signature = self._form_signature()
                with telemetry.span("match"):
                    result = self.classifier.classify_signature(
                        signature, cpi
                    )
                with telemetry.span("predict"):
                    prediction = self._update_predictors(result.phase_id)

        self._instructions = 0
        self._branches_in_interval = 0
        self._boundary_pending = False

        phase_changed = (
            self._previous_phase is not None
            and result.phase_id != self._previous_phase
        )
        report = TrackerReport(
            interval_index=self._interval_index,
            phase_id=result.phase_id,
            is_transition=result.phase_id == TRANSITION_PHASE_ID,
            phase_changed=phase_changed,
            new_phase_allocated=result.new_phase_allocated,
            predicted_next_phase=(
                prediction.phase_id if prediction is not None else None
            ),
            prediction_confident=(
                prediction.confident if prediction is not None else False
            ),
            predicted_length_class=(
                self.length_predictor.outstanding_prediction
            ),
        )
        self._interval_index += 1
        self._previous_phase = result.phase_id

        if telemetry is not None:
            self._record_interval_telemetry(
                telemetry, report, result, prediction, cpi,
                interval_instructions, interval_branches,
            )

        if phase_changed:
            self._notify_listeners(report)
        return report

    # -- lifecycle ------------------------------------------------------------

    def reset(self) -> None:
        """Return to a freshly constructed tracker's state in place.

        Clears the classifier (accumulator, signature table, phase-ID
        allocation), both predictors, interval bookkeeping and the
        registered listeners — without reconstructing any of those
        objects, so a session pool can recycle trackers cheaply. A
        reset tracker produces the same classification stream as a new
        one built with the same configuration. An attached telemetry
        hub stays attached; its cumulative counters are not rewound.
        """
        self.classifier.reset()
        self.next_phase.reset()
        self.length_predictor.reset()
        self._instructions = 0
        self._boundary_pending = False
        self._interval_index = 0
        self._previous_phase = None
        self._branches_in_interval = 0
        self._listeners.clear()
        if self._telemetry is not None:
            self._evictions_seen = 0
            self._last_prediction = None
            self._observe_window_start = None

    # -- snapshot hooks --------------------------------------------------------

    def export_state(self) -> dict:
        """JSON-safe full tracker state (see :mod:`repro.service.snapshot`
        for the versioned envelope and the restore entry point).

        Captures everything replay-relevant: classifier tables and
        mid-interval accumulator contents, both predictors, and the
        interval bookkeeping. Listeners and telemetry are runtime
        wiring and are not part of the state.
        """
        change = self.next_phase.change_predictor
        return {
            "interval_instructions": self.interval_instructions,
            "instructions": self._instructions,
            "boundary_pending": self._boundary_pending,
            "interval_index": self._interval_index,
            "previous_phase": self._previous_phase,
            "branches_in_interval": self._branches_in_interval,
            "classifier": self.classifier.export_state(),
            "change_predictor": (
                {"kind": change.snapshot_kind,
                 "kwargs": change.snapshot_kwargs()}
                if change is not None else None
            ),
            "next_phase": self.next_phase.export_state(),
            "length_predictor": self.length_predictor.export_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Restore state captured by :meth:`export_state` onto a tracker
        constructed with the same configuration and predictor setup."""
        self.interval_instructions = int(state["interval_instructions"])
        self._instructions = int(state["instructions"])
        self._boundary_pending = bool(state["boundary_pending"])
        self._interval_index = int(state["interval_index"])
        self._previous_phase = state["previous_phase"]
        self._branches_in_interval = int(state["branches_in_interval"])
        self.classifier.restore_state(state["classifier"])
        self.next_phase.restore_state(state["next_phase"])
        self.length_predictor.restore_state(state["length_predictor"])
        if self._telemetry is not None:
            # Restored table evictions predate this telemetry session;
            # don't re-count them at the next boundary.
            self._evictions_seen = self.classifier.table.evictions

    # -- interval stages ------------------------------------------------------

    def _form_signature(self) -> Signature:
        """Compress the accumulated counters into the interval signature."""
        accumulator = self.classifier.accumulator
        compressed = self.classifier.bit_selector.compress(
            accumulator.counters, accumulator.average_counter_value
        )
        accumulator.clear()
        return Signature(
            compressed, bits=self.classifier.config.bits_per_counter
        )

    def _update_predictors(
        self, phase_id: int
    ) -> Optional[NextPhasePrediction]:
        """Train predictors on the classified interval; predict the next."""
        self.next_phase.step(phase_id)
        self.length_predictor.advance(phase_id)
        try:
            return self.next_phase.predict()
        except PredictionError:  # pragma: no cover - first interval only
            return None

    # -- telemetry ------------------------------------------------------------

    def _record_interval_telemetry(
        self,
        telemetry: "Telemetry",
        report: TrackerReport,
        result: ClassificationResult,
        prediction: Optional[NextPhasePrediction],
        cpi: float,
        interval_instructions: int,
        interval_branches: int,
    ) -> None:
        self._m_branches.inc(interval_branches)
        self._m_instructions.inc(interval_instructions)
        self._m_intervals.inc()
        if result.matched:
            self._m_table_hits.inc()
        else:
            self._m_table_misses.inc()
        evictions = self.classifier.table.evictions
        if evictions > self._evictions_seen:
            self._m_table_evictions.inc(evictions - self._evictions_seen)
            self._evictions_seen = evictions
        self._m_table_occupancy.set(len(self.classifier.table))
        if result.threshold_tightened:
            self._m_halvings.inc()
        if result.new_phase_allocated:
            self._m_new_phases.inc()
        if report.is_transition:
            self._m_transitions.inc()
        if report.phase_changed:
            self._m_phase_changes.inc()

        # Score the prediction made at the previous boundary against
        # the phase this interval actually landed in.
        evaluated = self._last_prediction
        if evaluated is not None:
            correct = evaluated.phase_id == report.phase_id
            self._m_pred_total.inc()
            if correct:
                self._m_pred_correct.inc()
            if evaluated.confident:
                self._m_pred_confident.inc()
                if correct:
                    self._m_pred_confident_correct.inc()
        self._last_prediction = prediction

        telemetry.emit(
            "interval",
            **report.to_dict(),
            table_occupancy=len(self.classifier.table),
            threshold_halvings=int(self._m_halvings.value),
            cpi=cpi,
            branches=interval_branches,
        )
        self._observe_window_start = telemetry.tracer.clock()

    # -- listeners ------------------------------------------------------------

    def _notify_listeners(self, report: TrackerReport) -> None:
        for listener in self._listeners:
            try:
                listener(report)
            except Exception as error:  # noqa: BLE001 - isolation boundary
                logger.exception(
                    "phase-change listener %r raised at interval %d; "
                    "continuing",
                    listener,
                    report.interval_index,
                )
                if self._telemetry is not None:
                    self._m_listener_errors.inc()
                    self._telemetry.emit(
                        "listener_error",
                        interval=report.interval_index,
                        phase_id=report.phase_id,
                        listener=repr(listener),
                        error=repr(error),
                    )

    # -- inspection ---------------------------------------------------------------

    @property
    def intervals_observed(self) -> int:
        return self._interval_index

    @property
    def current_phase(self) -> Optional[int]:
        """Phase of the most recently completed interval."""
        return self._previous_phase

    @property
    def instructions_into_interval(self) -> int:
        """Committed instructions since the last boundary."""
        return self._instructions

    @property
    def telemetry(self) -> "Optional[Telemetry]":
        """The attached telemetry hub, if any."""
        return self._telemetry
