"""Compressed interval signatures.

A :class:`Signature` is the compressed per-interval code vector that is
stored in and compared against the signature table: one small integer
per accumulator counter (6 bits each by default). Signatures are value
objects — hashing and equality are defined over the vector contents so
they behave well in tests and caches.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError


class Signature:
    """An immutable compressed code signature.

    Parameters
    ----------
    values:
        Compressed counter values (non-negative small integers).
    bits:
        Width each value was compressed to (for range validation).
    """

    __slots__ = ("_values", "bits", "_total")

    def __init__(self, values: Iterable[int], bits: int) -> None:
        array = np.asarray(list(values) if not isinstance(
            values, np.ndarray) else values, dtype=np.int64)
        if array.ndim != 1 or array.size == 0:
            raise ConfigurationError(
                "signature values must be a non-empty 1-D vector"
            )
        if bits < 1:
            raise ConfigurationError(f"bits must be >= 1, got {bits}")
        if np.any(array < 0) or np.any(array > (1 << bits) - 1):
            raise ConfigurationError(
                f"signature values out of range for {bits} bits"
            )
        array.setflags(write=False)
        self._values = array
        self.bits = bits
        self._total = int(array.sum())

    @property
    def values(self) -> np.ndarray:
        """The (read-only) compressed counter vector."""
        return self._values

    @property
    def dimensions(self) -> int:
        return int(self._values.shape[0])

    @property
    def total(self) -> int:
        """Sum of the vector's components (used for distance scaling)."""
        return self._total

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Signature):
            return NotImplemented
        return self.bits == other.bits and np.array_equal(
            self._values, other._values
        )

    def __hash__(self) -> int:
        return hash((self.bits, self._values.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = ", ".join(str(v) for v in self._values[:8])
        ellipsis = ", ..." if self.dimensions > 8 else ""
        return f"Signature([{head}{ellipsis}], bits={self.bits})"
