"""Configuration for the phase classifier.

:class:`ClassifierConfig` captures every knob the paper's experiments
vary, with defaults matching the paper's final configuration (§5.1):
16 accumulators, 6 bits per counter, 32 signature-table entries, 25%
similarity threshold, min-count 8, most-similar matching, and a 25%
performance-deviation threshold when the adaptive classifier is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

#: Phase ID reserved for the transition phase (paper §4.4: "The
#: transition phase is represented with phase ID zero").
TRANSITION_PHASE_ID = 0

#: Width of the accumulator counters (paper §4.2: 24 bits never overflow
#: with 10M-instruction intervals).
ACCUMULATOR_BITS = 24

_MATCH_POLICIES = ("most_similar", "first")
_BIT_SELECTORS = ("dynamic", "static")


@dataclass(frozen=True)
class ClassifierConfig:
    """All knobs of the phase classification architecture.

    Parameters
    ----------
    num_counters:
        Accumulator/signature dimensions (power of two). The paper's
        baseline (Fig. 2) uses 32; §4.3 onward uses 16.
    bits_per_counter:
        Compressed-signature bits kept per counter (§4.2: fewer than 6
        classify poorly, more than 8 does not help).
    table_entries:
        Signature-table capacity with LRU replacement; ``None`` models
        the infinite table of the prior work.
    similarity_threshold:
        Maximum relative signature difference for a match, as a
        fraction (0.125 and 0.25 in the paper). Per-entry thresholds
        are initialized to this value.
    min_count_threshold:
        Times a signature must be classified into an entry before the
        entry is granted a real phase ID; intervals classified earlier
        go to the transition phase. 0 disables the transition phase
        (the prior-work baseline).
    match_policy:
        ``"most_similar"`` (this paper) or ``"first"`` (prior work) when
        several table entries satisfy the threshold.
    bit_selector:
        ``"dynamic"`` (this paper, §4.2) or ``"static"`` (prior work:
        a fixed bit window).
    static_low_bit:
        Lowest counter bit copied when ``bit_selector == "static"``
        (prior work used bits 14..21 of each 24-bit counter).
    perf_dev_threshold:
        Enables the adaptive classifier (§4.6) when not ``None``: if an
        interval's CPI deviates from its phase's running-average CPI by
        more than this fraction, the entry's similarity threshold is
        halved and its CPI statistics are cleared.
    """

    num_counters: int = 16
    bits_per_counter: int = 6
    table_entries: Optional[int] = 32
    similarity_threshold: float = 0.25
    min_count_threshold: int = 8
    match_policy: str = "most_similar"
    bit_selector: str = "dynamic"
    static_low_bit: int = 14
    perf_dev_threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_counters <= 0 or self.num_counters & (
            self.num_counters - 1
        ):
            raise ConfigurationError(
                "num_counters must be a positive power of two, got "
                f"{self.num_counters}"
            )
        if not 1 <= self.bits_per_counter <= ACCUMULATOR_BITS:
            raise ConfigurationError(
                f"bits_per_counter must be in [1, {ACCUMULATOR_BITS}], got "
                f"{self.bits_per_counter}"
            )
        if self.table_entries is not None and self.table_entries <= 0:
            raise ConfigurationError(
                "table_entries must be positive or None (infinite), got "
                f"{self.table_entries}"
            )
        if not 0.0 < self.similarity_threshold <= 1.0:
            raise ConfigurationError(
                "similarity_threshold must be in (0, 1], got "
                f"{self.similarity_threshold}"
            )
        if self.min_count_threshold < 0:
            raise ConfigurationError(
                "min_count_threshold must be non-negative, got "
                f"{self.min_count_threshold}"
            )
        if self.match_policy not in _MATCH_POLICIES:
            raise ConfigurationError(
                f"match_policy must be one of {_MATCH_POLICIES}, got "
                f"{self.match_policy!r}"
            )
        if self.bit_selector not in _BIT_SELECTORS:
            raise ConfigurationError(
                f"bit_selector must be one of {_BIT_SELECTORS}, got "
                f"{self.bit_selector!r}"
            )
        if not 0 <= self.static_low_bit < ACCUMULATOR_BITS:
            raise ConfigurationError(
                f"static_low_bit must be in [0, {ACCUMULATOR_BITS}), got "
                f"{self.static_low_bit}"
            )
        if self.static_low_bit + self.bits_per_counter > ACCUMULATOR_BITS:
            raise ConfigurationError(
                "static bit window exceeds the accumulator width: "
                f"low bit {self.static_low_bit} + {self.bits_per_counter} "
                f"bits > {ACCUMULATOR_BITS}"
            )
        if self.perf_dev_threshold is not None and not (
            0.0 < self.perf_dev_threshold <= 10.0
        ):
            raise ConfigurationError(
                "perf_dev_threshold must be in (0, 10] or None, got "
                f"{self.perf_dev_threshold}"
            )

    @property
    def adaptive(self) -> bool:
        """Whether the adaptive (dynamic-threshold) classifier is active."""
        return self.perf_dev_threshold is not None

    @staticmethod
    def paper_baseline() -> "ClassifierConfig":
        """The Fig. 2 prior-work baseline: 32 counters, 32 entries, 12.5%."""
        return ClassifierConfig(
            num_counters=32,
            table_entries=32,
            similarity_threshold=0.125,
            min_count_threshold=0,
            match_policy="first",
        )

    @staticmethod
    def paper_default() -> "ClassifierConfig":
        """The §5.1 configuration used for all prediction experiments."""
        return ClassifierConfig(
            num_counters=16,
            bits_per_counter=6,
            table_entries=32,
            similarity_threshold=0.25,
            min_count_threshold=8,
            perf_dev_threshold=0.25,
        )
