"""Bit selection: compressing 24-bit accumulators into small signatures.

Only a few bits of each accumulator are stored in the signature table
(paper §4.2). Two strategies are implemented:

- :class:`StaticBitSelector` — the prior work's approach: a fixed bit
  window chosen by design exploration (bits 14..21 of each 24-bit
  counter for 32 counters at 10M-instruction intervals).
- :class:`DynamicBitSelector` — this paper's approach: compute the
  average counter value for the interval, keep two bits above the bits
  needed to represent the average (so values up to 4x the average are
  representable), and saturate the selected field to all-ones when a
  more significant bit is set.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError
from repro.core.config import ACCUMULATOR_BITS


class BitSelector(ABC):
    """Strategy interface: compress raw counters into signature values."""

    def __init__(self, bits: int) -> None:
        if not 1 <= bits <= ACCUMULATOR_BITS:
            raise ConfigurationError(
                f"bits must be in [1, {ACCUMULATOR_BITS}], got {bits}"
            )
        self.bits = bits

    @property
    def max_value(self) -> int:
        """Largest representable compressed value (the saturation value)."""
        return (1 << self.bits) - 1

    @abstractmethod
    def shift_for(self, average_counter_value: int) -> int:
        """Return the right-shift applied before masking."""

    def compress(
        self, counters: np.ndarray, average_counter_value: int
    ) -> np.ndarray:
        """Compress raw counters into ``bits``-wide signature values.

        Any counter with a set bit above the selected window saturates
        to the maximum representable value (paper §4.2: "we set all of
        the selected bits to one").
        """
        counters = np.asarray(counters, dtype=np.int64)
        if np.any(counters < 0):
            raise ValueError("counter values must be non-negative")
        shift = self.shift_for(average_counter_value)
        selected = (counters >> shift) & self.max_value
        overflowed = (counters >> (shift + self.bits)) > 0
        selected = np.where(overflowed, self.max_value, selected)
        return selected.astype(np.int64)


class StaticBitSelector(BitSelector):
    """Fixed bit window (the prior work's statically chosen bits).

    ``low_bit`` is the least significant bit copied; the window is
    ``[low_bit, low_bit + bits)``. The prior work used bits 14..21,
    i.e. ``low_bit=14, bits=8``.
    """

    def __init__(self, bits: int = 8, low_bit: int = 14) -> None:
        super().__init__(bits)
        if not 0 <= low_bit < ACCUMULATOR_BITS:
            raise ConfigurationError(
                f"low_bit must be in [0, {ACCUMULATOR_BITS}), got {low_bit}"
            )
        if low_bit + bits > ACCUMULATOR_BITS:
            raise ConfigurationError(
                f"window [{low_bit}, {low_bit + bits}) exceeds the "
                f"{ACCUMULATOR_BITS}-bit accumulator"
            )
        self.low_bit = low_bit

    def shift_for(self, average_counter_value: int) -> int:
        return self.low_bit


class DynamicBitSelector(BitSelector):
    """Average-driven bit window (this paper's approach, §4.2).

    The number of bits needed to represent the average counter value is
    computed per interval; two guard bits are kept above it so the
    window represents values up to four times the average. The top of
    the selected window sits at ``bit_length(average) + 2``; the window
    is the ``bits`` most significant bits below that point.
    """

    def __init__(self, bits: int = 6) -> None:
        super().__init__(bits)

    def shift_for(self, average_counter_value: int) -> int:
        if average_counter_value < 0:
            raise ValueError(
                "average_counter_value must be non-negative, got "
                f"{average_counter_value}"
            )
        window_top = int(average_counter_value).bit_length() + 2
        return max(window_top - self.bits, 0)
