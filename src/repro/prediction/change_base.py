"""Shared machinery for table-based phase-change predictors.

The Markov-N and RLE-N predictors differ only in how they index their
prediction table; everything else — entry variants (single outcome,
Last-4 unique outcomes, Top-N most frequent outcomes), the per-entry
1-bit confidence counter, and the paper's table update rules (§5.2.3) —
is shared and lives here.

Entry variants (paper §5.2.2, §6.1):

- ``single`` — the entry stores the most recent outcome of the change.
- ``last4`` — the entry stores the last 4 *unique* outcomes; a
  prediction counts as correct when the actual outcome is any of them.
- ``top1`` / ``top4`` — the entry tracks outcome frequencies and
  predicts the 1 (or 4) most frequent outcome(s).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple

from repro.errors import ConfigurationError, PredictionError
from repro.prediction.assoc_table import AssociativeTable, tuple_key
from repro.prediction.counters import ConfidenceCounter
from repro.prediction.protocol import PhaseObservation, _deprecated_observe

ENTRY_KINDS = ("single", "last4", "top1", "top4")


class ChangeEntry:
    """One phase-change table entry: outcome store + confidence bit."""

    __slots__ = ("kind", "_last", "_recent", "_freq", "confidence")

    def __init__(self, kind: str, confidence_bits: int = 1) -> None:
        if kind not in ENTRY_KINDS:
            raise ConfigurationError(
                f"kind must be one of {ENTRY_KINDS}, got {kind!r}"
            )
        self.kind = kind
        self._last: Optional[int] = None
        self._recent: List[int] = []  # last-4 unique outcomes, newest last
        self._freq: Counter = Counter()
        self.confidence = ConfidenceCounter(confidence_bits)

    # -- outcome bookkeeping ------------------------------------------------

    def record_outcome(self, outcome: int) -> None:
        """Fold one observed change outcome into the entry."""
        self._last = outcome
        if outcome in self._recent:
            self._recent.remove(outcome)
        self._recent.append(outcome)
        self._recent = self._recent[-4:]
        self._freq[outcome] += 1

    def predicted_outcomes(self) -> Tuple[int, ...]:
        """The outcome set this entry currently predicts.

        The first element is the primary prediction (used when a single
        phase ID must be produced); for ``last4``/``top4`` a match on
        any element counts as correct.
        """
        if self._last is None:
            return ()
        if self.kind == "single":
            return (self._last,)
        if self.kind == "last4":
            return tuple(reversed(self._recent))
        count = 1 if self.kind == "top1" else 4
        return tuple(
            outcome for outcome, _ in self._freq.most_common(count)
        )

    # -- snapshot hooks -------------------------------------------------------

    def export_state(self) -> dict:
        """JSON-safe entry state (outcome stores + confidence value)."""
        return {
            "last": self._last,
            "recent": list(self._recent),
            "freq": list(self._freq.items()),
            "confidence": self.confidence.value,
        }

    @classmethod
    def from_state(
        cls, state: dict, kind: str, confidence_bits: int
    ) -> "ChangeEntry":
        """Rebuild an entry from :meth:`export_state` output.

        ``freq`` pairs are kept in the counter's insertion order, which
        is what breaks ``most_common`` frequency ties — restoring in
        the same order keeps top-N predictions byte-identical.
        """
        entry = cls(kind, confidence_bits)
        entry._last = state["last"]
        entry._recent = [int(v) for v in state["recent"]]
        entry._freq = Counter(
            {int(outcome): int(count) for outcome, count in state["freq"]}
        )
        entry.confidence.reset(int(state["confidence"]))
        return entry


@dataclass(frozen=True)
class ChangePrediction:
    """A phase-change table lookup result.

    ``outcomes`` is empty on a tag miss. ``confident`` reflects the
    entry's confidence counter (always True when the predictor runs
    without table confidence).
    """

    outcomes: Tuple[int, ...]
    confident: bool
    hit: bool

    @property
    def primary(self) -> Optional[int]:
        """The single phase ID predicted, or ``None`` on a miss."""
        return self.outcomes[0] if self.outcomes else None

    def matches(self, actual: int) -> bool:
        """Whether ``actual`` is within the predicted outcome set."""
        return actual in self.outcomes


class ChangePredictorBase:
    """Phase-change predictor over an associative table.

    Subclasses define the table key via :meth:`change_key` (used when a
    run has just completed) and :meth:`running_key` (used mid-run for
    next-interval prediction). The stream of classified phase IDs is
    fed through :meth:`observe`.

    Parameters
    ----------
    entries / assoc:
        Prediction table geometry (32 entries, 4-way in the paper).
    entry_kind:
        Outcome-store variant; see module docstring.
    use_confidence:
        Gate predictions on the per-entry 1-bit confidence counter.
    history_depth:
        Bound on retained run history (must cover the key depth).
    """

    def __init__(
        self,
        entries: int = 32,
        assoc: int = 4,
        entry_kind: str = "single",
        use_confidence: bool = True,
        confidence_bits: int = 1,
        history_depth: int = 8,
    ) -> None:
        if history_depth < 1:
            raise ConfigurationError(
                f"history_depth must be >= 1, got {history_depth}"
            )
        self.table: AssociativeTable[ChangeEntry] = AssociativeTable(
            entries=entries, assoc=assoc
        )
        self.entry_kind = entry_kind
        if entry_kind not in ENTRY_KINDS:
            raise ConfigurationError(
                f"entry_kind must be one of {ENTRY_KINDS}, got {entry_kind!r}"
            )
        self.use_confidence = use_confidence
        self.confidence_bits = confidence_bits
        self.history_depth = history_depth
        # Completed runs, oldest first: (phase_id, run_length).
        self._runs: List[Tuple[int, int]] = []
        self._current_phase: Optional[int] = None
        self._current_run = 0

    # -- key construction (subclass responsibility) -------------------------

    def change_key(self) -> Optional[Hashable]:
        """Key for the change that ends the just-completed run.

        Called immediately after the completed run has been pushed to
        history. ``None`` when history is too shallow to form a key.
        """
        raise NotImplementedError

    def running_key(self) -> Optional[Hashable]:
        """Key for next-interval prediction mid-run (ongoing run
        included with its length so far)."""
        raise NotImplementedError

    # -- history ------------------------------------------------------------

    @property
    def current_phase(self) -> Optional[int]:
        return self._current_phase

    @property
    def current_run_length(self) -> int:
        return self._current_run

    @property
    def completed_runs(self) -> List[Tuple[int, int]]:
        """Retained completed (phase, length) runs, oldest first."""
        return list(self._runs)

    def advance(self, phase_id: int) -> PhaseObservation:
        """Advance history with one classified interval.

        ``completed_run`` carries the completed (phase, run length)
        pair when this interval *changes* phase (i.e. ends a run). The
        caller is expected to have consumed predictions *before* calling
        this, and to train the table via :meth:`train_change` /
        :meth:`note_same_phase` per the §5.2.3 update rules.
        """
        if self._current_phase is None:
            self._current_phase = phase_id
            self._current_run = 1
            return PhaseObservation(phase_id=phase_id, phase_changed=False)
        if phase_id == self._current_phase:
            self._current_run += 1
            return PhaseObservation(phase_id=phase_id, phase_changed=False)
        completed = (self._current_phase, self._current_run)
        self._runs.append(completed)
        self._runs = self._runs[-self.history_depth:]
        self._current_phase = phase_id
        self._current_run = 1
        return PhaseObservation(
            phase_id=phase_id, phase_changed=True, completed_run=completed
        )

    def observe(self, phase_id: int) -> Optional[Tuple[int, int]]:
        """Deprecated legacy spelling of :meth:`advance`.

        Returns the completed (phase, run length) pair on a phase
        change, else ``None`` — the old contract. Use :meth:`advance`.
        """
        _deprecated_observe(type(self).__name__)
        return self.advance(phase_id).completed_run

    # -- prediction -----------------------------------------------------------

    def _lookup(self, key: Optional[Hashable]) -> ChangePrediction:
        if key is None:
            return ChangePrediction(outcomes=(), confident=False, hit=False)
        entry = self.table.lookup(key)
        if entry is None:
            return ChangePrediction(outcomes=(), confident=False, hit=False)
        confident = entry.confidence.confident if self.use_confidence else True
        return ChangePrediction(
            outcomes=entry.predicted_outcomes(),
            confident=confident,
            hit=True,
        )

    def predict_change(self) -> ChangePrediction:
        """Predict the outcome of the change ending the completed run.

        Valid immediately after :meth:`observe` returned a completed
        run — i.e. at a phase-change point, keyed by the completed run.
        """
        return self._lookup(self.change_key())

    def predict_next(self) -> ChangePrediction:
        """Predict mid-run whether/where the next interval changes phase."""
        return self._lookup(self.running_key())

    # -- training ---------------------------------------------------------------

    def train_change(self, key: Optional[Hashable], actual: int) -> None:
        """Train the table with an observed change outcome.

        Follows §5.2.3: entries are only inserted on a phase change; an
        existing entry's confidence is trained against its *previous*
        prediction before the new outcome is recorded.
        """
        if key is None:
            return
        entry = self.table.lookup(key)
        if entry is None:
            entry = ChangeEntry(self.entry_kind, self.confidence_bits)
            entry.record_outcome(actual)
            self.table.insert(key, entry)
            return
        was_correct = actual in entry.predicted_outcomes()
        entry.confidence.record(was_correct)
        entry.record_outcome(actual)

    def note_same_phase(self, key: Optional[Hashable]) -> None:
        """§5.2.3 removal rule: a tag hit predicted a change, but the
        phase did not change — drop the entry, since last-value would
        have been correct."""
        if key is None:
            return
        self.table.remove(key)

    # -- lifecycle / snapshot hooks -------------------------------------------

    def reset(self) -> None:
        """Forget all history and table contents, keeping configuration
        (geometry, entry kind, confidence) in place."""
        self.table.clear()
        self._runs.clear()
        self._current_phase = None
        self._current_run = 0

    def snapshot_kwargs(self) -> dict:
        """Constructor kwargs identifying this predictor for snapshots.

        Subclasses add their indexing parameter (``depth`` / ``order``)
        on top of the shared geometry captured here.
        """
        return {
            "entries": self.table.entries,
            "assoc": self.table.assoc,
            "entry_kind": self.entry_kind,
            "use_confidence": self.use_confidence,
        }

    def export_state(self) -> dict:
        """JSON-safe predictor state (history + prediction table)."""
        return {
            "runs": [[phase, length] for phase, length in self._runs],
            "current_phase": self._current_phase,
            "current_run": self._current_run,
            "table": self.table.export_state(
                lambda entry: entry.export_state()
            ),
        }

    def restore_state(self, state: dict) -> None:
        """Restore state captured by :meth:`export_state` onto a
        predictor constructed with the same configuration."""
        self._runs = [
            (int(phase), int(length)) for phase, length in state["runs"]
        ]
        self._current_phase = state["current_phase"]
        self._current_run = int(state["current_run"])
        self.table.restore_state(
            state["table"],
            lambda raw: ChangeEntry.from_state(
                raw, self.entry_kind, self.confidence_bits
            ),
            tuple_key,
        )
