"""Phase-change prediction evaluation (paper §6.1, Figure 8).

Walks a classified phase-ID stream and, at every phase change, asks the
predictor for the outcome it would have predicted, categorizing the
result into Figure 8's stacked segments: confident correct, unconfident
correct, tag miss, unconfident incorrect, confident incorrect. The
entry is then trained with the actual outcome.

Perfect (oracle) predictors are evaluated with the same function; their
"tag miss" category is empty and cold-start transitions count as
incorrect, exactly as in the paper's Perfect Markov bars.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Union

from repro.errors import PredictionError
from repro.prediction.change_base import ChangePredictorBase
from repro.prediction.perfect import PerfectMarkovPredictor

#: Figure 8 stacked-bar categories, in display order.
CHANGE_CATEGORIES = (
    "conf_correct",
    "unconf_correct",
    "tag_miss",
    "unconf_incorrect",
    "conf_incorrect",
)


@dataclass
class ChangePredictionStats:
    """Outcome counts over the phase *changes* of a run."""

    counts: Dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in CHANGE_CATEGORIES}
    )

    def record(self, category: str) -> None:
        if category not in self.counts:
            raise PredictionError(f"unknown category {category!r}")
        self.counts[category] += 1

    @property
    def total_changes(self) -> int:
        return sum(self.counts.values())

    @property
    def correct(self) -> int:
        return self.counts["conf_correct"] + self.counts["unconf_correct"]

    @property
    def accuracy(self) -> float:
        """Correctly predicted changes over all changes (the paper's
        phase-change coverage figure)."""
        total = self.total_changes
        return self.correct / total if total else 0.0

    @property
    def confident_coverage(self) -> float:
        """Confident-and-correct changes over all changes."""
        total = self.total_changes
        return self.counts["conf_correct"] / total if total else 0.0

    @property
    def misprediction_rate(self) -> float:
        """Confidently wrong changes over all changes."""
        total = self.total_changes
        return self.counts["conf_incorrect"] / total if total else 0.0

    def fractions(self) -> Dict[str, float]:
        total = self.total_changes or 1
        return {k: v / total for k, v in self.counts.items()}


Predictor = Union[ChangePredictorBase, PerfectMarkovPredictor]


def evaluate_change_predictor(
    phase_ids: Iterable[int], predictor: Predictor
) -> ChangePredictionStats:
    """Drive ``predictor`` over a classified phase stream (Figure 8).

    Returns per-change outcome statistics. The stream is consumed
    interval by interval; only phase-change points contribute counts.
    """
    stats = ChangePredictionStats()
    if isinstance(predictor, PerfectMarkovPredictor):
        for phase_id in phase_ids:
            observation = predictor.advance(int(phase_id))
            if not observation.phase_changed:
                continue
            stats.record(
                "conf_correct"
                if observation.oracle_correct
                else "conf_incorrect"
            )
        return stats

    for phase_id in phase_ids:
        phase_id = int(phase_id)
        if not predictor.advance(phase_id).phase_changed:
            continue
        key = predictor.change_key()
        prediction = predictor.predict_change()
        if not prediction.hit:
            stats.record("tag_miss")
        else:
            correct = prediction.matches(phase_id)
            prefix = "conf" if prediction.confident else "unconf"
            suffix = "correct" if correct else "incorrect"
            stats.record(f"{prefix}_{suffix}")
        predictor.train_change(key, phase_id)
    return stats
