"""Phase length prediction (paper §6.2, Figure 9).

Predicting the exact length of the next phase is hard; the paper groups
run lengths into four classes and predicts the class:

- class 0: 1-15 intervals      (10M-150M instructions)
- class 1: 16-127 intervals    (160M-1.27B instructions)
- class 2: 128-1023 intervals  (1.28B-10.2B instructions)
- class 3: >= 1024 intervals   (> 10.24B instructions)

The predictor reuses the RLE-2 indexing scheme (32-entry, 4-way) but
each entry stores a run-length class plus a hysteresis latch: a new
class replaces the stored prediction only after being observed twice in
a row, filtering noise in the phase lengths of complex programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.prediction.assoc_table import AssociativeTable, tuple_key
from repro.prediction.protocol import PhaseObservation, _deprecated_observe

#: Inclusive lower bounds of the four run-length classes (in intervals).
LENGTH_CLASS_BOUNDS: Tuple[int, ...] = (1, 16, 128, 1024)

#: Human-readable labels, matching the paper's Figure 9 legend.
LENGTH_CLASS_LABELS: Tuple[str, ...] = ("1-15", "16-127", "128-1023", "1024-")


def length_class(run_length: int) -> int:
    """Classify a phase run length (in intervals) into its class index."""
    if run_length < 1:
        raise ConfigurationError(
            f"run_length must be >= 1, got {run_length}"
        )
    for index in range(len(LENGTH_CLASS_BOUNDS) - 1, -1, -1):
        if run_length >= LENGTH_CLASS_BOUNDS[index]:
            return index
    raise AssertionError("unreachable: bounds start at 1")


@dataclass
class _LengthEntry:
    """Predicted class + two-in-a-row hysteresis latch."""

    predicted_class: int
    pending_class: Optional[int] = None

    def train(self, observed_class: int) -> None:
        """Update with hysteresis: a differing class must repeat twice."""
        if observed_class == self.predicted_class:
            self.pending_class = None
            return
        if self.pending_class == observed_class:
            self.predicted_class = observed_class
            self.pending_class = None
        else:
            self.pending_class = observed_class


@dataclass
class LengthPredictionStats:
    """Per-change outcome counts for length-class prediction."""

    predictions: int = 0
    correct: int = 0
    tag_misses: int = 0
    confusion: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def record(self, predicted: Optional[int], actual: int,
               fallback_class: int = 0) -> None:
        """Score one completed phase run.

        A tag miss falls back to ``fallback_class`` — the predictor
        always issues a prediction, as in Figure 9. The caller passes
        the most common class observed so far (a static "phases are
        short" prediction that adapts to the program; §6.2.1 notes that
        statically predicting a small phase performs well for most
        programs).
        """
        self.predictions += 1
        if predicted is None:
            self.tag_misses += 1
            predicted = fallback_class
        if predicted == actual:
            self.correct += 1
        self.confusion[(predicted, actual)] = (
            self.confusion.get((predicted, actual), 0) + 1
        )

    @property
    def misprediction_rate(self) -> float:
        """Wrong class predictions over all phase changes."""
        if self.predictions == 0:
            return 0.0
        return 1.0 - self.correct / self.predictions

    def confusion_table(self) -> str:
        """Render the predicted-vs-actual class confusion matrix."""
        size = len(LENGTH_CLASS_LABELS)
        width = max(len(label) for label in LENGTH_CLASS_LABELS) + 2
        header = "pred \\ actual".ljust(width) + "".join(
            label.rjust(width) for label in LENGTH_CLASS_LABELS
        )
        lines = [header]
        for predicted in range(size):
            cells = [
                str(self.confusion.get((predicted, actual), 0)).rjust(width)
                for actual in range(size)
            ]
            lines.append(
                LENGTH_CLASS_LABELS[predicted].ljust(width) + "".join(cells)
            )
        return "\n".join(lines)


class PhaseLengthPredictor:
    """RLE-2-indexed run-length-class predictor with hysteresis.

    Drive with :meth:`observe` per classified interval; statistics
    accumulate in :attr:`stats`. The predictor predicts, at each phase
    change, the length class of the phase being *entered*; the
    prediction is scored once that phase's run completes.
    """

    def __init__(
        self, depth: int = 2, entries: int = 32, assoc: int = 4
    ) -> None:
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        self.depth = depth
        self.table: AssociativeTable[_LengthEntry] = AssociativeTable(
            entries=entries, assoc=assoc
        )
        self.stats = LengthPredictionStats()
        self._class_histogram = [0] * len(LENGTH_CLASS_BOUNDS)
        self._runs: List[Tuple[int, int]] = []
        self._current_phase: Optional[int] = None
        self._current_run = 0
        # Prediction outstanding for the currently running phase:
        # (key, predicted_class or None on tag miss).
        self._outstanding: Optional[Tuple[Hashable, Optional[int]]] = None

    def _key(self) -> Optional[Hashable]:
        """RLE-depth key over the completed runs (newest last)."""
        if len(self._runs) < self.depth:
            return None
        return ("rle-len", self.depth, tuple(self._runs[-self.depth:]))

    @property
    def outstanding_prediction(self) -> Optional[int]:
        """Predicted length class of the phase currently running.

        ``None`` when no prediction is outstanding (start of the run,
        shallow history) or the last lookup was a tag miss. Consumers
        like a DVS policy read this right after a phase change.
        """
        if self._outstanding is None:
            return None
        return self._outstanding[1]

    def advance(self, phase_id: int) -> PhaseObservation:
        """Feed one classified interval."""
        if self._current_phase is None:
            self._current_phase = phase_id
            self._current_run = 1
            return PhaseObservation(phase_id=phase_id, phase_changed=False)
        if phase_id == self._current_phase:
            self._current_run += 1
            return PhaseObservation(phase_id=phase_id, phase_changed=False)

        # The current run just completed: score the outstanding
        # prediction for it and train the entry it came from.
        completed = (self._current_phase, self._current_run)
        actual_class = length_class(self._current_run)
        if self._outstanding is not None:
            key, predicted = self._outstanding
            fallback = max(
                range(len(self._class_histogram)),
                key=self._class_histogram.__getitem__,
            )
            self.stats.record(predicted, actual_class,
                              fallback_class=fallback)
            entry = self.table.lookup(key)
            if entry is None:
                self.table.insert(key, _LengthEntry(actual_class))
            else:
                entry.train(actual_class)
        self._class_histogram[actual_class] += 1
        self._runs.append(completed)
        self._runs = self._runs[-(self.depth + 2):]

        # Predict the length class of the phase we are entering, keyed
        # by the RLE history that ends with the completed run.
        key = self._key()
        if key is not None:
            entry = self.table.peek(key)
            predicted = entry.predicted_class if entry is not None else None
            self._outstanding = (key, predicted)
        else:
            self._outstanding = None

        self._current_phase = phase_id
        self._current_run = 1
        return PhaseObservation(
            phase_id=phase_id, phase_changed=True, completed_run=completed
        )

    def observe(self, phase_id: int) -> None:
        """Deprecated legacy spelling of :meth:`advance` (returned
        nothing). Use :meth:`advance`."""
        _deprecated_observe(type(self).__name__)
        self.advance(phase_id)

    # -- lifecycle / snapshot hooks -------------------------------------------

    def reset(self) -> None:
        """Forget all history, table contents and statistics, keeping
        the depth/geometry configuration."""
        self.table.clear()
        self.stats = LengthPredictionStats()
        self._class_histogram = [0] * len(LENGTH_CLASS_BOUNDS)
        self._runs.clear()
        self._current_phase = None
        self._current_run = 0
        self._outstanding = None

    def export_state(self) -> dict:
        """JSON-safe full predictor state."""
        return {
            "table": self.table.export_state(
                lambda entry: [entry.predicted_class, entry.pending_class]
            ),
            "stats": {
                "predictions": self.stats.predictions,
                "correct": self.stats.correct,
                "tag_misses": self.stats.tag_misses,
                "confusion": [
                    [predicted, actual, count]
                    for (predicted, actual), count
                    in self.stats.confusion.items()
                ],
            },
            "class_histogram": list(self._class_histogram),
            "runs": [[phase, length] for phase, length in self._runs],
            "current_phase": self._current_phase,
            "current_run": self._current_run,
            "outstanding": (
                [self._outstanding[0], self._outstanding[1]]
                if self._outstanding is not None
                else None
            ),
        }

    def restore_state(self, state: dict) -> None:
        """Restore state captured by :meth:`export_state` onto a
        predictor constructed with the same configuration."""
        self.table.restore_state(
            state["table"],
            lambda raw: _LengthEntry(
                predicted_class=int(raw[0]),
                pending_class=raw[1] if raw[1] is None else int(raw[1]),
            ),
            tuple_key,
        )
        stats = state["stats"]
        self.stats = LengthPredictionStats(
            predictions=int(stats["predictions"]),
            correct=int(stats["correct"]),
            tag_misses=int(stats["tag_misses"]),
            confusion={
                (int(predicted), int(actual)): int(count)
                for predicted, actual, count in stats["confusion"]
            },
        )
        self._class_histogram = [int(v) for v in state["class_histogram"]]
        self._runs = [
            (int(phase), int(length)) for phase, length in state["runs"]
        ]
        self._current_phase = state["current_phase"]
        self._current_run = int(state["current_run"])
        outstanding = state["outstanding"]
        self._outstanding = (
            (tuple_key(outstanding[0]),
             None if outstanding[1] is None else int(outstanding[1]))
            if outstanding is not None
            else None
        )
