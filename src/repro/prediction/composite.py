"""The combined next-phase predictor (paper §5.1-§5.2, Figure 7).

Architecture: a phase-change predictor (Markov or RLE table) backed by
a last-value predictor. Since incorrectly predicting a phase change is
worse than missing one, only *confident* phase-change table results are
used; otherwise the prediction falls back to last value. Two confidence
sets exist: a 1-bit counter per change-table entry, and a 3-bit
counter per phase for last-value predictions.

Update rules follow §5.2.3: the change table trains only on phase
changes or tag hits; a tag hit that fired while the phase did not
change is punished (confidence decrement, removal once exhausted —
without table confidence, immediate removal, since last value would
have been correct).

Results are accumulated in :class:`NextPhaseStats` using the exact
stacked categories of Figure 7.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, Optional

from repro.errors import PredictionError
from repro.prediction.assoc_table import tuple_key
from repro.prediction.change_base import ChangePrediction, ChangePredictorBase
from repro.prediction.last_value import LastValuePredictor

#: Figure 7 stacked-bar categories, in display order.
CATEGORIES = (
    "correct_table",
    "correct_lv_conf",
    "correct_lv_unconf",
    "incorrect_lv_unconf",
    "incorrect_lv_conf",
    "incorrect_table",
)


@dataclass
class NextPhaseStats:
    """Outcome counts for next-interval phase prediction."""

    counts: Dict[str, int] = field(
        default_factory=lambda: {category: 0 for category in CATEGORIES}
    )

    def record(self, category: str) -> None:
        if category not in self.counts:
            raise PredictionError(f"unknown category {category!r}")
        self.counts[category] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def correct(self) -> int:
        return (
            self.counts["correct_table"]
            + self.counts["correct_lv_conf"]
            + self.counts["correct_lv_unconf"]
        )

    @property
    def accuracy(self) -> float:
        """Overall accuracy, counting every interval."""
        return self.correct / self.total if self.total else 0.0

    @property
    def covered(self) -> int:
        """Predictions that were confident (table hit used, or last
        value with a confident counter)."""
        return (
            self.counts["correct_table"]
            + self.counts["incorrect_table"]
            + self.counts["correct_lv_conf"]
            + self.counts["incorrect_lv_conf"]
        )

    @property
    def coverage(self) -> float:
        """Fraction of intervals with a confident prediction."""
        return self.covered / self.total if self.total else 0.0

    @property
    def confident_accuracy(self) -> float:
        """Accuracy among confident predictions only."""
        correct = self.counts["correct_table"] + self.counts["correct_lv_conf"]
        return correct / self.covered if self.covered else 0.0

    @property
    def misprediction_rate(self) -> float:
        """Confident-and-wrong predictions over all intervals (the
        paper's 'miss rate' for confidence-gated prediction)."""
        wrong = (
            self.counts["incorrect_table"] + self.counts["incorrect_lv_conf"]
        )
        return wrong / self.total if self.total else 0.0

    def fractions(self) -> Dict[str, float]:
        """Per-category fractions (the Figure 7 bar segments)."""
        total = self.total or 1
        return {k: v / total for k, v in self.counts.items()}


@dataclass(frozen=True)
class NextPhasePrediction:
    """One next-interval prediction with provenance."""

    phase_id: int
    source: str  # "table" or "lv"
    confident: bool
    table_hit: bool


class CompositePhasePredictor:
    """Change-table + last-value next-phase predictor.

    Pass ``change_predictor=None`` for the pure last-value predictor
    (the first bar of Figure 7).
    """

    def __init__(
        self,
        change_predictor: Optional[ChangePredictorBase] = None,
        lv_use_confidence: bool = True,
    ) -> None:
        self.change_predictor = change_predictor
        self.last_value = LastValuePredictor(use_confidence=lv_use_confidence)
        self.stats = NextPhaseStats()
        self._pending: Optional[NextPhasePrediction] = None
        self._pending_key = None
        self._seeded = False

    def predict(self) -> NextPhasePrediction:
        """Predict the phase of the next interval."""
        lv = self.last_value.predict()
        table_hit = False
        if self.change_predictor is not None:
            change: ChangePrediction = self.change_predictor.predict_next()
            table_hit = change.hit
            if change.hit and change.confident and change.primary is not None:
                return NextPhasePrediction(
                    phase_id=change.primary,
                    source="table",
                    confident=True,
                    table_hit=True,
                )
        return NextPhasePrediction(
            phase_id=lv.phase_id,
            source="lv",
            confident=lv.confident,
            table_hit=table_hit,
        )

    def step(self, phase_id: int) -> Optional[NextPhasePrediction]:
        """Feed one classified interval; returns the evaluated prediction.

        The first interval only seeds state (no prediction existed).
        Each subsequent call evaluates the prediction made after the
        previous interval, trains all structures, and leaves a fresh
        prediction pending for the next call.
        """
        if not self._seeded:
            self.last_value.advance(phase_id)
            if self.change_predictor is not None:
                self.change_predictor.advance(phase_id)
            self._seeded = True
            self._prepare_prediction()
            return None

        prediction = self._pending
        if prediction is None:
            raise PredictionError("no pending prediction; driver bug")
        self._evaluate(prediction, phase_id)
        self._train(prediction, phase_id)
        self._prepare_prediction()
        return prediction

    def run(self, phase_ids: Iterable[int]) -> NextPhaseStats:
        """Drive the predictor over a whole classified phase stream."""
        for phase_id in phase_ids:
            self.step(int(phase_id))
        return self.stats

    @property
    def pending_prediction(self) -> Optional[NextPhasePrediction]:
        """The prediction awaiting evaluation at the next boundary —
        what the predictor currently believes the next phase will be.
        ``None`` before the first observed interval."""
        return self._pending

    # -- lifecycle / snapshot hooks -------------------------------------------

    def reset(self) -> None:
        """Forget all prediction state, keeping both component
        predictors' configurations in place."""
        if self.change_predictor is not None:
            self.change_predictor.reset()
        self.last_value.reset()
        self.stats = NextPhaseStats()
        self._pending = None
        self._pending_key = None
        self._seeded = False

    def export_state(self) -> dict:
        """JSON-safe full predictor state, pending prediction included
        (it is evaluated — and trains the tables — at the next step)."""
        return {
            "change_predictor": (
                self.change_predictor.export_state()
                if self.change_predictor is not None
                else None
            ),
            "last_value": self.last_value.export_state(),
            "stats": dict(self.stats.counts),
            "pending": (
                asdict(self._pending) if self._pending is not None else None
            ),
            "pending_key": self._pending_key,
            "seeded": self._seeded,
        }

    def restore_state(self, state: dict) -> None:
        """Restore state captured by :meth:`export_state` onto a
        predictor constructed with the same configuration."""
        if (state["change_predictor"] is None) != (
            self.change_predictor is None
        ):
            raise PredictionError(
                "snapshot and predictor disagree on the presence of a "
                "change predictor"
            )
        if self.change_predictor is not None:
            self.change_predictor.restore_state(state["change_predictor"])
        self.last_value.restore_state(state["last_value"])
        self.stats = NextPhaseStats(
            counts={
                category: int(state["stats"].get(category, 0))
                for category in CATEGORIES
            }
        )
        pending = state["pending"]
        self._pending = (
            NextPhasePrediction(**pending) if pending is not None else None
        )
        self._pending_key = tuple_key(state["pending_key"])
        self._seeded = bool(state["seeded"])

    # -- internals ----------------------------------------------------------

    def _prepare_prediction(self) -> None:
        self._pending = self.predict()
        self._pending_key = (
            self.change_predictor.running_key()
            if self.change_predictor is not None
            else None
        )

    def _evaluate(
        self, prediction: NextPhasePrediction, actual: int
    ) -> None:
        correct = prediction.phase_id == actual
        if prediction.source == "table":
            self.stats.record(
                "correct_table" if correct else "incorrect_table"
            )
        else:
            suffix = "conf" if prediction.confident else "unconf"
            prefix = "correct" if correct else "incorrect"
            self.stats.record(f"{prefix}_lv_{suffix}")

    def _train(self, prediction: NextPhasePrediction, actual: int) -> None:
        self.last_value.advance(actual)
        predictor = self.change_predictor
        if predictor is None:
            return
        if predictor.advance(actual).phase_changed:
            # A phase change: train the entry keyed by the completed run.
            predictor.train_change(predictor.change_key(), actual)
        elif prediction.table_hit:
            # Tag hit, but the phase did not change: last value would
            # have been right. Punish the entry (decrement confidence;
            # remove when exhausted, or immediately without confidence).
            self._punish_early_fire()

    def _punish_early_fire(self) -> None:
        predictor = self.change_predictor
        assert predictor is not None
        key = self._pending_key
        if key is None:
            return
        if not predictor.use_confidence:
            predictor.note_same_phase(key)
            return
        # With table confidence, an early fire demotes the entry rather
        # than removing it: the entry may still be right about *what*
        # the next phase is, just not about when. Removal is reserved
        # for the no-confidence configuration, where a surviving early
        # firer would mispredict on every interval of a stable run.
        entry = predictor.table.peek(key)
        if entry is not None:
            entry.confidence.record(False)
