"""RLE-N phase-change predictors (paper §5.2.3).

An RLE-N predictor indexes its table with the most recent N
(phase ID, run length) pairs from the run-length-encoded phase history.
Because the key carries the run length, a table hit mid-run predicts
not just *what* the next phase is but *when* the change happens: the
key only matches once the ongoing run reaches a length at which a
change was previously observed.
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

from repro.errors import ConfigurationError
from repro.prediction.change_base import ChangePredictorBase


class RLEChangePredictor(ChangePredictorBase):
    """Phase-change predictor indexed by run-length-encoded history.

    Parameters
    ----------
    depth:
        N — how many (phase ID, run length) pairs form the key (1 or 2
        in the paper).
    entry_kind / use_confidence / entries / assoc:
        See :class:`~repro.prediction.change_base.ChangePredictorBase`.
    """

    def __init__(
        self,
        depth: int = 2,
        entries: int = 32,
        assoc: int = 4,
        entry_kind: str = "single",
        use_confidence: bool = True,
    ) -> None:
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        super().__init__(
            entries=entries,
            assoc=assoc,
            entry_kind=entry_kind,
            use_confidence=use_confidence,
            history_depth=max(depth + 2, 8),
        )
        self.depth = depth

    #: Snapshot type tag (see :mod:`repro.service.snapshot`).
    snapshot_kind = "rle"

    def snapshot_kwargs(self) -> dict:
        kwargs = super().snapshot_kwargs()
        kwargs["depth"] = self.depth
        return kwargs

    def _key_from_pairs(
        self, pairs: Tuple[Tuple[int, int], ...]
    ) -> Optional[Hashable]:
        if len(pairs) < self.depth:
            return None
        return ("rle", self.depth, pairs[-self.depth:])

    def change_key(self) -> Optional[Hashable]:
        # After observe() pushed the completed run, the RLE history's
        # newest pair is the run the change just ended.
        return self._key_from_pairs(tuple(self._runs))

    def running_key(self) -> Optional[Hashable]:
        if self._current_phase is None:
            return None
        pairs = tuple(self._runs) + (
            (self._current_phase, self._current_run),
        )
        return self._key_from_pairs(pairs)
