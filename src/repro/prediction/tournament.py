"""Tournament phase-change predictor (beyond the paper).

The paper closes noting that "more advanced techniques are needed to
accurately predict phase changes" (§7). The two table families it
evaluates have complementary strengths: Markov keys (unique phase IDs)
generalize across run-length noise, while RLE keys carry timing and are
precise when run lengths repeat. A classic McFarling-style tournament
combines them: both components train on every change; a meta counter
tracks which one has been right when they disagree, and predictions
prefer the currently stronger component, falling back to the other on
a miss or unconfident entry.

The combiner duck-types the :class:`ChangePredictorBase` evaluation
interface (``advance`` / ``change_key`` / ``predict_change`` /
``train_change``) so :func:`repro.prediction.change_eval.
evaluate_change_predictor` drives it unchanged.
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

from repro.errors import ConfigurationError
from repro.prediction.change_base import ChangePrediction, ChangePredictorBase
from repro.prediction.counters import SaturatingCounter
from repro.prediction.markov import MarkovChangePredictor
from repro.prediction.protocol import PhaseObservation, _deprecated_observe
from repro.prediction.rle import RLEChangePredictor


class TournamentChangePredictor:
    """Meta-selected combination of two phase-change predictors.

    Parameters
    ----------
    first / second:
        Component predictors; defaults to Top-4 Markov-1 (the paper's
        best realizable predictor) and RLE-2 (the timing specialist).
    meta_bits:
        Width of the selector counter; high values prefer ``first``.
    """

    def __init__(
        self,
        first: Optional[ChangePredictorBase] = None,
        second: Optional[ChangePredictorBase] = None,
        meta_bits: int = 4,
    ) -> None:
        if meta_bits < 1:
            raise ConfigurationError(
                f"meta_bits must be >= 1, got {meta_bits}"
            )
        self.first = first or MarkovChangePredictor(1, entry_kind="top4")
        self.second = second or RLEChangePredictor(2)
        midpoint = (1 << meta_bits) // 2
        self.meta = SaturatingCounter(meta_bits, initial=midpoint)
        self._meta_threshold = midpoint
        #: Mirrors the component flag for evaluation bookkeeping.
        self.use_confidence = True

    # -- history -------------------------------------------------------------

    def advance(self, phase_id: int) -> PhaseObservation:
        """Advance both components; their run histories stay in step."""
        observation = self.first.advance(phase_id)
        observation_second = self.second.advance(phase_id)
        # Both components see the same stream, so completions agree.
        assert observation.phase_changed == observation_second.phase_changed
        return observation

    def observe(self, phase_id: int) -> Optional[Tuple[int, int]]:
        """Deprecated legacy spelling of :meth:`advance`."""
        _deprecated_observe(type(self).__name__)
        return self.advance(phase_id).completed_run

    def reset(self) -> None:
        """Forget both components' state and recentre the selector."""
        self.first.reset()
        self.second.reset()
        self.meta.reset(self._meta_threshold)

    def change_key(self) -> Optional[Hashable]:
        """A composite key; training decomposes to the components."""
        first_key = self.first.change_key()
        second_key = self.second.change_key()
        if first_key is None and second_key is None:
            return None
        return ("tournament", first_key, second_key)

    # -- prediction -----------------------------------------------------------

    @property
    def prefers_first(self) -> bool:
        return self.meta.value >= self._meta_threshold

    def _ordered_components(self):
        if self.prefers_first:
            return self.first, self.second
        return self.second, self.first

    def predict_change(self) -> ChangePrediction:
        """Prefer the stronger component; fall back to the other."""
        preferred, fallback = self._ordered_components()
        prediction = preferred.predict_change()
        if prediction.hit and prediction.confident:
            return prediction
        alternative = fallback.predict_change()
        if alternative.hit and alternative.confident:
            return alternative
        # Neither is confident: report the best hit available.
        if prediction.hit:
            return prediction
        return alternative

    def predict_next(self) -> ChangePrediction:
        preferred, fallback = self._ordered_components()
        prediction = preferred.predict_next()
        if prediction.hit and prediction.confident:
            return prediction
        alternative = fallback.predict_next()
        if alternative.hit and alternative.confident:
            return alternative
        if prediction.hit:
            return prediction
        return alternative

    # -- training ---------------------------------------------------------------

    def train_change(self, key: Optional[Hashable], actual: int) -> None:
        """Train both components and the meta selector.

        The selector trains only when the components disagree on
        correctness (McFarling's rule), using their predictions as they
        stood *before* this training step.
        """
        first_prediction = self.first.predict_change()
        second_prediction = self.second.predict_change()
        first_correct = first_prediction.matches(actual)
        second_correct = second_prediction.matches(actual)
        if first_correct != second_correct:
            if first_correct:
                self.meta.up()
            else:
                self.meta.down()

        self.first.train_change(self.first.change_key(), actual)
        self.second.train_change(self.second.change_key(), actual)

    def note_same_phase(self, key: Optional[Hashable]) -> None:
        self.first.note_same_phase(self.first.running_key())
        self.second.note_same_phase(self.second.running_key())

    def running_key(self) -> Optional[Hashable]:
        first_key = self.first.running_key()
        second_key = self.second.running_key()
        if first_key is None and second_key is None:
            return None
        return ("tournament", first_key, second_key)
