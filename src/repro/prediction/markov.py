"""Markov-N phase-change predictors (paper §5.2.2, §6.1).

A Markov-N predictor indexes its table with the last N *unique* phase
IDs (consecutive repeats collapsed). Entry variants give the paper's
Last-4 and Top-N predictors; ``entries=128`` gives the "128 Entry
Markov-2" bar of Figure 8.
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

from repro.errors import ConfigurationError
from repro.prediction.change_base import ChangePredictorBase


class MarkovChangePredictor(ChangePredictorBase):
    """Phase-change predictor indexed by the last N unique phase IDs.

    Parameters
    ----------
    order:
        N — how many unique phase IDs form the key (1 or 2 in the
        paper).
    entry_kind / use_confidence / entries / assoc:
        See :class:`~repro.prediction.change_base.ChangePredictorBase`.
    """

    def __init__(
        self,
        order: int = 1,
        entries: int = 32,
        assoc: int = 4,
        entry_kind: str = "single",
        use_confidence: bool = True,
    ) -> None:
        if order < 1:
            raise ConfigurationError(f"order must be >= 1, got {order}")
        super().__init__(
            entries=entries,
            assoc=assoc,
            entry_kind=entry_kind,
            use_confidence=use_confidence,
            history_depth=max(order + 2, 8),
        )
        self.order = order

    #: Snapshot type tag (see :mod:`repro.service.snapshot`).
    snapshot_kind = "markov"

    def snapshot_kwargs(self) -> dict:
        kwargs = super().snapshot_kwargs()
        kwargs["order"] = self.order
        return kwargs

    def _unique_history(
        self, include_current: bool
    ) -> Optional[Tuple[int, ...]]:
        """The last N unique phase IDs, oldest first.

        ``include_current`` appends the ongoing run's phase (mid-run
        keys); otherwise the newest ID is the most recently *completed*
        run's phase (change-time keys).
        """
        ids = [phase for phase, _ in self._runs]
        if include_current and self._current_phase is not None:
            ids.append(self._current_phase)
        if len(ids) < self.order:
            return None
        return tuple(ids[-self.order:])

    def change_key(self) -> Optional[Hashable]:
        # After observe() pushed the completed run, the completed run's
        # phase is the newest element of the unique-ID history.
        history = self._unique_history(include_current=False)
        if history is None:
            return None
        return ("markov", self.order, history)

    def running_key(self) -> Optional[Hashable]:
        history = self._unique_history(include_current=True)
        if history is None:
            return None
        return ("markov", self.order, history)
