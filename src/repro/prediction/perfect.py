"""Perfect (oracle) Markov predictors (paper §6.1, Figure 8).

A Perfect Markov-N predictor has infinite memory: a phase change is
counted as correctly predicted if the (history, outcome) transition was
ever seen before. Its miss rate is pure cold-start — the upper bound on
any realizable predictor's phase-change coverage ("even a perfect
predictor with infinite memory can not correctly predict a phase change
it has never seen").
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.prediction.protocol import PhaseObservation, _deprecated_observe


class PerfectMarkovPredictor:
    """Infinite-memory oracle over the last N unique phase IDs."""

    def __init__(self, order: int = 1) -> None:
        if order < 1:
            raise ConfigurationError(f"order must be >= 1, got {order}")
        self.order = order
        self._seen: Set[Tuple[Tuple[int, ...], int]] = set()
        self._unique_history: List[int] = []
        self._current: Optional[int] = None

    def _key(self) -> Optional[Tuple[int, ...]]:
        if len(self._unique_history) < self.order:
            return None
        return tuple(self._unique_history[-self.order:])

    def advance(self, phase_id: int) -> PhaseObservation:
        """Feed one classified interval.

        ``oracle_correct`` is ``None`` when the phase did not change;
        on a phase change, it reports whether the oracle had seen this
        transition before (i.e. whether a perfect predictor counts it
        correct), and the transition is recorded.
        """
        if self._current is None:
            self._current = phase_id
            self._unique_history.append(phase_id)
            return PhaseObservation(phase_id=phase_id, phase_changed=False)
        if phase_id == self._current:
            return PhaseObservation(phase_id=phase_id, phase_changed=False)

        key = self._key()
        if key is None:
            correct = False
        else:
            correct = (key, phase_id) in self._seen
            self._seen.add((key, phase_id))

        self._current = phase_id
        self._unique_history.append(phase_id)
        # Bound retained history: only the last `order` entries matter.
        self._unique_history = self._unique_history[-(self.order + 1):]
        return PhaseObservation(
            phase_id=phase_id, phase_changed=True, oracle_correct=correct
        )

    def observe(self, phase_id: int) -> Optional[bool]:
        """Deprecated legacy spelling of :meth:`advance`.

        Returns ``None`` on stable intervals and the oracle verdict on
        a phase change — the old contract. Use :meth:`advance`.
        """
        _deprecated_observe(type(self).__name__)
        return self.advance(phase_id).oracle_correct

    def reset(self) -> None:
        """Forget all recorded transitions and history, keeping the
        Markov order in place."""
        self._seen.clear()
        self._unique_history.clear()
        self._current = None

    @property
    def transitions_recorded(self) -> int:
        return len(self._seen)
