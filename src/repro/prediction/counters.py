"""Saturating and confidence counters (paper §5.1).

Confidence counters are N-bit saturating counters incremented on
correct predictions and decremented on incorrect ones; a prediction is
trusted only when the counter is at or above a threshold (typically one
below saturation). The paper uses a 3-bit counter with threshold 6 for
last-value prediction and a 1-bit counter for phase-change table
entries, incrementing and decrementing by 1 in both cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


class SaturatingCounter:
    """An N-bit up/down saturating counter."""

    __slots__ = ("bits", "_max", "_value", "increment", "decrement")

    def __init__(
        self,
        bits: int,
        initial: int = 0,
        increment: int = 1,
        decrement: int = 1,
    ) -> None:
        if not 1 <= bits <= 30:
            raise ConfigurationError(f"bits must be in [1, 30], got {bits}")
        if increment <= 0 or decrement <= 0:
            raise ConfigurationError(
                "increment and decrement must be positive"
            )
        self.bits = bits
        self._max = (1 << bits) - 1
        if not 0 <= initial <= self._max:
            raise ConfigurationError(
                f"initial value {initial} out of range for {bits} bits"
            )
        self._value = initial
        self.increment = increment
        self.decrement = decrement

    @property
    def value(self) -> int:
        return self._value

    @property
    def max_value(self) -> int:
        return self._max

    def up(self) -> None:
        """Increment, saturating at the maximum."""
        self._value = min(self._value + self.increment, self._max)

    def down(self) -> None:
        """Decrement, saturating at zero."""
        self._value = max(self._value - self.decrement, 0)

    def reset(self, value: int = 0) -> None:
        if not 0 <= value <= self._max:
            raise ConfigurationError(
                f"reset value {value} out of range for {self.bits} bits"
            )
        self._value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SaturatingCounter({self._value}/{self._max})"


class ConfidenceCounter(SaturatingCounter):
    """A saturating counter with a confidence threshold.

    ``threshold`` defaults to one below saturation (the paper's choice
    for the 3-bit last-value counter: threshold 6 of 7). A 1-bit
    counter with the default threshold is confident after one correct
    prediction (threshold 0? no — max 1, threshold 1-1=0 would always
    be confident, so for 1-bit counters the threshold floors at 1:
    confident only at saturation).
    """

    __slots__ = ("threshold",)

    def __init__(
        self,
        bits: int,
        threshold: "int | None" = None,
        initial: int = 0,
        increment: int = 1,
        decrement: int = 1,
    ) -> None:
        super().__init__(
            bits, initial=initial, increment=increment, decrement=decrement
        )
        if threshold is None:
            threshold = max(self.max_value - 1, 1)
        if not 0 <= threshold <= self.max_value:
            raise ConfigurationError(
                f"threshold {threshold} out of range for {bits} bits"
            )
        self.threshold = threshold

    @property
    def confident(self) -> bool:
        """Whether predictions should currently be trusted."""
        return self._value >= self.threshold

    def record(self, correct: bool) -> None:
        """Train with one prediction outcome."""
        if correct:
            self.up()
        else:
            self.down()


@dataclass(frozen=True)
class ConfidenceConfig:
    """Configuration of the two confidence-counter sets (paper §5.1)."""

    last_value_bits: int = 3
    last_value_threshold: int = 6
    change_table_bits: int = 1
    change_table_threshold: int = 1

    def __post_init__(self) -> None:
        for bits, threshold, label in (
            (self.last_value_bits, self.last_value_threshold, "last_value"),
            (self.change_table_bits, self.change_table_threshold, "change"),
        ):
            if not 1 <= bits <= 30:
                raise ConfigurationError(
                    f"{label} bits must be in [1, 30], got {bits}"
                )
            if not 0 <= threshold <= (1 << bits) - 1:
                raise ConfigurationError(
                    f"{label} threshold {threshold} out of range for "
                    f"{bits} bits"
                )

    def last_value_counter(self) -> ConfidenceCounter:
        return ConfidenceCounter(
            self.last_value_bits, threshold=self.last_value_threshold
        )

    def change_table_counter(self) -> ConfidenceCounter:
        return ConfidenceCounter(
            self.change_table_bits, threshold=self.change_table_threshold
        )
