"""Phase predictors (paper §5 and §6).

Next-phase prediction predicts the phase ID of the next interval of
execution; phase-change prediction predicts the outcome of the next
phase change, whenever it may occur; phase-length prediction predicts
the run-length *class* of the next phase.

- :mod:`repro.prediction.counters` — saturating / confidence counters.
- :mod:`repro.prediction.assoc_table` — the 32-entry 4-way set
  associative prediction table with per-set LRU.
- :mod:`repro.prediction.last_value` — last-value prediction with
  per-phase 3-bit confidence (§5.2.1, §5.1).
- :mod:`repro.prediction.markov` — Markov-N predictors over the last N
  unique phase IDs, with Last-4 and Top-N entry variants (§5.2.2, §6.1).
- :mod:`repro.prediction.rle` — run-length-encoding predictors over the
  last N (phase ID, run length) pairs (§5.2.3).
- :mod:`repro.prediction.composite` — the combined next-phase predictor
  (confident phase-change table result, else last value).
- :mod:`repro.prediction.perfect` — the infinite-memory oracle Markov
  models bounding achievable phase-change coverage (§6.1).
- :mod:`repro.prediction.change_eval` — phase-change prediction
  evaluation (Fig. 8 categories).
- :mod:`repro.prediction.length` — run-length classes and the RLE-2
  length predictor with hysteresis (§6.2, Fig. 9).
- :mod:`repro.prediction.protocol` — the unified
  :class:`~repro.prediction.protocol.PhasePredictor` contract every
  predictor implements (``advance(phase_id) -> PhaseObservation``).

Every predictor here conforms to :class:`PhasePredictor`: drive it
with ``advance(phase_id)`` and read the uniform
:class:`PhaseObservation` it returns. The historical per-family
``observe()`` signatures survive as deprecation shims.
:class:`CompositePhasePredictor` is the one deliberate exception — it
*drives* component predictors through the protocol and exposes the
richer ``step``/``predict`` interface trackers consume.
"""

from typing import Optional

from repro.errors import SnapshotError
from repro.prediction.assoc_table import AssociativeTable
from repro.prediction.change_eval import (
    ChangePredictionStats,
    evaluate_change_predictor,
)
from repro.prediction.composite import CompositePhasePredictor, NextPhaseStats
from repro.prediction.counters import ConfidenceCounter, SaturatingCounter
from repro.prediction.last_value import LastValuePredictor
from repro.prediction.markov import MarkovChangePredictor
from repro.prediction.length import (
    LENGTH_CLASS_BOUNDS,
    PhaseLengthPredictor,
    length_class,
)
from repro.prediction.perfect import PerfectMarkovPredictor
from repro.prediction.protocol import PhaseObservation, PhasePredictor
from repro.prediction.rle import RLEChangePredictor
from repro.prediction.tournament import TournamentChangePredictor

#: Change-predictor registry keyed by snapshot kind — the vocabulary
#: snapshot documents use to name the predictor that must be rebuilt.
CHANGE_PREDICTOR_KINDS = {
    RLEChangePredictor.snapshot_kind: RLEChangePredictor,
    MarkovChangePredictor.snapshot_kind: MarkovChangePredictor,
}


def change_predictor_from_spec(spec: "Optional[dict]"):
    """Rebuild a change predictor from its snapshot spec.

    ``spec`` is the ``{"kind": ..., "kwargs": ...}`` mapping a tracker
    snapshot carries (``None`` means pure last-value — no change
    predictor). Raises :class:`~repro.errors.SnapshotError` for an
    unknown kind or kwargs the predictor's constructor rejects.
    """
    if spec is None:
        return None
    kind = spec.get("kind")
    predictor_cls = CHANGE_PREDICTOR_KINDS.get(kind)
    if predictor_cls is None:
        raise SnapshotError(
            f"unknown change-predictor kind {kind!r}; expected one of "
            f"{sorted(CHANGE_PREDICTOR_KINDS)}"
        )
    try:
        return predictor_cls(**spec.get("kwargs", {}))
    except Exception as error:
        raise SnapshotError(
            f"cannot rebuild {kind!r} change predictor: {error}"
        ) from error


__all__ = [
    "AssociativeTable",
    "CHANGE_PREDICTOR_KINDS",
    "ChangePredictionStats",
    "CompositePhasePredictor",
    "ConfidenceCounter",
    "LENGTH_CLASS_BOUNDS",
    "LastValuePredictor",
    "MarkovChangePredictor",
    "NextPhaseStats",
    "PerfectMarkovPredictor",
    "PhaseLengthPredictor",
    "PhaseObservation",
    "PhasePredictor",
    "RLEChangePredictor",
    "SaturatingCounter",
    "TournamentChangePredictor",
    "change_predictor_from_spec",
    "evaluate_change_predictor",
    "length_class",
]
