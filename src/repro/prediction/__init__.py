"""Phase predictors (paper §5 and §6).

Next-phase prediction predicts the phase ID of the next interval of
execution; phase-change prediction predicts the outcome of the next
phase change, whenever it may occur; phase-length prediction predicts
the run-length *class* of the next phase.

- :mod:`repro.prediction.counters` — saturating / confidence counters.
- :mod:`repro.prediction.assoc_table` — the 32-entry 4-way set
  associative prediction table with per-set LRU.
- :mod:`repro.prediction.last_value` — last-value prediction with
  per-phase 3-bit confidence (§5.2.1, §5.1).
- :mod:`repro.prediction.markov` — Markov-N predictors over the last N
  unique phase IDs, with Last-4 and Top-N entry variants (§5.2.2, §6.1).
- :mod:`repro.prediction.rle` — run-length-encoding predictors over the
  last N (phase ID, run length) pairs (§5.2.3).
- :mod:`repro.prediction.composite` — the combined next-phase predictor
  (confident phase-change table result, else last value).
- :mod:`repro.prediction.perfect` — the infinite-memory oracle Markov
  models bounding achievable phase-change coverage (§6.1).
- :mod:`repro.prediction.change_eval` — phase-change prediction
  evaluation (Fig. 8 categories).
- :mod:`repro.prediction.length` — run-length classes and the RLE-2
  length predictor with hysteresis (§6.2, Fig. 9).
"""

from repro.prediction.assoc_table import AssociativeTable
from repro.prediction.change_eval import (
    ChangePredictionStats,
    evaluate_change_predictor,
)
from repro.prediction.composite import CompositePhasePredictor, NextPhaseStats
from repro.prediction.counters import ConfidenceCounter, SaturatingCounter
from repro.prediction.last_value import LastValuePredictor
from repro.prediction.markov import MarkovChangePredictor
from repro.prediction.length import (
    LENGTH_CLASS_BOUNDS,
    PhaseLengthPredictor,
    length_class,
)
from repro.prediction.perfect import PerfectMarkovPredictor
from repro.prediction.rle import RLEChangePredictor
from repro.prediction.tournament import TournamentChangePredictor

__all__ = [
    "AssociativeTable",
    "ChangePredictionStats",
    "CompositePhasePredictor",
    "ConfidenceCounter",
    "LENGTH_CLASS_BOUNDS",
    "LastValuePredictor",
    "MarkovChangePredictor",
    "NextPhaseStats",
    "PerfectMarkovPredictor",
    "PhaseLengthPredictor",
    "RLEChangePredictor",
    "SaturatingCounter",
    "TournamentChangePredictor",
    "evaluate_change_predictor",
    "length_class",
]
