"""The unified phase-predictor observation protocol.

Historically every predictor family grew its own ``observe()`` return
contract: the table-based change predictors returned the completed
``(phase, run length)`` pair, the last-value and length predictors
returned ``None``, and the perfect (oracle) predictors returned an
``Optional[bool]`` verdict. Drivers had to know which family they were
talking to.

:class:`PhasePredictor` is the one documented contract: every predictor
exposes ``advance(phase_id) -> PhaseObservation`` plus ``reset()``.
``advance`` feeds one classified interval and returns a uniform
:class:`PhaseObservation` record carrying everything any of the old
contracts carried:

- ``phase_changed`` — this interval ended a phase run;
- ``completed_run`` — the completed ``(phase, length)`` pair when the
  predictor tracks run lengths (``None`` otherwise, and on stable
  intervals);
- ``oracle_correct`` — the perfect predictors' verdict (``None`` for
  realizable predictors, and on stable intervals).

The old per-family ``observe()`` methods survive as thin deprecation
shims delegating to ``advance()``; new code should not call them.

:class:`~repro.prediction.composite.CompositePhasePredictor` is a
*driver* of this protocol, not an implementation: it consumes
``advance()`` observations from its components and exposes the richer
``step``/``predict`` interface trackers use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Tuple, runtime_checkable


@dataclass(frozen=True)
class PhaseObservation:
    """What one ``advance(phase_id)`` call observed.

    Parameters
    ----------
    phase_id:
        The classified phase ID that was fed in.
    phase_changed:
        Whether this interval changed phase (ended a run). The first
        interval a predictor ever sees only seeds state and reports
        ``False``.
    completed_run:
        The completed ``(phase, run length)`` pair when this interval
        ended a run *and* the predictor tracks run lengths; ``None``
        otherwise.
    oracle_correct:
        Perfect (infinite-memory) predictors only: whether the oracle
        had seen this transition before. ``None`` for realizable
        predictors and on intervals without a phase change.
    """

    phase_id: int
    phase_changed: bool
    completed_run: Optional[Tuple[int, int]] = None
    oracle_correct: Optional[bool] = None


@runtime_checkable
class PhasePredictor(Protocol):
    """The contract every phase predictor implements.

    ``advance`` consumes one classified interval and returns a
    :class:`PhaseObservation`; ``reset`` forgets all learned state
    while keeping configuration in place.
    """

    def advance(self, phase_id: int) -> PhaseObservation:
        """Feed one classified interval; report what was observed."""
        ...  # pragma: no cover - protocol declaration

    def reset(self) -> None:
        """Forget all history, keeping configuration."""
        ...  # pragma: no cover - protocol declaration


def _deprecated_observe(name: str) -> None:
    """Emit the shared deprecation warning for legacy ``observe()``."""
    import warnings

    warnings.warn(
        f"{name}.observe() is deprecated; use advance(), which returns "
        "a uniform PhaseObservation for every predictor family",
        DeprecationWarning,
        stacklevel=3,
    )
