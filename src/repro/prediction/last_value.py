"""Last-value phase prediction with per-phase confidence (§5.2.1, §5.1).

The last-value predictor always predicts that the next interval will be
classified into the same phase as the current one. Confidence is kept
*per phase* with a 3-bit saturating counter (threshold 6): stable
phases advance to confident status, rapidly changing ones are demoted —
"predicting last value will do well in stable phases, and poorly in
rapidly changing ones".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import PredictionError
from repro.prediction.counters import ConfidenceCounter
from repro.prediction.protocol import PhaseObservation, _deprecated_observe


@dataclass(frozen=True)
class LastValuePrediction:
    """A last-value prediction and its confidence status."""

    phase_id: int
    confident: bool


class LastValuePredictor:
    """Predicts the next interval's phase equals the current one.

    Parameters
    ----------
    confidence_bits / confidence_threshold:
        Per-phase confidence counter geometry (3 bits, threshold 6 in
        the paper). Pass ``use_confidence=False`` to run the raw
        last-value baseline (every prediction treated as confident).
    """

    def __init__(
        self,
        use_confidence: bool = True,
        confidence_bits: int = 3,
        confidence_threshold: int = 6,
    ) -> None:
        self.use_confidence = use_confidence
        self.confidence_bits = confidence_bits
        self.confidence_threshold = confidence_threshold
        self._counters: Dict[int, ConfidenceCounter] = {}
        self._current: Optional[int] = None
        self.predictions = 0
        self.correct = 0

    def _counter_for(self, phase_id: int) -> ConfidenceCounter:
        counter = self._counters.get(phase_id)
        if counter is None:
            # "Whenever a new entry is added to the phase ID signature
            # table, we reset the associated confidence counter."
            counter = ConfidenceCounter(
                self.confidence_bits, threshold=self.confidence_threshold
            )
            self._counters[phase_id] = counter
        return counter

    def predict(self) -> LastValuePrediction:
        """Predict the next interval's phase.

        Raises :class:`PredictionError` before any interval has been
        observed (there is no last value yet).
        """
        if self._current is None:
            raise PredictionError(
                "last-value predictor has not observed any interval yet"
            )
        confident = (
            self._counter_for(self._current).confident
            if self.use_confidence
            else True
        )
        return LastValuePrediction(phase_id=self._current, confident=confident)

    def advance(self, phase_id: int) -> PhaseObservation:
        """Feed the actual phase of the next interval.

        Trains the confidence counter of the phase the prediction was
        made *from* and advances the last value. The first observation
        only seeds the last value.
        """
        changed = False
        if self._current is not None:
            correct = phase_id == self._current
            changed = not correct
            self.predictions += 1
            if correct:
                self.correct += 1
            self._counter_for(self._current).record(correct)
        self._current = phase_id
        return PhaseObservation(phase_id=phase_id, phase_changed=changed)

    def observe(self, phase_id: int) -> None:
        """Deprecated legacy spelling of :meth:`advance` (returned
        nothing). Use :meth:`advance`."""
        _deprecated_observe(type(self).__name__)
        self.advance(phase_id)

    @property
    def current_phase(self) -> Optional[int]:
        return self._current

    # -- lifecycle / snapshot hooks -------------------------------------------

    def reset(self) -> None:
        """Forget all per-phase confidence and the last value, keeping
        the confidence-counter configuration."""
        self._counters.clear()
        self._current = None
        self.predictions = 0
        self.correct = 0

    def export_state(self) -> dict:
        """JSON-safe predictor state."""
        return {
            "counters": [
                [phase, counter.value]
                for phase, counter in self._counters.items()
            ],
            "current": self._current,
            "predictions": self.predictions,
            "correct": self.correct,
        }

    def restore_state(self, state: dict) -> None:
        """Restore state captured by :meth:`export_state` onto a
        predictor constructed with the same configuration."""
        self.reset()
        for phase, value in state["counters"]:
            self._counter_for(int(phase)).reset(int(value))
        self._current = state["current"]
        self.predictions = int(state["predictions"])
        self.correct = int(state["correct"])

    @property
    def accuracy(self) -> float:
        """Raw accuracy over all predictions made so far."""
        if self.predictions == 0:
            return 0.0
        return self.correct / self.predictions
