"""Set-associative prediction table with per-set LRU.

Both the Markov and RLE phase-change predictors store their state in a
32-entry, 4-way set associative table (paper §5.1). Keys are arbitrary
hashable history tuples; the table hashes them to a set index and
compares full keys as tags (a faithful idealization of tag matching —
tag aliasing is a second-order hardware detail the paper does not
evaluate).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import (
    Callable,
    Generic,
    Hashable,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from repro.errors import ConfigurationError

P = TypeVar("P")

_HASH_SALT = 0x9E3779B9


def _set_index(key: Hashable, num_sets: int) -> int:
    # Process-independent on purpose: built-in ``hash()`` of strings is
    # salted per interpreter, and predictor keys carry strings — a
    # table restored after a crash (a different process) must place
    # every way in the same set it occupied before the kill, or the
    # recovered predictor diverges from the one that was journaled.
    # ``repr`` of the nested int/str tuple keys is canonical.
    return (
        zlib.crc32(repr(key).encode("utf-8")) ^ _HASH_SALT
    ) % num_sets


def tuple_key(obj: object) -> Hashable:
    """Rebuild a predictor table key from its JSON form.

    Predictor keys are nested tuples of ints and strings; JSON
    round-trips tuples as lists, so restoring recursively converts
    lists back to tuples.
    """
    if isinstance(obj, list):
        return tuple(tuple_key(item) for item in obj)
    return obj


@dataclass
class _Way(Generic[P]):
    key: Hashable
    payload: P
    last_used: int


class AssociativeTable(Generic[P]):
    """Generic (key -> payload) storage with bounded associative sets.

    Parameters
    ----------
    entries:
        Total capacity (default 32, paper §5.1).
    assoc:
        Ways per set (default 4). ``entries`` must divide evenly.
    """

    def __init__(self, entries: int = 32, assoc: int = 4) -> None:
        if entries <= 0 or assoc <= 0:
            raise ConfigurationError(
                f"entries and assoc must be positive, got {entries}/{assoc}"
            )
        if entries % assoc:
            raise ConfigurationError(
                f"entries ({entries}) must be a multiple of assoc ({assoc})"
            )
        self.entries = entries
        self.assoc = assoc
        self.num_sets = entries // assoc
        self._sets: List[List[_Way[P]]] = [[] for _ in range(self.num_sets)]
        self._clock = 0
        self.insertions = 0
        self.evictions = 0

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def lookup(self, key: Hashable) -> Optional[P]:
        """Return the payload for ``key`` (refreshing LRU), or ``None``."""
        ways = self._sets[_set_index(key, self.num_sets)]
        for way in ways:
            if way.key == key:
                way.last_used = self._tick()
                return way.payload
        return None

    def peek(self, key: Hashable) -> Optional[P]:
        """Like :meth:`lookup` but without touching LRU state."""
        ways = self._sets[_set_index(key, self.num_sets)]
        for way in ways:
            if way.key == key:
                return way.payload
        return None

    def insert(self, key: Hashable, payload: P) -> None:
        """Insert or overwrite; evicts the set's LRU way when full."""
        ways = self._sets[_set_index(key, self.num_sets)]
        for way in ways:
            if way.key == key:
                way.payload = payload
                way.last_used = self._tick()
                return
        if len(ways) >= self.assoc:
            victim = min(range(len(ways)), key=lambda i: ways[i].last_used)
            del ways[victim]
            self.evictions += 1
        ways.append(_Way(key=key, payload=payload, last_used=self._tick()))
        self.insertions += 1

    def remove(self, key: Hashable) -> bool:
        """Delete ``key`` if present; returns whether it was found."""
        ways = self._sets[_set_index(key, self.num_sets)]
        for i, way in enumerate(ways):
            if way.key == key:
                del ways[i]
                return True
        return False

    def items(self) -> List[Tuple[Hashable, P]]:
        """All live (key, payload) pairs (for inspection/tests)."""
        return [
            (way.key, way.payload) for ways in self._sets for way in ways
        ]

    def clear(self) -> None:
        """Drop every way and reset LRU/eviction bookkeeping, keeping
        the table geometry."""
        for ways in self._sets:
            ways.clear()
        self._clock = 0
        self.insertions = 0
        self.evictions = 0

    # -- snapshot hooks -------------------------------------------------------

    def export_state(
        self, encode_payload: Callable[[P], object]
    ) -> dict:
        """JSON-safe table state.

        Keys must themselves be JSON-representable (the predictors use
        nested tuples of ints and strings; tuples round-trip as lists
        and are rebuilt by the caller's key codec). ``encode_payload``
        maps each stored payload to a JSON-safe object.
        """
        return {
            "entries": self.entries,
            "assoc": self.assoc,
            "clock": self._clock,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "ways": [
                [way.key, encode_payload(way.payload), way.last_used]
                for ways in self._sets
                for way in ways
            ],
        }

    def restore_state(
        self,
        state: dict,
        decode_payload: Callable[[object], P],
        decode_key: Callable[[object], Hashable],
    ) -> None:
        """Restore state captured by :meth:`export_state`.

        Ways are re-placed by recomputing each key's set index
        (deterministic across processes), preserving each way's LRU
        stamp, so restore-then-export round-trips are byte-identical —
        including in a freshly started process recovering a crash.
        """
        if (
            int(state["entries"]) != self.entries
            or int(state["assoc"]) != self.assoc
        ):
            raise ConfigurationError(
                "snapshot table geometry "
                f"{state['entries']}/{state['assoc']} does not match "
                f"{self.entries}/{self.assoc}"
            )
        self.clear()
        self._clock = int(state["clock"])
        self.insertions = int(state["insertions"])
        self.evictions = int(state["evictions"])
        for raw_key, raw_payload, last_used in state["ways"]:
            key = decode_key(raw_key)
            self._sets[_set_index(key, self.num_sets)].append(
                _Way(
                    key=key,
                    payload=decode_payload(raw_payload),
                    last_used=int(last_used),
                )
            )
