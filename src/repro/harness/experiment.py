"""Experiment registry and result container.

Experiments register both a body and (optionally) a *work-unit
declaration*: a function mapping a scale to the deduplicated
``(benchmark, scale, config)`` grid the body will consume. The
declaration lets the :class:`~repro.harness.engine.ExperimentEngine`
make every unit resident — in parallel, or from the on-disk store —
before the body runs; the body's cache lookups then all hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import-time typing only
    from repro.harness.engine import ExperimentEngine, WorkUnit
    from repro.telemetry import Telemetry

#: A work-unit declaration: scale -> units the experiment will touch.
UnitsFn = Callable[[float], "Sequence[WorkUnit]"]


@dataclass
class ExperimentResult:
    """The output of one figure-reproduction experiment.

    ``tables`` holds rendered plain-text tables; ``data`` holds the raw
    numbers keyed by series name (used by tests and benchmarks to make
    assertions about the reproduced shapes).
    """

    name: str
    title: str
    tables: List[str] = field(default_factory=list)
    data: Dict[str, object] = field(default_factory=dict)

    @property
    def rendered(self) -> str:
        """All tables joined for display."""
        header = f"=== {self.name}: {self.title} ==="
        return "\n\n".join([header] + self.tables)


@dataclass(frozen=True)
class _Experiment:
    """A registered experiment: its body and unit declaration."""

    func: Callable[..., ExperimentResult]
    units: Optional[UnitsFn] = None


_REGISTRY: Dict[str, _Experiment] = {}


def register(name: str, units: Optional[UnitsFn] = None) -> Callable:
    """Decorator registering an experiment function under ``name``.

    ``units`` declares the work-unit grid the experiment consumes (see
    the module docstring); experiments without one — those that derive
    everything from configs alone, or bypass the caches — simply cannot
    be prefetched.
    """

    def wrap(func: Callable[..., ExperimentResult]) -> Callable:
        if name in _REGISTRY:
            raise ConfigurationError(f"experiment {name!r} already registered")
        _REGISTRY[name] = _Experiment(func=func, units=units)
        return func

    return wrap


def _lookup(name: str) -> _Experiment:
    # Importing figures lazily avoids a circular import at package load
    # and ensures the registry is populated.
    from repro.harness import figures  # noqa: F401

    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; expected one of "
            f"{sorted(_REGISTRY)}"
        ) from None


def experiment_work_units(
    names: "Sequence[str]", scale: float = 1.0
) -> "List[WorkUnit]":
    """The deduplicated work units of the named experiments, in
    declaration order (figures sharing a configuration share units)."""
    from repro.harness.engine import dedupe_units

    units: "List[WorkUnit]" = []
    for name in names:
        declared = _lookup(name).units
        if declared is not None:
            units.extend(declared(scale))
    return dedupe_units(units)


def run_experiment(
    name: str,
    scale: float = 1.0,
    telemetry: "Optional[Telemetry]" = None,
    engine: "Optional[ExperimentEngine]" = None,
) -> ExperimentResult:
    """Run a registered experiment by name.

    With an :class:`~repro.harness.engine.ExperimentEngine` the
    experiment's declared work units are made resident first (possibly
    in parallel, possibly from the on-disk store); the body then runs
    against warm caches. Results are identical with and without an
    engine — see ``tests/integration/test_parallel_crosscheck.py``.

    With a :class:`repro.telemetry.Telemetry` hub attached the run is
    wrapped in an ``experiment:<name>`` span, counted in
    ``repro_harness_experiments_total``, and bracketed by
    ``experiment_start``/``experiment_end`` events (or
    ``experiment_error`` if it raises).
    """
    entry = _lookup(name)
    func = entry.func
    if engine is not None and entry.units is not None:
        engine.ensure(entry.units(scale))
    if telemetry is None:
        return func(scale=scale)

    telemetry.metrics.counter(
        "repro_harness_experiments_total",
        "Experiments executed by the harness",
    ).inc()
    telemetry.emit("experiment_start", experiment=name, scale=scale)
    start = telemetry.tracer.clock()
    try:
        with telemetry.span(f"experiment:{name}"):
            result = func(scale=scale)
    except Exception as error:
        telemetry.metrics.counter(
            "repro_harness_experiment_errors_total",
            "Experiments that raised",
        ).inc()
        telemetry.emit(
            "experiment_error", experiment=name, error=repr(error)
        )
        raise
    telemetry.emit(
        "experiment_end",
        experiment=name,
        scale=scale,
        seconds=round(telemetry.tracer.clock() - start, 6),
        tables=len(result.tables),
    )
    return result


def experiment_names() -> List[str]:
    """All registered experiment names, in registration order."""
    from repro.harness import figures  # noqa: F401

    return list(_REGISTRY)


#: Canonical experiment names (populated on first registry access).
EXPERIMENT_NAMES = (
    "table1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "simpoint",
    "baselines",
    "hwbudget",
    "robustness",
)
