"""Experiment registry and result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.errors import ConfigurationError


@dataclass
class ExperimentResult:
    """The output of one figure-reproduction experiment.

    ``tables`` holds rendered plain-text tables; ``data`` holds the raw
    numbers keyed by series name (used by tests and benchmarks to make
    assertions about the reproduced shapes).
    """

    name: str
    title: str
    tables: List[str] = field(default_factory=list)
    data: Dict[str, object] = field(default_factory=dict)

    @property
    def rendered(self) -> str:
        """All tables joined for display."""
        header = f"=== {self.name}: {self.title} ==="
        return "\n\n".join([header] + self.tables)


_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}


def register(name: str) -> Callable:
    """Decorator registering an experiment function under ``name``."""

    def wrap(func: Callable[..., ExperimentResult]) -> Callable:
        if name in _REGISTRY:
            raise ConfigurationError(f"experiment {name!r} already registered")
        _REGISTRY[name] = func
        return func

    return wrap


def run_experiment(name: str, scale: float = 1.0) -> ExperimentResult:
    """Run a registered experiment by name."""
    # Importing figures lazily avoids a circular import at package load
    # and ensures the registry is populated.
    from repro.harness import figures  # noqa: F401

    try:
        func = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; expected one of "
            f"{sorted(_REGISTRY)}"
        ) from None
    return func(scale=scale)


def experiment_names() -> List[str]:
    """All registered experiment names, in registration order."""
    from repro.harness import figures  # noqa: F401

    return list(_REGISTRY)


#: Canonical experiment names (populated on first registry access).
EXPERIMENT_NAMES = (
    "table1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "simpoint",
    "baselines",
    "hwbudget",
    "robustness",
)
