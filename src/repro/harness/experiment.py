"""Experiment registry and result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import-time typing only
    from repro.telemetry import Telemetry


@dataclass
class ExperimentResult:
    """The output of one figure-reproduction experiment.

    ``tables`` holds rendered plain-text tables; ``data`` holds the raw
    numbers keyed by series name (used by tests and benchmarks to make
    assertions about the reproduced shapes).
    """

    name: str
    title: str
    tables: List[str] = field(default_factory=list)
    data: Dict[str, object] = field(default_factory=dict)

    @property
    def rendered(self) -> str:
        """All tables joined for display."""
        header = f"=== {self.name}: {self.title} ==="
        return "\n\n".join([header] + self.tables)


_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}


def register(name: str) -> Callable:
    """Decorator registering an experiment function under ``name``."""

    def wrap(func: Callable[..., ExperimentResult]) -> Callable:
        if name in _REGISTRY:
            raise ConfigurationError(f"experiment {name!r} already registered")
        _REGISTRY[name] = func
        return func

    return wrap


def run_experiment(
    name: str,
    scale: float = 1.0,
    telemetry: "Optional[Telemetry]" = None,
) -> ExperimentResult:
    """Run a registered experiment by name.

    With a :class:`repro.telemetry.Telemetry` hub attached the run is
    wrapped in an ``experiment:<name>`` span, counted in
    ``repro_harness_experiments_total``, and bracketed by
    ``experiment_start``/``experiment_end`` events (or
    ``experiment_error`` if it raises).
    """
    # Importing figures lazily avoids a circular import at package load
    # and ensures the registry is populated.
    from repro.harness import figures  # noqa: F401

    try:
        func = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; expected one of "
            f"{sorted(_REGISTRY)}"
        ) from None
    if telemetry is None:
        return func(scale=scale)

    telemetry.metrics.counter(
        "repro_harness_experiments_total",
        "Experiments executed by the harness",
    ).inc()
    telemetry.emit("experiment_start", experiment=name, scale=scale)
    start = telemetry.tracer.clock()
    try:
        with telemetry.span(f"experiment:{name}"):
            result = func(scale=scale)
    except Exception as error:
        telemetry.metrics.counter(
            "repro_harness_experiment_errors_total",
            "Experiments that raised",
        ).inc()
        telemetry.emit(
            "experiment_error", experiment=name, error=repr(error)
        )
        raise
    telemetry.emit(
        "experiment_end",
        experiment=name,
        scale=scale,
        seconds=round(telemetry.tracer.clock() - start, 6),
        tables=len(result.tables),
    )
    return result


def experiment_names() -> List[str]:
    """All registered experiment names, in registration order."""
    from repro.harness import figures  # noqa: F401

    return list(_REGISTRY)


#: Canonical experiment names (populated on first registry access).
EXPERIMENT_NAMES = (
    "table1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "simpoint",
    "baselines",
    "hwbudget",
    "robustness",
)
