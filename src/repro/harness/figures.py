"""One experiment per paper table/figure.

Every experiment runs all eleven benchmark models, reproduces the
figure's series, and returns an :class:`ExperimentResult` whose
``data`` dictionary carries the raw numbers (used by the test suite and
benchmark harness to assert the paper's shapes). See DESIGN.md §4 for
the per-experiment index and shape targets.

Each experiment *declares* its configuration grid as module-level
constants and registers the corresponding work units (``units=`` on
:func:`~repro.harness.experiment.register`), so the
:class:`~repro.harness.engine.ExperimentEngine` can compute the whole
grid — deduplicated across experiments — in parallel and/or from the
on-disk store before any body runs. Bodies still read through
:func:`~repro.harness.cache.cached_trace` /
:func:`~repro.harness.cache.cached_classified`; after a prefetch those
are pure lookups.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.cov import weighted_cov
from repro.analysis.phase_stats import phase_length_summary
from repro.analysis.prediction_stats import (
    aggregate_change,
    aggregate_next_phase,
)
from repro.analysis.runs import extract_runs, run_length_histogram
from repro.analysis.tables import render_table
from repro.core import ClassifierConfig
from repro.harness.cache import cached_classified, cached_trace
from repro.harness.engine import WorkUnit
from repro.harness.experiment import ExperimentResult, register
from repro.prediction import (
    CompositePhasePredictor,
    MarkovChangePredictor,
    PerfectMarkovPredictor,
    PhaseLengthPredictor,
    RLEChangePredictor,
    evaluate_change_predictor,
)
from repro.prediction.change_eval import CHANGE_CATEGORIES
from repro.prediction.composite import CATEGORIES as NEXT_CATEGORIES
from repro.prediction.length import LENGTH_CLASS_LABELS
from repro.simulator import MachineConfig
from repro.workloads import BENCHMARK_NAMES


def _covs_and_phases(
    config: ClassifierConfig, scale: float
) -> "tuple[List[float], List[int], List[float]]":
    """Per-benchmark weighted CoV, phase count, transition fraction."""
    covs, phases, transitions = [], [], []
    for name in BENCHMARK_NAMES:
        trace = cached_trace(name, scale)
        run = cached_classified(name, config, scale)
        covs.append(weighted_cov(run, trace))
        phases.append(run.num_phases)
        transitions.append(run.transition_fraction)
    return covs, phases, transitions


def _grid_units(
    scale: float,
    configs: "Sequence[ClassifierConfig]" = (),
    traces: bool = True,
) -> List[WorkUnit]:
    """The (benchmark x config) work-unit grid of one experiment."""
    units: List[WorkUnit] = []
    if traces:
        units.extend(WorkUnit(name, scale) for name in BENCHMARK_NAMES)
    for config in configs:
        units.extend(
            WorkUnit(name, scale, config) for name in BENCHMARK_NAMES
        )
    return units


#: The stable-phase study configuration shared by fig5, the SimPoint
#: comparison, and the related-work baselines (25% similarity, min-8).
_STABLE_CONFIG = ClassifierConfig(
    num_counters=16,
    table_entries=32,
    similarity_threshold=0.25,
    min_count_threshold=8,
)

#: The final §5.1 configuration driving all prediction figures (7-9).
_PAPER_CONFIG = ClassifierConfig.paper_default()


# ---------------------------------------------------------------------------
# Table 1 — the machine model
# ---------------------------------------------------------------------------


@register("table1", units=_grid_units)
def table1(scale: float = 1.0) -> ExperimentResult:
    """Baseline simulation model sanity (paper Table 1).

    Verifies the configured structures match Table 1 and reports the
    calibrated per-region CPI range of each benchmark — the substrate
    the CoV metric stands on.
    """
    config = MachineConfig.table1()
    rows = [
        ("I Cache", f"{config.il1.size_bytes // 1024}k "
                    f"{config.il1.assoc}-way, {config.il1.block_bytes}B"),
        ("D Cache", f"{config.dl1.size_bytes // 1024}k "
                    f"{config.dl1.assoc}-way, {config.dl1.block_bytes}B"),
        ("L2 Cache", f"{config.l2.size_bytes // 1024}K "
                     f"{config.l2.assoc}-way, {config.l2.block_bytes}B, "
                     f"{config.timings.l2_hit_latency} cyc"),
        ("Main Memory", f"{config.timings.memory_latency} cycle latency"),
        ("Branch Pred", f"hybrid - {config.gshare_history_bits}-bit gshare "
                        f"w/ {config.gshare_entries} 2-bit + "
                        f"{config.bimodal_entries} bimodal"),
        ("O-O-O Issue", f"{config.timings.issue_width}-wide, "
                        f"{config.timings.rob_entries} entry ROB"),
        ("Virtual Mem", f"{config.tlb.page_bytes // 1024}K pages, "
                        f"{config.tlb.miss_latency_cycles} cycle TLB miss"),
    ]
    lines = ["Baseline Simulation Model"]
    lines += [f"  {k:12s} {v}" for k, v in rows]

    cpi_min: List[float] = []
    cpi_max: List[float] = []
    for name in BENCHMARK_NAMES:
        cpis = cached_trace(name, scale).metadata["region_cpis"]
        cpi_min.append(min(cpis))
        cpi_max.append(max(cpis))
    table = render_table(
        "Calibrated region CPI range per benchmark",
        list(BENCHMARK_NAMES),
        {"min CPI": cpi_min, "max CPI": cpi_max},
        digits=2,
    )
    return ExperimentResult(
        name="table1",
        title="Baseline Simulation Model",
        tables=["\n".join(lines), table],
        data={"cpi_min": cpi_min, "cpi_max": cpi_max},
    )


# ---------------------------------------------------------------------------
# Figure 2 — signature table size
# ---------------------------------------------------------------------------


#: Figure 2 grid: label -> config (table entries 16/32/64/infinite).
_FIG2_CONFIGS = {
    label: ClassifierConfig(
        num_counters=32,
        table_entries=size,
        similarity_threshold=0.125,
        min_count_threshold=0,
    )
    for label, size in (
        ("16 entry", 16), ("32 entry", 32), ("64 entry", 64),
        ("inf entry", None),
    )
}


@register(
    "fig2",
    units=lambda scale: _grid_units(scale, _FIG2_CONFIGS.values()),
)
def fig2(scale: float = 1.0) -> ExperimentResult:
    """CPI CoV and phase counts vs signature-table entries (Figure 2).

    32 counters, 12.5% similarity, no transition phase; table entries
    16 / 32 / 64 / infinite with LRU replacement. Expected shape: a
    finite table inflates the number of phases dramatically (signatures
    lost to replacement); CoV rises slightly with more entries.
    """
    cov_columns: Dict[str, List[float]] = {}
    phase_columns: Dict[str, List[float]] = {}
    for label, config in _FIG2_CONFIGS.items():
        covs, phases, _ = _covs_and_phases(config, scale)
        cov_columns[label] = [c * 100 for c in covs]
        phase_columns[label] = phases
    tables = [
        render_table(
            "CPI CoV (%) vs signature table entries",
            list(BENCHMARK_NAMES), cov_columns,
        ),
        render_table(
            "Number of phases vs signature table entries",
            list(BENCHMARK_NAMES), phase_columns, digits=0,
        ),
    ]
    return ExperimentResult(
        name="fig2",
        title="Signature table size (CoV of CPI, number of phases)",
        tables=tables,
        data={"cov": cov_columns, "phases": phase_columns},
    )


# ---------------------------------------------------------------------------
# Figure 3 — number of accumulator counters
# ---------------------------------------------------------------------------


#: Figure 3 grid: label -> config (8/16/32/64 signature counters).
_FIG3_CONFIGS = {
    f"{dim} dim": ClassifierConfig(
        num_counters=dim,
        table_entries=32,
        similarity_threshold=0.125,
        min_count_threshold=0,
    )
    for dim in (8, 16, 32, 64)
}


@register(
    "fig3",
    units=lambda scale: _grid_units(scale, _FIG3_CONFIGS.values()),
)
def fig3(scale: float = 1.0) -> ExperimentResult:
    """CPI CoV and phase counts vs counters per signature (Figure 3).

    8 / 16 / 32 / 64 counters, 32-entry table, 12.5% similarity. The
    'Whole Program' column is the CoV over all intervals with no phase
    classification at all. Expected shape: 8 counters classify poorly
    (CoV far above the 16+ configurations); whole-program CoV is many
    times the per-phase CoV.
    """
    cov_columns: Dict[str, List[float]] = {}
    phase_columns: Dict[str, List[float]] = {}
    for label, config in _FIG3_CONFIGS.items():
        covs, phases, _ = _covs_and_phases(config, scale)
        cov_columns[label] = [c * 100 for c in covs]
        phase_columns[label] = phases
    cov_columns["Whole Program"] = [
        cached_trace(name, scale).whole_program_cov() * 100
        for name in BENCHMARK_NAMES
    ]
    tables = [
        render_table(
            "CPI CoV (%) vs number of signature counters",
            list(BENCHMARK_NAMES), cov_columns,
        ),
        render_table(
            "Number of phases vs number of signature counters",
            list(BENCHMARK_NAMES), phase_columns, digits=0,
        ),
    ]
    return ExperimentResult(
        name="fig3",
        title="Signature counters / dimensions (CoV of CPI, phases)",
        tables=tables,
        data={"cov": cov_columns, "phases": phase_columns},
    )


# ---------------------------------------------------------------------------
# Figure 4 — the transition phase
# ---------------------------------------------------------------------------

#: Figure 4 grid: label -> config (similarity x min-count cross).
_FIG4_CONFIGS = {
    f"{threshold * 100:g}% similar+{min_count} min": ClassifierConfig(
        num_counters=16,
        table_entries=32,
        similarity_threshold=threshold,
        min_count_threshold=min_count,
    )
    for threshold, min_count in (
        (0.125, 0), (0.125, 4), (0.125, 8), (0.25, 4), (0.25, 8),
    )
}


@register(
    "fig4",
    units=lambda scale: _grid_units(scale, _FIG4_CONFIGS.values()),
)
def fig4(scale: float = 1.0) -> ExperimentResult:
    """Transition-phase evaluation (Figure 4).

    Similarity 12.5% / 25% crossed with min-count 0 / 4 / 8. Four
    series: CPI CoV, number of phases, % of intervals classified into
    the transition phase, and the last-value phase misprediction rate.
    Expected shape: min-count 8 cuts phase counts from hundreds to
    tens, transition time is modest (gcc worst), and mispredictions
    drop relative to the min-count-0 baseline.
    """
    cov_columns: Dict[str, List[float]] = {}
    phase_columns: Dict[str, List[float]] = {}
    transition_columns: Dict[str, List[float]] = {}
    mispredict_columns: Dict[str, List[float]] = {}
    for label, config in _FIG4_CONFIGS.items():
        covs, phases, transitions = _covs_and_phases(config, scale)
        cov_columns[label] = [c * 100 for c in covs]
        phase_columns[label] = phases
        transition_columns[label] = [t * 100 for t in transitions]
        rates = []
        for name in BENCHMARK_NAMES:
            run = cached_classified(name, config, scale)
            stats = CompositePhasePredictor(None).run(run.phase_ids)
            rates.append((1.0 - stats.accuracy) * 100)
        mispredict_columns[label] = rates
    tables = [
        render_table("CPI CoV (%)", list(BENCHMARK_NAMES), cov_columns),
        render_table(
            "Number of phases", list(BENCHMARK_NAMES), phase_columns,
            digits=0,
        ),
        render_table(
            "Transition time (%)", list(BENCHMARK_NAMES),
            transition_columns,
        ),
        render_table(
            "Last-value misprediction rate (%)", list(BENCHMARK_NAMES),
            mispredict_columns,
        ),
    ]
    return ExperimentResult(
        name="fig4",
        title="Stable and transition phases (similarity x min-count)",
        tables=tables,
        data={
            "cov": cov_columns,
            "phases": phase_columns,
            "transition_time": transition_columns,
            "lv_mispredict": mispredict_columns,
        },
    )


# ---------------------------------------------------------------------------
# Figure 5 — stable and transition phase lengths
# ---------------------------------------------------------------------------


@register(
    "fig5",
    units=lambda scale: _grid_units(scale, (_STABLE_CONFIG,)),
)
def fig5(scale: float = 1.0) -> ExperimentResult:
    """Average stable / transition phase lengths (Figure 5).

    Uses the 25%+min-8 classifier. Expected shape: stable runs are much
    longer than transition runs for every benchmark, with larger
    variability; gzip/g and perl/d have exceptionally long stable runs.
    """
    config = _STABLE_CONFIG
    stable_mean, stable_std, trans_mean, trans_std = [], [], [], []
    for name in BENCHMARK_NAMES:
        run = cached_classified(name, config, scale)
        summary = phase_length_summary(run.phase_ids)
        stable_mean.append(summary.stable_mean)
        stable_std.append(summary.stable_std)
        trans_mean.append(summary.transition_mean)
        trans_std.append(summary.transition_std)
    table = render_table(
        "Average phase lengths (intervals of 10M instructions)",
        list(BENCHMARK_NAMES),
        {
            "stable": stable_mean,
            "stable dev": stable_std,
            "trans": trans_mean,
            "trans dev": trans_std,
        },
    )
    return ExperimentResult(
        name="fig5",
        title="Average stable and transition run lengths",
        tables=[table],
        data={
            "stable_mean": stable_mean,
            "stable_std": stable_std,
            "transition_mean": trans_mean,
            "transition_std": trans_std,
        },
    )


# ---------------------------------------------------------------------------
# Figure 6 — adaptive (dynamic) similarity thresholds
# ---------------------------------------------------------------------------

#: Figure 6 grid: label -> config (static vs dynamic thresholds).
_FIG6_CONFIGS = {
    label: ClassifierConfig(
        num_counters=16,
        table_entries=32,
        similarity_threshold=threshold,
        min_count_threshold=8,
        perf_dev_threshold=deviation,
    )
    for label, threshold, deviation in (
        ("25% static", 0.25, None),
        ("12.5% static", 0.125, None),
        ("25% dyn+50% dev", 0.25, 0.50),
        ("25% dyn+25% dev", 0.25, 0.25),
        ("25% dyn+12.5% dev", 0.25, 0.125),
    )
}


@register(
    "fig6",
    units=lambda scale: _grid_units(scale, _FIG6_CONFIGS.values()),
)
def fig6(scale: float = 1.0) -> ExperimentResult:
    """Adaptive threshold evaluation (Figure 6).

    Static 25% and 12.5% thresholds vs dynamic thresholds starting at
    25% with performance-deviation triggers of 50% / 25% / 12.5%.
    Expected shape: dynamic thresholds lower CoV versus static 25% with
    only modest increases in phases and transition time; benchmarks
    with CPI sub-modes (mcf, perl/s) benefit most, while benchmarks
    like gzip/g and galgel are nearly unaffected.
    """
    cov_columns: Dict[str, List[float]] = {}
    phase_columns: Dict[str, List[float]] = {}
    transition_columns: Dict[str, List[float]] = {}
    for label, config in _FIG6_CONFIGS.items():
        covs, phases, transitions = _covs_and_phases(config, scale)
        cov_columns[label] = [c * 100 for c in covs]
        phase_columns[label] = phases
        transition_columns[label] = [t * 100 for t in transitions]
    tables = [
        render_table("CPI CoV (%)", list(BENCHMARK_NAMES), cov_columns),
        render_table(
            "Number of phases", list(BENCHMARK_NAMES), phase_columns,
            digits=0,
        ),
        render_table(
            "Transition time (%)", list(BENCHMARK_NAMES),
            transition_columns,
        ),
    ]
    return ExperimentResult(
        name="fig6",
        title="Dynamic similarity thresholds (phase splitting)",
        tables=tables,
        data={
            "cov": cov_columns,
            "phases": phase_columns,
            "transition_time": transition_columns,
        },
    )


# ---------------------------------------------------------------------------
# Figure 7 — next phase prediction
# ---------------------------------------------------------------------------


#: The Figure 7 predictor roster: label -> factory (None = last value).
NEXT_PHASE_ROSTER = {
    "Last Value": lambda: None,
    "Markov 1": lambda: MarkovChangePredictor(1),
    "Markov 2": lambda: MarkovChangePredictor(2),
    "Last4 Markov 1": lambda: MarkovChangePredictor(1, entry_kind="last4"),
    "Last4 Markov 2": lambda: MarkovChangePredictor(2, entry_kind="last4"),
    "Markov 2 No Table Conf": lambda: MarkovChangePredictor(
        2, use_confidence=False
    ),
    "RLE-1": lambda: RLEChangePredictor(1),
    "RLE-2": lambda: RLEChangePredictor(2),
    "Last4 RLE-1": lambda: RLEChangePredictor(1, entry_kind="last4"),
    "Last4 RLE-2": lambda: RLEChangePredictor(2, entry_kind="last4"),
    "RLE-2 No Conf": lambda: RLEChangePredictor(2, use_confidence=False),
}


@register(
    "fig7",
    units=lambda scale: _grid_units(scale, (_PAPER_CONFIG,)),
)
def fig7(scale: float = 1.0) -> ExperimentResult:
    """Next-interval phase prediction (Figure 7).

    The §5.1 classifier feeds each predictor; bars decompose into the
    paper's six categories. Expected shape: last value is already
    strong (stable phases dominate); change-table predictors add only a
    small correct-table segment; confidence trades coverage for
    accuracy.
    """
    config = _PAPER_CONFIG
    columns: Dict[str, List[float]] = {c: [] for c in NEXT_CATEGORIES}
    accuracy, conf_accuracy, coverage = [], [], []
    labels = []
    per_benchmark_accuracy: Dict[str, List[float]] = {}
    for label, factory in NEXT_PHASE_ROSTER.items():
        per_bench = []
        for name in BENCHMARK_NAMES:
            run = cached_classified(name, config, scale)
            predictor = CompositePhasePredictor(factory())
            per_bench.append(predictor.run(run.phase_ids))
        per_benchmark_accuracy[label] = [
            s.accuracy * 100 for s in per_bench
        ]
        total = aggregate_next_phase(per_bench)
        fractions = total.fractions()
        labels.append(label)
        for category in NEXT_CATEGORIES:
            columns[category].append(fractions[category] * 100)
        accuracy.append(total.accuracy * 100)
        conf_accuracy.append(total.confident_accuracy * 100)
        coverage.append(total.coverage * 100)

    table = render_table(
        "Next phase prediction (% of predictions, all benchmarks)",
        labels,
        {**columns, "accuracy": accuracy, "conf acc": conf_accuracy,
         "coverage": coverage},
        average_row=False,
    )
    per_bench_table = render_table(
        "Per-benchmark accuracy (%) of key predictors",
        list(BENCHMARK_NAMES),
        {
            label: per_benchmark_accuracy[label]
            for label in ("Last Value", "Markov 2", "RLE-2")
        },
    )
    return ExperimentResult(
        name="fig7",
        title="Next phase prediction",
        tables=[table, per_bench_table],
        data={
            "labels": labels,
            "categories": {k: v for k, v in columns.items()},
            "accuracy": accuracy,
            "confident_accuracy": conf_accuracy,
            "coverage": coverage,
            "per_benchmark_accuracy": per_benchmark_accuracy,
        },
    )


# ---------------------------------------------------------------------------
# Figure 8 — phase change prediction
# ---------------------------------------------------------------------------


#: The Figure 8 predictor roster: label -> factory.
CHANGE_ROSTER = {
    "128 Entry Markov 2": lambda: MarkovChangePredictor(2, entries=128),
    "Markov 2": lambda: MarkovChangePredictor(2),
    "Last4 Markov 2": lambda: MarkovChangePredictor(2, entry_kind="last4"),
    "Last4 Markov 1": lambda: MarkovChangePredictor(1, entry_kind="last4"),
    "Top 1 Markov 2": lambda: MarkovChangePredictor(2, entry_kind="top1"),
    "Top 4 Markov 1": lambda: MarkovChangePredictor(1, entry_kind="top4"),
    "Top 4 Markov 2": lambda: MarkovChangePredictor(2, entry_kind="top4"),
    "128 Entry RLE-2": lambda: RLEChangePredictor(2, entries=128),
    "RLE-2": lambda: RLEChangePredictor(2),
    "Last4 RLE-2": lambda: RLEChangePredictor(2, entry_kind="last4"),
    "Last4 RLE-1": lambda: RLEChangePredictor(1, entry_kind="last4"),
    "Top 1 RLE-2": lambda: RLEChangePredictor(2, entry_kind="top1"),
    "Top 4 RLE-1": lambda: RLEChangePredictor(1, entry_kind="top4"),
    "Top 4 RLE-2": lambda: RLEChangePredictor(2, entry_kind="top4"),
    "Perfect Markov 1": lambda: PerfectMarkovPredictor(1),
    "Perfect Markov 2": lambda: PerfectMarkovPredictor(2),
}


@register(
    "fig8",
    units=lambda scale: _grid_units(scale, (_PAPER_CONFIG,)),
)
def fig8(scale: float = 1.0) -> ExperimentResult:
    """Phase change prediction (Figure 8).

    Evaluated over phase-change points only. Expected shape: plain
    Markov/RLE predict a minority of changes; Last-4/Top-N variants
    reach roughly half; Perfect Markov-1 bounds everything (cold-start
    misses only); confidence trims mispredictions at the cost of
    coverage.
    """
    config = _PAPER_CONFIG
    roster = list(CHANGE_ROSTER)
    columns: Dict[str, List[float]] = {c: [] for c in CHANGE_CATEGORIES}
    accuracy = []
    per_benchmark_accuracy: Dict[str, List[float]] = {}
    for label in roster:
        per_bench = []
        for name in BENCHMARK_NAMES:
            run = cached_classified(name, config, scale)
            predictor = CHANGE_ROSTER[label]()
            per_bench.append(
                evaluate_change_predictor(run.phase_ids, predictor)
            )
        per_benchmark_accuracy[label] = [
            s.accuracy * 100 for s in per_bench
        ]
        total = aggregate_change(per_bench)
        fractions = total.fractions()
        for category in CHANGE_CATEGORIES:
            columns[category].append(fractions[category] * 100)
        accuracy.append(total.accuracy * 100)

    table = render_table(
        "Phase change prediction (% of phase changes, all benchmarks)",
        roster,
        {**columns, "accuracy": accuracy},
        average_row=False,
    )
    return ExperimentResult(
        name="fig8",
        title="Phase change prediction",
        tables=[table],
        data={
            "labels": roster,
            "categories": columns,
            "accuracy": accuracy,
            "per_benchmark_accuracy": per_benchmark_accuracy,
        },
    )


# ---------------------------------------------------------------------------
# Figure 9 — phase length classes and length prediction
# ---------------------------------------------------------------------------


@register(
    "fig9",
    units=lambda scale: _grid_units(scale, (_PAPER_CONFIG,)),
)
def fig9(scale: float = 1.0) -> ExperimentResult:
    """Run-length class distribution and length prediction (Figure 9).

    Left: share of phase runs (all phases, including transition) in
    each of the four length classes. Right: misprediction rate of the
    32-entry 4-way RLE-2 length-class predictor with hysteresis.
    Expected shape: the shortest class dominates for most programs;
    misprediction rates are low overall.
    """
    config = _PAPER_CONFIG
    class_columns: Dict[str, List[float]] = {
        label: [] for label in LENGTH_CLASS_LABELS
    }
    mispredictions: List[float] = []
    for name in BENCHMARK_NAMES:
        run = cached_classified(name, config, scale)
        runs = extract_runs(run.phase_ids)
        histogram = run_length_histogram(runs, (1, 16, 128, 1024))
        total = histogram.sum() or 1
        for label, count in zip(LENGTH_CLASS_LABELS, histogram):
            class_columns[label].append(count / total * 100)
        predictor = PhaseLengthPredictor()
        for phase_id in run.phase_ids:
            predictor.advance(int(phase_id))
        mispredictions.append(predictor.stats.misprediction_rate * 100)
    tables = [
        render_table(
            "Percentage of run lengths per class",
            list(BENCHMARK_NAMES), class_columns,
        ),
        render_table(
            "Run-length class misprediction rate (%)",
            list(BENCHMARK_NAMES), {"RLE-2": mispredictions},
        ),
    ]
    return ExperimentResult(
        name="fig9",
        title="Phase length classes and length prediction",
        tables=tables,
        data={
            "class_distribution": class_columns,
            "misprediction": mispredictions,
        },
    )


# ---------------------------------------------------------------------------
# Extension: online vs SimPoint offline classification (paper §4.4 claim)
# ---------------------------------------------------------------------------


@register(
    "simpoint",
    units=lambda scale: _grid_units(scale, (_STABLE_CONFIG,)),
)
def simpoint_comparison(scale: float = 1.0) -> ExperimentResult:
    """Online classifier vs the offline SimPoint algorithm (§4.4).

    The paper prefers the 25% similarity / min-count-8 configuration
    partly because "the resulting CPI CoV and number of phases produced
    are comparable to the results of the offline phase classification
    algorithm used in SimPoint". This experiment quantifies that claim:
    per benchmark, the weighted CoV and phase count of the online
    classifier against a from-scratch SimPoint (projected-BBV k-means
    with BIC model selection), plus SimPoint's whole-program CPI
    estimation error from its simulation points.
    """
    from repro.analysis.cov import cov_of
    from repro.offline import SimPointClassifier

    config = _STABLE_CONFIG
    online_cov, online_phases = [], []
    offline_cov, offline_phases, estimate_error = [], [], []
    for name in BENCHMARK_NAMES:
        trace = cached_trace(name, scale)
        run = cached_classified(name, config, scale)
        online_cov.append(weighted_cov(run, trace) * 100)
        online_phases.append(run.num_phases)

        classification = SimPointClassifier(max_k=15).classify(trace)
        cpis = trace.cpis
        total = 0.0
        for _, indices in classification.phase_interval_indices().items():
            total += indices.size / len(trace) * cov_of(cpis[indices])
        offline_cov.append(total * 100)
        offline_phases.append(classification.k)
        estimate = classification.estimate_mean(cpis)
        estimate_error.append(
            abs(estimate - float(cpis.mean())) / float(cpis.mean()) * 100
        )

    tables = [
        render_table(
            "CPI CoV (%): online (25%+8 min) vs SimPoint offline",
            list(BENCHMARK_NAMES),
            {"online": online_cov, "SimPoint": offline_cov},
        ),
        render_table(
            "Number of phases: online vs SimPoint",
            list(BENCHMARK_NAMES),
            {"online": online_phases, "SimPoint": offline_phases},
            digits=0,
        ),
        render_table(
            "SimPoint whole-program CPI estimation error (%)",
            list(BENCHMARK_NAMES),
            {"error": estimate_error},
        ),
    ]
    return ExperimentResult(
        name="simpoint",
        title="Online classification vs offline SimPoint",
        tables=tables,
        data={
            "online_cov": online_cov,
            "offline_cov": offline_cov,
            "online_phases": online_phases,
            "offline_phases": offline_phases,
            "estimate_error": estimate_error,
        },
    )


# ---------------------------------------------------------------------------
# Extension: related-work baselines (paper §2)
# ---------------------------------------------------------------------------


@register(
    "baselines",
    units=lambda scale: _grid_units(scale, (_STABLE_CONFIG,)),
)
def baselines_comparison(scale: float = 1.0) -> ExperimentResult:
    """Code-signature classification and phase-ID metric prediction vs
    the related-work baselines the paper discusses in §2.

    Left: weighted CPI CoV of this paper's classifier against Dhodapkar
    & Smith's working-set signature detector. Right: next-interval CPI
    prediction error (MAPE) of Duesterwald-style value predictors
    against prediction through the phase-ID stream.
    """
    from repro.baselines import (
        EWMAPredictor,
        HistoryTablePredictor,
        LastValueMetricPredictor,
        PhaseBasedMetricPredictor,
        WorkingSetClassifier,
        evaluate_metric_predictor,
    )

    config = _STABLE_CONFIG
    ours_cov, ws_cov = [], []
    ours_phases, ws_phases = [], []
    mape = {"last value": [], "EWMA": [], "history table": [],
            "phase-based": []}
    for name in BENCHMARK_NAMES:
        trace = cached_trace(name, scale)
        run = cached_classified(name, config, scale)
        ours_cov.append(weighted_cov(run, trace) * 100)
        ours_phases.append(run.num_phases)

        ws_run = WorkingSetClassifier().classify_trace(trace)
        ws_cov.append(weighted_cov(ws_run, trace) * 100)
        ws_phases.append(ws_run.num_phases)

        cpis = trace.cpis
        ids = run.phase_ids
        mape["last value"].append(
            evaluate_metric_predictor(
                cpis, LastValueMetricPredictor()
            ).mape * 100
        )
        mape["EWMA"].append(
            evaluate_metric_predictor(cpis, EWMAPredictor(0.5)).mape * 100
        )
        mape["history table"].append(
            evaluate_metric_predictor(
                cpis, HistoryTablePredictor()
            ).mape * 100
        )
        mape["phase-based"].append(
            evaluate_metric_predictor(
                cpis, PhaseBasedMetricPredictor(), phase_ids=ids
            ).mape * 100
        )

    tables = [
        render_table(
            "CPI CoV (%): accumulator signatures vs working sets",
            list(BENCHMARK_NAMES),
            {"this paper": ours_cov, "working set": ws_cov},
        ),
        render_table(
            "Number of phases",
            list(BENCHMARK_NAMES),
            {"this paper": ours_phases, "working set": ws_phases},
            digits=0,
        ),
        render_table(
            "Next-interval CPI prediction error, MAPE (%)",
            list(BENCHMARK_NAMES),
            mape,
        ),
    ]
    return ExperimentResult(
        name="baselines",
        title="Related-work baselines (working sets, value prediction)",
        tables=tables,
        data={
            "ours_cov": ours_cov,
            "working_set_cov": ws_cov,
            "ours_phases": ours_phases,
            "working_set_phases": ws_phases,
            "mape": mape,
        },
    )


# ---------------------------------------------------------------------------
# Extension: hardware storage budget (the §4.1 implementability claim)
# ---------------------------------------------------------------------------


@register("hwbudget")
def hardware_budget(scale: float = 1.0) -> ExperimentResult:
    """SRAM cost of every architecture variant the paper evaluates.

    The paper's premise is that phase tracking needs "only a small
    fixed amount of storage" (§4.1). This experiment itemizes the bits:
    the baseline classifier, the final §5.1 configuration with adaptive
    thresholds, and the full architecture including the phase-change
    and length prediction tables.
    """
    from repro.analysis.hardware import (
        classifier_budget,
        full_architecture_budget,
        predictor_budget,
    )

    rows = []
    baseline = ClassifierConfig(
        num_counters=32, table_entries=32,
        similarity_threshold=0.125, min_count_threshold=0,
    )
    default = ClassifierConfig.paper_default()
    variants = [
        ("prior-work baseline (32 ctr)", classifier_budget(baseline)),
        ("this paper (16 ctr, min-8)", classifier_budget(
            ClassifierConfig(num_counters=16, table_entries=32,
                             similarity_threshold=0.25,
                             min_count_threshold=8))),
        ("+ adaptive thresholds", classifier_budget(default)),
        ("change table (32x4, single)", predictor_budget()),
        ("change table (Top-4)", predictor_budget(outcomes_per_entry=4)),
        ("length table (RLE-2+hyst)", predictor_budget(
            length_predictor=True)),
        ("full architecture", full_architecture_budget(default)),
    ]
    labels = [label for label, _ in variants]
    bits = [budget.total_bits for _, budget in variants]
    bytes_ = [budget.total_bytes for _, budget in variants]
    table = render_table(
        "Hardware storage budget",
        labels,
        {"bits": bits, "bytes": bytes_},
        digits=0,
        average_row=False,
    )
    return ExperimentResult(
        name="hwbudget",
        title="Hardware storage budget of the architecture",
        tables=[table],
        data={"labels": labels, "bits": bits, "bytes": bytes_},
    )


# ---------------------------------------------------------------------------
# Extension: robustness of conclusions to workload randomness
# ---------------------------------------------------------------------------


@register("robustness")
def robustness(scale: float = 1.0, seeds: int = 3) -> ExperimentResult:
    """Seed sensitivity of the headline results.

    The workloads are synthetic, so every conclusion should survive
    re-rolling their random structure. This experiment regenerates a
    subset of benchmarks under several seeds and reports the spread of
    the three headline metrics (weighted CoV, phase count, transition
    time) under the 25%+min-8 classifier, plus whether the fig4 claim
    (min-count 8 slashes phase counts) holds for every seed.
    """
    from repro.workloads import benchmark as make_benchmark
    from repro.core import PhaseClassifier

    names = ("bzip2/g", "gcc/s", "mcf")
    config = ClassifierConfig(
        num_counters=16, table_entries=32,
        similarity_threshold=0.25, min_count_threshold=8,
    )
    baseline = ClassifierConfig(
        num_counters=16, table_entries=32,
        similarity_threshold=0.125, min_count_threshold=0,
    )

    rows = []
    cov_spread, phase_spread, claim_holds = [], [], []
    for name in names:
        covs, phases, transitions, claims = [], [], [], []
        for seed_offset in range(seeds):
            seed = None if seed_offset == 0 else 9000 + seed_offset
            trace = make_benchmark(name, scale=scale, seed=seed)
            run = PhaseClassifier(config).classify_trace(trace)
            base_run = PhaseClassifier(baseline).classify_trace(trace)
            covs.append(weighted_cov(run, trace) * 100)
            phases.append(run.num_phases)
            transitions.append(run.transition_fraction * 100)
            claims.append(run.num_phases < base_run.num_phases)
        rows.append((name, covs, phases, transitions))
        cov_spread.append(max(covs) - min(covs))
        phase_spread.append(max(phases) - min(phases))
        claim_holds.append(all(claims))

    lines = [f"Seed robustness over {seeds} seeds (25%+8 classifier)"]
    for name, covs, phases, transitions in rows:
        lines.append(
            f"  {name:8s} CoV% {min(covs):5.1f}-{max(covs):5.1f}  "
            f"phases {min(phases):3d}-{max(phases):3d}  "
            f"transition% {min(transitions):4.1f}-{max(transitions):4.1f}"
        )
    lines.append(
        "  fig4 claim (min-8 < baseline phases) holds for every seed: "
        + ("yes" if all(claim_holds) else "NO")
    )
    return ExperimentResult(
        name="robustness",
        title="Robustness of conclusions to workload seeds",
        tables=["\n".join(lines)],
        data={
            "names": list(names),
            "cov_spread": cov_spread,
            "phase_spread": phase_spread,
            "claim_holds": claim_holds,
        },
    )
