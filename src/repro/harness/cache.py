"""Per-process caches for generated traces and classification runs.

Trace generation (region calibration against the machine model plus
per-interval sampling) costs a second or two per benchmark; every
figure needs all eleven benchmarks, so traces are memoized per
``(benchmark, scale)``. Classification runs are additionally memoized
per classifier configuration — several figures share configurations.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

from repro.core import ClassificationRun, ClassifierConfig, PhaseClassifier
from repro.workloads import benchmark
from repro.workloads.trace import IntervalTrace


@lru_cache(maxsize=None)
def cached_trace(name: str, scale: float = 1.0) -> IntervalTrace:
    """Generate (or return the memoized) trace for a benchmark."""
    return benchmark(name, scale=scale)


def _config_key(config: ClassifierConfig) -> Tuple:
    return (
        config.num_counters,
        config.bits_per_counter,
        config.table_entries,
        config.similarity_threshold,
        config.min_count_threshold,
        config.match_policy,
        config.bit_selector,
        config.static_low_bit,
        config.perf_dev_threshold,
    )


@lru_cache(maxsize=None)
def _cached_classified(
    name: str, scale: float, key: Tuple
) -> ClassificationRun:
    config = ClassifierConfig(
        num_counters=key[0],
        bits_per_counter=key[1],
        table_entries=key[2],
        similarity_threshold=key[3],
        min_count_threshold=key[4],
        match_policy=key[5],
        bit_selector=key[6],
        static_low_bit=key[7],
        perf_dev_threshold=key[8],
    )
    trace = cached_trace(name, scale)
    return PhaseClassifier(config).classify_trace(trace)


def cached_classified(
    name: str, config: ClassifierConfig, scale: float = 1.0
) -> ClassificationRun:
    """Classify a benchmark under a configuration (memoized)."""
    return _cached_classified(name, scale, _config_key(config))


def clear_cache() -> None:
    """Drop all memoized traces and classification runs."""
    cached_trace.cache_clear()
    _cached_classified.cache_clear()
