"""Caches for generated traces and classification runs.

Two layers back every experiment:

1. **In-process memory caches** — traces are memoized per
   ``(benchmark, scale)`` and classification runs per
   ``(benchmark, scale, config)``. Repeated lookups return the *same*
   object (experiments share traces freely).
2. **An optional on-disk result store**
   (:class:`repro.harness.store.ResultStore`) consulted on memory
   misses and populated on computes, so a fresh process — a new CLI
   invocation, a pytest worker, a CI job — starts warm. Install one
   with :func:`set_result_store`; the CLI does this by default (opt out
   with ``--no-store``).

:class:`~repro.core.config.ClassifierConfig` is a frozen dataclass and
therefore hashable, so the classification cache is keyed on the config
*itself*: a field added to the config can never silently fall out of
the cache key (the failure mode of the hand-maintained key tuple this
replaced).

Install a :class:`repro.telemetry.Telemetry` hub with
:func:`set_cache_telemetry` to count hits and misses of both memory
caches (``repro_harness_trace_cache_*`` /
``repro_harness_classified_cache_*`` counters; the store keeps its own
``repro_harness_store_*`` counters); the CLI does this automatically
when ``--metrics`` or ``--events`` is given.

The :mod:`repro.harness.engine` seeds both layers directly
(:func:`seed_trace` / :func:`seed_classified`) after computing work
units in parallel workers.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, TYPE_CHECKING

from repro.core import ClassificationRun, ClassifierConfig, PhaseClassifier
from repro.workloads import benchmark
from repro.workloads.trace import IntervalTrace

if TYPE_CHECKING:  # pragma: no cover - import-time typing only
    from repro.harness.store import ResultStore
    from repro.telemetry import Telemetry

_TraceKey = Tuple[str, float]
_ClassifiedKey = Tuple[str, float, ClassifierConfig]

_traces: Dict[_TraceKey, IntervalTrace] = {}
_classified: Dict[_ClassifiedKey, ClassificationRun] = {}

_telemetry: "Optional[Telemetry]" = None
_store: "Optional[ResultStore]" = None


def set_cache_telemetry(telemetry: "Optional[Telemetry]") -> None:
    """Install (or, with ``None``, remove) the hub cache counters go to."""
    global _telemetry
    _telemetry = telemetry
    if _store is not None:
        _store.set_telemetry(telemetry)


def set_result_store(store: "Optional[ResultStore]") -> None:
    """Install (or, with ``None``, remove) the on-disk result store.

    While installed, memory misses consult the store and computed
    results are written back, making warm starts survive the process.
    """
    global _store
    _store = store
    if store is not None and _telemetry is not None:
        store.set_telemetry(_telemetry)


def get_result_store() -> "Optional[ResultStore]":
    """The currently installed store, if any."""
    return _store


def record_cache_event(cache: str, hit: bool) -> None:
    """Count one memory-cache lookup (``cache`` is ``"trace"`` or
    ``"classified"``); a no-op without a telemetry hub.

    Exposed for the engine, whose parallel path resolves units without
    going through :func:`cached_trace`/:func:`cached_classified` but
    must keep the hit/miss counters identical to the sequential path.
    """
    if _telemetry is None:
        return
    outcome = "hits" if hit else "misses"
    _telemetry.metrics.counter(
        f"repro_harness_{cache}_cache_{outcome}_total",
        f"Harness {cache} cache {outcome}",
    ).inc()


def resolve_trace(
    name: str, scale: float
) -> Tuple[IntervalTrace, str]:
    """Memory -> store -> compute; returns ``(trace, source)`` where
    source is ``"memory"``, ``"store"``, or ``"computed"``. Does not
    touch the hit/miss counters (callers decide how to account)."""
    key = (name, float(scale))
    trace = _traces.get(key)
    if trace is not None:
        return trace, "memory"
    if _store is not None:
        trace = _store.get_trace(name, float(scale))
        if trace is not None:
            _traces[key] = trace
            return trace, "store"
    trace = benchmark(name, scale=scale)
    _traces[key] = trace
    if _store is not None:
        _store.put_trace(name, float(scale), trace)
    return trace, "computed"


def resolve_classified(
    name: str, config: ClassifierConfig, scale: float
) -> Tuple[ClassificationRun, str]:
    """Memory -> store -> compute for classification runs (see
    :func:`resolve_trace`)."""
    key = (name, float(scale), config)
    run = _classified.get(key)
    if run is not None:
        return run, "memory"
    if _store is not None:
        run = _store.get_classified(name, float(scale), config)
        if run is not None:
            _classified[key] = run
            return run, "store"
    trace, _ = resolve_trace(name, scale)
    run = PhaseClassifier(config).classify_trace(trace)
    _classified[key] = run
    if _store is not None:
        _store.put_classified(name, float(scale), config, run)
    return run, "computed"


def cached_trace(name: str, scale: float = 1.0) -> IntervalTrace:
    """Generate (or return the memoized/stored) trace for a benchmark."""
    trace, source = resolve_trace(name, scale)
    record_cache_event("trace", source == "memory")
    return trace


def cached_classified(
    name: str, config: ClassifierConfig, scale: float = 1.0
) -> ClassificationRun:
    """Classify a benchmark under a configuration (memoized/stored)."""
    run, source = resolve_classified(name, config, scale)
    record_cache_event("classified", source == "memory")
    return run


# -- engine hooks -------------------------------------------------------------


def peek_trace(name: str, scale: float) -> Optional[IntervalTrace]:
    """The memoized trace, or ``None`` — no compute, no store, no
    telemetry (the engine's pre-dispatch probe)."""
    return _traces.get((name, float(scale)))


def peek_classified(
    name: str, config: ClassifierConfig, scale: float
) -> Optional[ClassificationRun]:
    """The memoized run, or ``None`` (see :func:`peek_trace`)."""
    return _classified.get((name, float(scale), config))


def seed_trace(
    name: str, scale: float, trace: IntervalTrace,
    write_store: bool = True,
) -> None:
    """Insert a precomputed trace into the memory cache (and, unless
    ``write_store=False``, the store — pass ``False`` when the trace
    just came *from* the store)."""
    _traces[(name, float(scale))] = trace
    if write_store and _store is not None:
        _store.put_trace(name, float(scale), trace)


def seed_classified(
    name: str,
    config: ClassifierConfig,
    scale: float,
    run: ClassificationRun,
    write_store: bool = True,
) -> None:
    """Insert a precomputed classification run (see :func:`seed_trace`)."""
    _classified[(name, float(scale), config)] = run
    if write_store and _store is not None:
        _store.put_classified(name, float(scale), config, run)


def clear_cache() -> None:
    """Drop all memoized traces and classification runs (memory only —
    the on-disk store, when installed, is untouched; use
    ``repro-phases cache clear`` or :meth:`ResultStore.clear`)."""
    _traces.clear()
    _classified.clear()
