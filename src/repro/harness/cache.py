"""Per-process caches for generated traces and classification runs.

Trace generation (region calibration against the machine model plus
per-interval sampling) costs a second or two per benchmark; every
figure needs all eleven benchmarks, so traces are memoized per
``(benchmark, scale)``. Classification runs are additionally memoized
per classifier configuration — several figures share configurations.

:class:`~repro.core.config.ClassifierConfig` is a frozen dataclass and
therefore hashable, so the classification cache is keyed on the config
*itself*: a field added to the config can never silently fall out of
the cache key (the failure mode of the hand-maintained key tuple this
replaced).

Install a :class:`repro.telemetry.Telemetry` hub with
:func:`set_cache_telemetry` to count hits and misses of both caches
(``repro_harness_trace_cache_*`` / ``repro_harness_classified_cache_*``
counters); the CLI does this automatically when ``--metrics`` or
``--events`` is given.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, TYPE_CHECKING

from repro.core import ClassificationRun, ClassifierConfig, PhaseClassifier
from repro.workloads import benchmark
from repro.workloads.trace import IntervalTrace

if TYPE_CHECKING:  # pragma: no cover - import-time typing only
    from repro.telemetry import Telemetry

_telemetry: "Optional[Telemetry]" = None


def set_cache_telemetry(telemetry: "Optional[Telemetry]") -> None:
    """Install (or, with ``None``, remove) the hub cache counters go to."""
    global _telemetry
    _telemetry = telemetry


def _record(cache: str, hit: bool) -> None:
    outcome = "hits" if hit else "misses"
    _telemetry.metrics.counter(
        f"repro_harness_{cache}_cache_{outcome}_total",
        f"Harness {cache} cache {outcome}",
    ).inc()


@lru_cache(maxsize=None)
def _trace(name: str, scale: float) -> IntervalTrace:
    return benchmark(name, scale=scale)


def cached_trace(name: str, scale: float = 1.0) -> IntervalTrace:
    """Generate (or return the memoized) trace for a benchmark."""
    if _telemetry is None:
        return _trace(name, scale)
    hits_before = _trace.cache_info().hits
    result = _trace(name, scale)
    _record("trace", _trace.cache_info().hits > hits_before)
    return result


@lru_cache(maxsize=None)
def _classified(
    name: str, scale: float, config: ClassifierConfig
) -> ClassificationRun:
    trace = _trace(name, scale)
    return PhaseClassifier(config).classify_trace(trace)


def cached_classified(
    name: str, config: ClassifierConfig, scale: float = 1.0
) -> ClassificationRun:
    """Classify a benchmark under a configuration (memoized)."""
    if _telemetry is None:
        return _classified(name, scale, config)
    hits_before = _classified.cache_info().hits
    result = _classified(name, scale, config)
    _record("classified", _classified.cache_info().hits > hits_before)
    return result


def clear_cache() -> None:
    """Drop all memoized traces and classification runs."""
    _trace.cache_clear()
    _classified.cache_clear()
