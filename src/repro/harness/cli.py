"""Command-line entry point: ``repro-phases``.

Regenerates the paper's tables and figures as plain-text tables::

    repro-phases                     # every experiment at full scale
    repro-phases fig4 fig8           # a subset
    repro-phases --scale 0.25 fig2   # quarter-length runs (fast)
    repro-phases --jobs 4 fig4       # compute the work grid in parallel
    repro-phases --list              # show available experiments

Work units (traces and classification runs) are computed through the
:mod:`repro.harness.engine` and persisted in a content-addressed
on-disk store, so repeat runs start warm (disable with ``--no-store``;
inspect with ``repro-phases cache stats``). It also hosts the
streaming classification service::

    repro-phases serve --port 9137   # NDJSON phase service (Ctrl-C drains)
    repro-phases serve --workers 4   # sharded multi-process cluster
    repro-phases cluster status      # inspect a running cluster
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from repro.harness.experiment import experiment_names, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-phases",
        description=(
            "Reproduce the tables/figures of 'Transition Phase "
            "Classification and Prediction' (HPCA 2005)."
        ),
        epilog=(
            "Use 'repro-phases serve --help' for the streaming "
            "phase-classification service and 'repro-phases cache "
            "--help' for the on-disk result store."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (default: all)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="benchmark run-length multiplier (default 1.0)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list available experiments and exit",
    )
    parser.add_argument(
        "--benchmarks",
        action="store_true",
        help="list the synthetic benchmark models and exit",
    )
    parser.add_argument(
        "--classify",
        metavar="BENCHMARK",
        default=None,
        help="classify one benchmark model and print its phase report "
        "(profiles, timeline, prediction summary) instead of running "
        "experiments",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write each experiment's raw data as JSON to PATH "
        "(one object keyed by experiment name)",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write a telemetry metrics snapshot to PATH after the run "
        "(Prometheus text format; a .json extension selects the JSON "
        "exporter)",
    )
    parser.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help="stream structured JSONL telemetry events to PATH during "
        "the run",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the experiment work grid (default: "
        "all cores; 1 keeps the classic in-process sequential path)",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="on-disk result store location (default: "
        "$REPRO_PHASES_STORE, else ~/.cache/repro-phases/store)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="do not read or write the on-disk result store",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return _serve_main(list(argv[1:]))
    if argv and argv[0] == "cache":
        return _cache_main(list(argv[1:]))
    if argv and argv[0] == "cluster":
        return _cluster_main(list(argv[1:]))
    args = build_parser().parse_args(argv)
    available = experiment_names()
    if args.list:
        for name in available:
            print(name)
        return 0
    if args.benchmarks:
        from repro.workloads.spec2000 import BENCHMARK_NAMES, spec

        for name in BENCHMARK_NAMES:
            descriptor = spec(name)
            print(f"{name:8s} ~{descriptor.nominal_intervals:5d} intervals"
                  f"  {descriptor.description}")
        return 0

    telemetry = _build_telemetry(args)
    store = _build_store(args)
    if store is not None:
        from repro.harness.cache import set_result_store

        set_result_store(store)
    try:
        if args.classify is not None:
            return _classify_report(args.classify, args.scale, telemetry)

        requested: List[str] = args.experiments or available
        unknown = [name for name in requested if name not in available]
        if unknown:
            print(
                f"unknown experiment(s): {', '.join(unknown)}; "
                f"available: {', '.join(available)}",
                file=sys.stderr,
            )
            return 2

        # Compute the deduplicated work grid of every requested
        # experiment up front — in parallel and/or from the store —
        # so the bodies below run against warm caches.
        from repro.harness.engine import ExperimentEngine
        from repro.harness.experiment import experiment_work_units

        units = experiment_work_units(requested, scale=args.scale)
        if units:
            engine = ExperimentEngine(
                jobs=args.jobs, telemetry=telemetry
            )
            report = engine.ensure(units)
            print(f"[engine: {report.summary()}]\n")

        collected = {}
        for name in requested:
            start = time.time()
            result = run_experiment(
                name, scale=args.scale, telemetry=telemetry
            )
            print(result.rendered)
            print(f"[{name} completed in {time.time() - start:.1f}s]\n")
            collected[name] = {"title": result.title, "data": result.data}

        if args.json is not None:
            import json

            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(collected, handle, indent=2, default=float)
            print(f"[raw data written to {args.json}]")
        return 0
    finally:
        if store is not None:
            from repro.harness.cache import set_result_store

            set_result_store(None)
        _finalize_telemetry(args, telemetry)


def _build_store(args):
    """The on-disk result store (default on; ``--no-store`` opts out)."""
    if args.no_store:
        return None
    from repro.harness.store import ResultStore

    return ResultStore(root=args.store)


def _cache_main(argv: List[str]) -> int:
    """The ``repro-phases cache`` subcommand: inspect or empty the
    on-disk result store."""
    parser = argparse.ArgumentParser(
        prog="repro-phases cache",
        description=(
            "Inspect or empty the content-addressed on-disk result "
            "store backing the experiment engine."
        ),
    )
    parser.add_argument(
        "action",
        choices=("stats", "clear"),
        help="'stats' prints entry/byte counts; 'clear' deletes every "
        "entry",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="store location (default: $REPRO_PHASES_STORE, else "
        "~/.cache/repro-phases/store)",
    )
    args = parser.parse_args(argv)

    from repro.harness.store import ResultStore

    store = ResultStore(root=args.store)
    if args.action == "stats":
        print(store.stats().render())
    else:
        removed = store.clear()
        print(f"removed {removed} entries from {store.root}")
    return 0


def _build_telemetry(args):
    """Build the run's telemetry hub when --metrics/--events ask for one."""
    if args.metrics is None and args.events is None:
        return None
    from repro.harness.cache import set_cache_telemetry
    from repro.telemetry import Telemetry

    telemetry = Telemetry.to_files(
        metrics_path=args.metrics, events_path=args.events
    )
    set_cache_telemetry(telemetry)
    telemetry.emit(
        "run_start",
        experiments=list(args.experiments),
        scale=args.scale,
        classify=args.classify,
    )
    return telemetry


def _finalize_telemetry(args, telemetry) -> None:
    if telemetry is None:
        return
    from repro.harness.cache import set_cache_telemetry

    set_cache_telemetry(None)
    telemetry.emit("run_end")
    telemetry.close()
    if args.metrics is not None:
        print(f"[metrics written to {args.metrics}]")
    if args.events is not None:
        print(f"[events written to {args.events}]")


def _serve_main(argv: List[str]) -> int:
    """The ``repro-phases serve`` subcommand: run the NDJSON phase
    service until SIGINT/SIGTERM, then drain gracefully."""
    parser = argparse.ArgumentParser(
        prog="repro-phases serve",
        description=(
            "Host the streaming phase-classification service: NDJSON "
            "over TCP, many concurrent tracker sessions, snapshots, "
            "and backpressure. Ctrl-C drains in-flight work before "
            "exiting."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    parser.add_argument(
        "--port", type=int, default=9137,
        help="TCP port (0 picks a free one; default 9137)",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=64,
        help="live tracker-session cap (default 64)",
    )
    parser.add_argument(
        "--idle-ttl", type=float, default=None,
        help="drop sessions idle for this many seconds (default: never)",
    )
    parser.add_argument(
        "--no-evict", action="store_true",
        help="refuse opens when full instead of evicting the LRU session",
    )
    parser.add_argument(
        "--pool-slots", type=int, default=None, metavar="N",
        help="back default-config sessions with an N-slot SoA tracker "
        "pool (repro.core.pool); sessions with custom configs fall "
        "back to scalar trackers (default: no pool)",
    )
    parser.add_argument(
        "--coalesce", action=argparse.BooleanOptionalAction,
        default=False,
        help="micro-batch queued observes across connections into "
        "fused SoA pool rounds (most effective with --pool-slots); "
        "--no-coalesce is the explicit per-session reference path",
    )
    parser.add_argument(
        "--coalesce-window", type=float, default=0.0, metavar="SECONDS",
        help="extra gather delay per coalescing round (default 0: "
        "batch only what is already queued, adding no latency)",
    )
    parser.add_argument(
        "--max-connections", type=int, default=64,
        help="concurrent client-connection cap (default 64)",
    )
    parser.add_argument(
        "--queue-size", type=int, default=32,
        help="per-connection ingest queue depth — the backpressure "
        "bound (default 32)",
    )
    parser.add_argument(
        "--data-dir", metavar="PATH", default=None,
        help="enable the durable session tier rooted at PATH: "
        "evicted/expired sessions checkpoint to disk and hydrate on "
        "demand, and a restart (even after kill -9) recovers the "
        "registry from checkpoints + journal replay",
    )
    parser.add_argument(
        "--checkpoint-interval", type=float, default=30.0,
        metavar="SECONDS",
        help="seconds between checkpoint+compact sweeps of dirty "
        "sessions (default 30; needs --data-dir)",
    )
    parser.add_argument(
        "--sync", choices=("none", "batch", "always"), default="batch",
        help="journal durability: 'none' buffers in-process, 'batch' "
        "flushes every record and fsyncs in batches (default), "
        "'always' fsyncs every record (needs --data-dir)",
    )
    parser.add_argument(
        "--http-port", type=int, default=None, metavar="PORT",
        help="also run the HTTP operations gateway on PORT (0 picks a "
        "free one): /healthz, /readyz, /metrics (Prometheus), a JSON "
        "session API, /v1/events (SSE), and the live dashboard at / "
        "(default: no gateway)",
    )
    parser.add_argument(
        "--http-host", default=None, metavar="HOST",
        help="bind address for the HTTP gateway (default: --host)",
    )
    parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write a telemetry metrics snapshot to PATH at exit",
    )
    parser.add_argument(
        "--events", metavar="PATH", default=None,
        help="stream JSONL telemetry events to PATH while serving",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run as a sharded cluster: a dispatcher on --port plus N "
        "supervised worker processes (each a full phase service on a "
        "Unix socket), sessions consistent-hashed across them, live "
        "migration via 'repro-phases cluster' (default: one process)",
    )
    parser.add_argument(
        "--runtime-dir", metavar="PATH", default=None,
        help="cluster sockets + worker logs directory (default: a "
        "fresh temp dir; needs --workers)",
    )
    parser.add_argument(
        "--num-shards", type=int, default=None, metavar="N",
        help="fixed shard count sessions hash into (default 64; "
        "needs --workers)",
    )
    args = parser.parse_args(argv)

    import asyncio
    import signal

    from repro.service import PhaseService

    if args.workers is not None:
        return _serve_cluster(args)

    telemetry = None
    if args.metrics is not None or args.events is not None:
        from repro.telemetry import Telemetry

        telemetry = Telemetry.to_files(
            metrics_path=args.metrics, events_path=args.events
        )

    service = PhaseService(
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        pool_slots=args.pool_slots,
        coalesce=args.coalesce,
        coalesce_window=args.coalesce_window,
        idle_ttl=args.idle_ttl,
        evict_lru=not args.no_evict,
        max_connections=args.max_connections,
        queue_size=args.queue_size,
        telemetry=telemetry,
        data_dir=args.data_dir,
        checkpoint_interval=args.checkpoint_interval,
        sync=args.sync,
        http_host=args.http_host,
        http_port=args.http_port,
    )
    if service.persistence is not None:
        print(
            f"durable sessions at {args.data_dir} (sync={args.sync}): "
            f"recovered {service.sessions_recovered} live, "
            f"{service.persistence.cold_sessions} cold on disk",
            flush=True,
        )

    async def _run() -> None:
        await service.start()
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(
                        service.shutdown(drain=True)
                    ),
                )
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        print(
            f"repro-phases service listening on "
            f"{service.host}:{service.port} "
            f"(max {service.registry.max_sessions} sessions); "
            f"Ctrl-C to drain and exit",
            flush=True,
        )
        if service.http_port is not None:
            print(
                f"http gateway on "
                f"http://{service.http_host}:{service.http_port}/ "
                f"(dashboard; /metrics for Prometheus)",
                flush=True,
            )
        await service.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    finally:
        if telemetry is not None:
            telemetry.emit("run_end")
            telemetry.close()
    print(
        f"service drained cleanly: {service.requests_served} requests, "
        f"{service.registry.sessions_opened} sessions",
        flush=True,
    )
    return 0


def _serve_cluster(args) -> int:
    """``repro-phases serve --workers N``: the sharded multi-process
    cluster — dispatcher on ``--port``, N supervised workers."""
    import asyncio
    import signal
    import tempfile

    from repro.cluster import DEFAULT_SHARDS, ClusterDispatcher

    telemetry = None
    if args.metrics is not None or args.events is not None:
        from repro.telemetry import Telemetry

        telemetry = Telemetry.to_files(
            metrics_path=args.metrics, events_path=args.events
        )
    runtime_dir = args.runtime_dir or tempfile.mkdtemp(
        prefix="repro-cluster-"
    )
    dispatcher = ClusterDispatcher(
        host=args.host,
        port=args.port,
        workers=args.workers,
        runtime_dir=runtime_dir,
        data_root=args.data_dir,
        num_shards=args.num_shards or DEFAULT_SHARDS,
        queue_size=args.queue_size,
        max_connections=args.max_connections,
        telemetry=telemetry,
        http_host=args.http_host,
        http_port=args.http_port,
        worker_max_sessions=args.max_sessions,
        pool_slots=args.pool_slots,
        coalesce=args.coalesce,
        coalesce_window=args.coalesce_window,
        sync=args.sync,
        checkpoint_interval=args.checkpoint_interval,
        idle_ttl=args.idle_ttl,
    )

    async def _run() -> None:
        await dispatcher.start()
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(
                        dispatcher.shutdown(drain=True)
                    ),
                )
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        print(
            f"repro-phases cluster listening on "
            f"{dispatcher.host}:{dispatcher.port} "
            f"({len(dispatcher.shard_map)} workers, "
            f"{dispatcher.shard_map.num_shards} shards, "
            f"runtime {runtime_dir}); Ctrl-C to drain and exit",
            flush=True,
        )
        if args.data_dir is not None:
            print(
                f"durable workers under {args.data_dir} "
                f"(sync={args.sync}, per-worker data dirs)",
                flush=True,
            )
        if dispatcher.http_port is not None:
            print(
                f"http gateway on "
                f"http://{dispatcher.http_host}:{dispatcher.http_port}/ "
                f"(dashboard; /v1/cluster for topology)",
                flush=True,
            )
        await dispatcher.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    finally:
        if telemetry is not None:
            telemetry.emit("run_end")
            telemetry.close()
    print(
        f"cluster drained cleanly: {dispatcher.requests_served} "
        f"requests, {dispatcher.migrations_completed} migrations",
        flush=True,
    )
    return 0


def _cluster_main(argv: List[str]) -> int:
    """The ``repro-phases cluster`` subcommand: control-plane actions
    against a running cluster dispatcher (or, for ``diagnostics``, any
    phase service)."""
    parser = argparse.ArgumentParser(
        prog="repro-phases cluster",
        description=(
            "Administer a running 'serve --workers N' cluster over its "
            "NDJSON endpoint: inspect topology, migrate sessions, "
            "drain or add workers."
        ),
    )
    parser.add_argument(
        "action",
        choices=(
            "status", "diagnostics", "migrate", "drain-worker",
            "rebalance", "grow",
        ),
        help="control-plane action to run",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="dispatcher address")
    parser.add_argument("--port", type=int, default=9137,
                        help="dispatcher NDJSON port (default 9137)")
    parser.add_argument("--session", default=None,
                        help="session name (migrate)")
    parser.add_argument("--worker", default=None,
                        help="worker id (migrate target / drain-worker)")
    parser.add_argument("--count", type=int, default=None,
                        help="workers to add (grow; default 1)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-request timeout in seconds")
    args = parser.parse_args(argv)

    import json

    from repro.errors import ServiceError
    from repro.service import PhaseServiceClient

    params = {}
    if args.session is not None:
        params["session"] = args.session
    if args.worker is not None:
        params["worker"] = args.worker
    if args.count is not None:
        params["count"] = args.count
    try:
        with PhaseServiceClient(
            host=args.host, port=args.port, timeout=args.timeout
        ) as client:
            result = client.cluster(args.action, **params)
    except ServiceError as error:
        print(f"cluster {args.action} failed: {error}", file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2, default=float))
    return 0


def _classify_report(name: str, scale: float, telemetry=None) -> int:
    """Classify one benchmark and print the full phase report."""
    from repro.analysis.cov import weighted_cov
    from repro.analysis.profile import format_profile_table, profile_phases
    from repro.analysis.timeline import render_timeline
    from repro.core import ClassifierConfig, PhaseClassifier
    from repro.errors import ConfigurationError
    from repro.prediction import CompositePhasePredictor, RLEChangePredictor
    from repro.workloads import benchmark

    try:
        trace = benchmark(name, scale=scale)
    except ConfigurationError as error:
        print(str(error), file=sys.stderr)
        return 2

    if telemetry is not None:
        telemetry.emit("classify_start", benchmark=name, scale=scale)
        with telemetry.span(f"classify:{name}"):
            run = PhaseClassifier(
                ClassifierConfig.paper_default()
            ).classify_trace(trace)
        telemetry.emit(
            "classify_end",
            benchmark=name,
            intervals=len(trace),
            phases=run.num_phases,
        )
    else:
        run = PhaseClassifier(
            ClassifierConfig.paper_default()
        ).classify_trace(trace)
    print(f"{name}: {len(trace)} intervals of "
          f"{trace.interval_instructions / 1e6:.0f}M instructions")
    print(f"whole-program CoV {trace.whole_program_cov():.1%}  ->  "
          f"per-phase CoV {weighted_cov(run, trace):.1%} across "
          f"{run.num_phases} phases "
          f"({run.transition_fraction:.1%} transition time)\n")
    print(format_profile_table(profile_phases(run, trace), count=10))
    print()
    print(render_timeline(run.phase_ids, width=72, max_legend_entries=6))
    stats = CompositePhasePredictor(RLEChangePredictor(2)).run(
        run.phase_ids
    )
    print(f"\nnext-phase prediction: {stats.accuracy:.1%} overall, "
          f"{stats.confident_accuracy:.1%} at {stats.coverage:.1%} "
          f"coverage when confidence-gated")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
