"""Generic classifier parameter sweeps.

Figures 2, 3, 4 and 6 are all instances of one shape: vary a
:class:`~repro.core.config.ClassifierConfig` field across values, run
all benchmarks, collect metrics. This module is the general form, for
exploring configurations the paper did not:

    >>> from repro.harness.sweep import sweep_classifier
    >>> result = sweep_classifier(
    ...     "similarity_threshold", [0.0625, 0.125, 0.25, 0.5],
    ...     scale=0.25)
    >>> print(result.render())

Metrics collected per (value, benchmark): weighted CoV, phase count,
transition fraction, and last-value misprediction rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.analysis.cov import weighted_cov
from repro.analysis.tables import render_table
from repro.core.config import ClassifierConfig
from repro.errors import ConfigurationError
from repro.harness.cache import cached_classified, cached_trace
from repro.harness.engine import WorkUnit
from repro.prediction.composite import CompositePhasePredictor
from repro.workloads import BENCHMARK_NAMES

if TYPE_CHECKING:  # pragma: no cover - import-time typing only
    from repro.harness.engine import ExperimentEngine

#: Metrics the sweep can collect, with printable labels.
METRICS = {
    "cov": "CoV of CPI (%)",
    "phases": "number of phases",
    "transition": "transition time (%)",
    "lv_mispredict": "last-value misprediction (%)",
}


@dataclass
class SweepResult:
    """Metrics for every (swept value, benchmark) pair.

    ``data[metric][value]`` is a per-benchmark list in
    :data:`~repro.workloads.BENCHMARK_NAMES` order.
    """

    field_name: str
    values: List[object]
    benchmarks: List[str]
    data: Dict[str, Dict[object, List[float]]] = field(
        default_factory=dict
    )

    def averages(self, metric: str) -> Dict[object, float]:
        """Mean of ``metric`` across benchmarks, per swept value."""
        if metric not in self.data:
            raise ConfigurationError(
                f"metric {metric!r} was not collected; available: "
                f"{sorted(self.data)}"
            )
        return {
            value: float(np.mean(series))
            for value, series in self.data[metric].items()
        }

    def best_value(self, metric: str, minimize: bool = True) -> object:
        """The swept value with the best benchmark-average metric."""
        averages = self.averages(metric)
        chooser = min if minimize else max
        return chooser(averages, key=averages.get)

    def render(self, metric: str = "cov") -> str:
        """One table: benchmarks x swept values for a metric."""
        if metric not in self.data:
            raise ConfigurationError(
                f"metric {metric!r} was not collected; available: "
                f"{sorted(self.data)}"
            )
        columns = {
            f"{self.field_name}={value}": self.data[metric][value]
            for value in self.values
        }
        return render_table(
            METRICS.get(metric, metric), self.benchmarks, columns
        )


def _resolve_base(base: Optional[ClassifierConfig]) -> ClassifierConfig:
    """The sweep's default pivot: §5.1 without adaptive thresholds."""
    if base is not None:
        return base
    return ClassifierConfig(
        num_counters=16, table_entries=32,
        similarity_threshold=0.25, min_count_threshold=8,
    )


def sweep_work_units(
    field_name: str,
    values: Sequence[object],
    base: Optional[ClassifierConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> List[WorkUnit]:
    """The (value x benchmark) work-unit grid a sweep will consume —
    hand these to :meth:`ExperimentEngine.ensure` to compute them in
    parallel / from the store before calling :func:`sweep_classifier`."""
    base = _resolve_base(base)
    names = list(benchmarks or BENCHMARK_NAMES)
    units = [WorkUnit(name, scale) for name in names]
    for value in values:
        config = replace(base, **{field_name: value})
        units.extend(WorkUnit(name, scale, config) for name in names)
    return units


def _extract_metrics(run, trace, metrics: Sequence[str]) -> Dict[str, float]:
    """Every requested metric of one classification run, computed in a
    single pass (the last-value predictor walk is the expensive one)."""
    extracted: Dict[str, float] = {}
    if "cov" in metrics:
        extracted["cov"] = weighted_cov(run, trace) * 100
    if "phases" in metrics:
        extracted["phases"] = float(run.num_phases)
    if "transition" in metrics:
        extracted["transition"] = run.transition_fraction * 100
    if "lv_mispredict" in metrics:
        stats = CompositePhasePredictor(None).run(run.phase_ids)
        extracted["lv_mispredict"] = (1.0 - stats.accuracy) * 100
    return extracted


def sweep_classifier(
    field_name: str,
    values: Sequence[object],
    base: Optional[ClassifierConfig] = None,
    metrics: Sequence[str] = ("cov", "phases", "transition",
                              "lv_mispredict"),
    benchmarks: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    engine: "Optional[ExperimentEngine]" = None,
) -> SweepResult:
    """Sweep one ``ClassifierConfig`` field over ``values``.

    Parameters
    ----------
    field_name:
        Any :class:`ClassifierConfig` field (e.g.
        ``"similarity_threshold"``, ``"min_count_threshold"``,
        ``"num_counters"``, ``"table_entries"``).
    values:
        Values to sweep; each must produce a valid configuration.
    base:
        Configuration the sweep perturbs (defaults to the paper's
        §5.1 configuration without adaptive thresholds, so single-field
        effects are not confounded).
    metrics / benchmarks / scale:
        What to collect, where, and at which run length.
    engine:
        An :class:`~repro.harness.engine.ExperimentEngine`; when given,
        the whole (value x benchmark) grid is made resident first —
        in parallel and/or from the on-disk store.
    """
    if not values:
        raise ConfigurationError("values must be non-empty")
    unknown = [m for m in metrics if m not in METRICS]
    if unknown:
        raise ConfigurationError(
            f"unknown metrics {unknown}; available: {sorted(METRICS)}"
        )
    base = _resolve_base(base)
    if not hasattr(base, field_name):
        raise ConfigurationError(
            f"ClassifierConfig has no field {field_name!r}"
        )
    names = list(benchmarks or BENCHMARK_NAMES)
    if engine is not None:
        engine.ensure(sweep_work_units(
            field_name, values, base, names, scale
        ))

    result = SweepResult(
        field_name=field_name,
        values=list(values),
        benchmarks=names,
        data={metric: {} for metric in metrics},
    )
    # Metric extraction is memoized per run *object*: distinct swept
    # values can map to the same cached run (a value equal to the base,
    # say), and the last-value predictor walk is too expensive to repeat.
    extracted_by_run: Dict[int, Dict[str, float]] = {}
    for value in values:
        config = replace(base, **{field_name: value})
        collected: Dict[str, List[float]] = {m: [] for m in metrics}
        for name in names:
            trace = cached_trace(name, scale)
            run = cached_classified(name, config, scale)
            extracted = extracted_by_run.get(id(run))
            if extracted is None:
                extracted = _extract_metrics(run, trace, metrics)
                extracted_by_run[id(run)] = extracted
            for metric in metrics:
                collected[metric].append(extracted[metric])
        for metric in metrics:
            result.data[metric][value] = collected[metric]
    return result
