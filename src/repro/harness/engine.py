"""The parallel experiment engine: deduplicated work units, a worker
pool, and the persistent result store.

Every paper artifact reduces to the same grid of independent work: for
a ``(benchmark, scale)`` pair, generate the trace; for a
``(benchmark, scale, config)`` triple, additionally classify it. A
:class:`WorkUnit` names one cell of that grid. Experiments declare
their units up front (:func:`repro.harness.experiment.register`'s
``units=`` hook), the engine deduplicates them across experiments, and
:meth:`ExperimentEngine.ensure` makes every unit resident in the
in-process caches:

1. units already in memory are skipped;
2. units present in the installed :class:`~repro.harness.store.ResultStore`
   are loaded (a warm start costs I/O, not simulation);
3. the remaining units are computed — grouped per ``(benchmark,
   scale)`` so a trace is generated once per group — across a
   ``multiprocessing`` pool with ``jobs`` workers, then seeded into the
   caches and written to the store.

``jobs=1`` takes none of the machinery above: it calls
:func:`~repro.harness.cache.cached_trace` /
:func:`~repro.harness.cache.cached_classified` sequentially, exactly
like the experiments themselves always have. Parallel execution is
bit-deterministic — trace generation is seeded per benchmark and
classification is a pure function of (trace, config) — and every
worker result is shape-checked against the sequential contract before
it is admitted (see :func:`validate_unit_result`);
``tests/integration/test_parallel_crosscheck.py`` proves value-level
equality for every experiment.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.core import (
    ClassificationRun,
    ClassifierConfig,
    PhaseClassifier,
    classify_traces_batched,
)
from repro.errors import EngineError
from repro.harness import cache
from repro.workloads import benchmark
from repro.workloads.trace import IntervalTrace

if TYPE_CHECKING:  # pragma: no cover - import-time typing only
    from repro.harness.store import ResultStore
    from repro.telemetry import Telemetry


@dataclass(frozen=True)
class WorkUnit:
    """One cell of the experiment grid.

    ``config=None`` asks for the trace only; a config additionally asks
    for the classification run (which implies the trace).
    """

    benchmark: str
    scale: float
    config: Optional[ClassifierConfig] = None

    def __post_init__(self) -> None:
        # Normalize the scale so 0.25 and np.float64(0.25) are one unit.
        object.__setattr__(self, "scale", float(self.scale))


def dedupe_units(units: Sequence[WorkUnit]) -> List[WorkUnit]:
    """Drop duplicate units, preserving first-seen order."""
    seen = set()
    out: List[WorkUnit] = []
    for unit in units:
        if unit not in seen:
            seen.add(unit)
            out.append(unit)
    return out


def validate_unit_result(
    unit: WorkUnit,
    trace: IntervalTrace,
    run: Optional[ClassificationRun],
) -> None:
    """Assert a computed result has the sequential path's shape.

    Raises :class:`~repro.errors.EngineError` on any mismatch — a
    worker returning the wrong type, a run whose interval count
    disagrees with its trace, or phase IDs outside the classifier's
    contract. This is the admission check for parallel results.
    """
    if not isinstance(trace, IntervalTrace):
        raise EngineError(
            f"{unit.benchmark}@{unit.scale}: worker returned "
            f"{type(trace).__name__}, expected IntervalTrace"
        )
    if len(trace) == 0:
        raise EngineError(
            f"{unit.benchmark}@{unit.scale}: empty trace from worker"
        )
    if unit.config is None:
        return
    if not isinstance(run, ClassificationRun):
        raise EngineError(
            f"{unit.benchmark}@{unit.scale}: worker returned "
            f"{type(run).__name__}, expected ClassificationRun"
        )
    if len(run) != len(trace):
        raise EngineError(
            f"{unit.benchmark}@{unit.scale}: run covers {len(run)} "
            f"intervals but the trace has {len(trace)}"
        )
    ids = run.phase_ids
    if ids.dtype != np.int64 or int(ids.min()) < 0:
        raise EngineError(
            f"{unit.benchmark}@{unit.scale}: malformed phase IDs "
            f"(dtype {ids.dtype}, min {ids.min()})"
        )
    if run.num_phases < run.distinct_phases_observed:
        raise EngineError(
            f"{unit.benchmark}@{unit.scale}: {run.distinct_phases_observed} "
            f"phases observed but only {run.num_phases} allocated"
        )


@dataclass
class EngineReport:
    """What one :meth:`ExperimentEngine.ensure` call did."""

    jobs: int
    units: int = 0
    from_memory: int = 0
    from_store: int = 0
    computed: int = 0
    seconds: float = 0.0
    busy_seconds: float = 0.0
    unit_seconds: Dict[WorkUnit, float] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        """Busy worker time over available worker time, in [0, 1]."""
        if self.seconds <= 0.0 or self.jobs <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (self.seconds * self.jobs))

    def merge(self, other: "EngineReport") -> None:
        self.units += other.units
        self.from_memory += other.from_memory
        self.from_store += other.from_store
        self.computed += other.computed
        self.seconds += other.seconds
        self.busy_seconds += other.busy_seconds
        self.unit_seconds.update(other.unit_seconds)

    def summary(self) -> str:
        parts = [
            f"{self.units} work units",
            f"{self.from_memory} in memory",
            f"{self.from_store} from store",
            f"{self.computed} computed",
            f"jobs={self.jobs}",
            f"{self.seconds:.1f}s",
        ]
        if self.computed and self.jobs > 1:
            parts.append(f"{self.utilization:.0%} worker utilization")
        return ", ".join(parts)


#: One pool task: compute a benchmark's trace (unless provided) and the
#: requested classification runs.
_GroupTask = Tuple[
    str, float, Optional[IntervalTrace], Tuple[ClassifierConfig, ...]
]


def _compute_group(task: _GroupTask):
    """Pool worker: generate/classify one ``(benchmark, scale)`` group.

    Top-level so it pickles under every multiprocessing start method.
    Returns ``(name, scale, trace, trace_seconds_or_None,
    [(config, run, seconds), ...])``.
    """
    name, scale, trace, configs = task
    trace_seconds: Optional[float] = None
    if trace is None:
        start = time.perf_counter()
        trace = benchmark(name, scale=scale)
        trace_seconds = time.perf_counter() - start
    runs = []
    for config in configs:
        start = time.perf_counter()
        run = PhaseClassifier(config).classify_trace(trace)
        runs.append((config, run, time.perf_counter() - start))
    return name, scale, trace, trace_seconds, runs


class ExperimentEngine:
    """Executes deduplicated work units across a process pool.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means ``os.cpu_count()``. ``1``
        bypasses the pool entirely and preserves the classic
        sequential in-process path.
    store:
        A :class:`~repro.harness.store.ResultStore` to install for the
        duration of each :meth:`ensure` call. ``None`` (the default)
        uses whatever store is already installed via
        :func:`repro.harness.cache.set_result_store`.
    telemetry:
        Optional hub for engine counters/histograms
        (``repro_harness_engine_*``).
    pooled:
        Opt-in fast path: classify missing units on a
        structure-of-arrays :class:`~repro.core.pool.ClassifierPool`
        (one batched pass per config instead of one scalar classifier
        per trace), in this process. Value-identical to the scalar
        path; configs the pool cannot host (an infinite signature
        table) fall back to scalar classification per trace. Takes
        precedence over the process pool — ``jobs`` is ignored.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        store: "Optional[ResultStore]" = None,
        telemetry: "Optional[Telemetry]" = None,
        pooled: bool = False,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise EngineError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.store = store
        self.telemetry = telemetry
        self.pooled = pooled

    # -- internals --------------------------------------------------------

    def _observe_unit(self, unit: WorkUnit, seconds: float) -> None:
        if self.telemetry is None:
            return
        self.telemetry.metrics.histogram(
            "repro_harness_engine_unit_seconds",
            "Per-work-unit compute latency",
        ).observe(seconds)

    def _count(self, name: str, amount: int, help: str) -> None:
        if self.telemetry is not None and amount:
            self.telemetry.metrics.counter(
                f"repro_harness_engine_{name}_total", help
            ).inc(amount)

    def _group(self, units: Sequence[WorkUnit]):
        """Order-preserving ``(benchmark, scale) -> [configs]`` map;
        every classified unit implies its trace unit."""
        groups: "Dict[Tuple[str, float], List[ClassifierConfig]]" = {}
        for unit in dedupe_units(units):
            configs = groups.setdefault(
                (unit.benchmark, unit.scale), []
            )
            if unit.config is not None and unit.config not in configs:
                configs.append(unit.config)
        return groups

    # -- execution --------------------------------------------------------

    def ensure(self, units: Sequence[WorkUnit]) -> EngineReport:
        """Make every unit resident in the in-process caches.

        Returns an :class:`EngineReport` describing where each unit
        came from. Safe to call repeatedly; resident units cost a
        dictionary lookup.
        """
        previous_store = cache.get_result_store()
        if self.store is not None:
            cache.set_result_store(self.store)
        try:
            return self._ensure(units)
        finally:
            if self.store is not None:
                cache.set_result_store(previous_store)

    def _ensure(self, units: Sequence[WorkUnit]) -> EngineReport:
        groups = self._group(units)
        report = EngineReport(jobs=self.jobs)
        report.units = sum(len(cfgs) + 1 for cfgs in groups.values())
        start = time.perf_counter()

        if self.pooled:
            self._ensure_pooled(groups, report)
        elif self.jobs == 1:
            self._ensure_sequential(groups, report)
        else:
            self._ensure_parallel(groups, report)

        report.seconds = time.perf_counter() - start
        self._count(
            "units_memory", report.from_memory,
            "Work units already resident in memory",
        )
        self._count(
            "units_store", report.from_store,
            "Work units satisfied by the result store",
        )
        self._count(
            "units_computed", report.computed, "Work units computed"
        )
        if self.telemetry is not None:
            self.telemetry.metrics.gauge(
                "repro_harness_engine_jobs", "Configured worker count"
            ).set(self.jobs)
            if report.computed:
                self.telemetry.metrics.gauge(
                    "repro_harness_engine_worker_utilization",
                    "Busy worker time / available worker time",
                ).set(report.utilization)
            self.telemetry.emit(
                "engine_ensure",
                units=report.units,
                from_memory=report.from_memory,
                from_store=report.from_store,
                computed=report.computed,
                jobs=self.jobs,
                seconds=round(report.seconds, 6),
            )
        return report

    def _ensure_sequential(self, groups, report: EngineReport) -> None:
        """``jobs=1``: the classic in-process path, unit by unit."""
        for (name, scale), configs in groups.items():
            for unit in self._group_units(name, scale, configs):
                unit_start = time.perf_counter()
                if unit.config is None:
                    _, source = cache.resolve_trace(name, scale)
                    cache.record_cache_event("trace", source == "memory")
                else:
                    _, source = cache.resolve_classified(
                        name, unit.config, scale
                    )
                    cache.record_cache_event(
                        "classified", source == "memory"
                    )
                seconds = time.perf_counter() - unit_start
                self._account(unit, source, seconds, report)

    def _ensure_pooled(self, groups, report: EngineReport) -> None:
        """Batch-classify every missing unit on a shared classifier
        pool, one vectorized pass per distinct config."""
        traces: Dict[Tuple[str, float], IntervalTrace] = {}
        for (name, scale) in groups:
            unit_start = time.perf_counter()
            trace, source = cache.resolve_trace(name, scale)
            cache.record_cache_event("trace", source == "memory")
            self._account(
                WorkUnit(name, scale), source,
                time.perf_counter() - unit_start, report,
            )
            traces[(name, scale)] = trace

        by_config: "Dict[ClassifierConfig, List[Tuple[str, float]]]" = {}
        for (name, scale), configs in groups.items():
            for config in configs:
                resident = cache.peek_classified(name, config, scale)
                cache.record_cache_event("classified", resident is not None)
                if resident is not None:
                    report.from_memory += 1
                    continue
                run = self._store_classified(name, scale, config)
                if run is not None:
                    cache.seed_classified(
                        name, config, scale, run, write_store=False
                    )
                    report.from_store += 1
                    continue
                by_config.setdefault(config, []).append((name, scale))

        for config, keys in by_config.items():
            batch = [traces[key] for key in keys]
            start = time.perf_counter()
            if config.table_entries is None:
                # The pool needs a finite table; classify scalar.
                runs = [
                    PhaseClassifier(config).classify_trace(trace)
                    for trace in batch
                ]
            else:
                runs = classify_traces_batched(batch, config)
            per_unit = (time.perf_counter() - start) / len(keys)
            for (name, scale), run in zip(keys, runs):
                unit = WorkUnit(name, scale, config)
                validate_unit_result(unit, traces[(name, scale)], run)
                cache.seed_classified(name, config, scale, run)
                self._account(unit, "computed", per_unit, report)

    def _ensure_parallel(self, groups, report: EngineReport) -> None:
        tasks: List[_GroupTask] = []
        pending: "Dict[Tuple[str, float], List[ClassifierConfig]]" = {}
        for (name, scale), configs in groups.items():
            trace = cache.peek_trace(name, scale)
            cache.record_cache_event("trace", trace is not None)
            if trace is not None:
                report.from_memory += 1
            else:
                trace = self._store_trace(name, scale)
                if trace is not None:
                    cache.seed_trace(name, scale, trace, write_store=False)
                    report.from_store += 1

            missing: List[ClassifierConfig] = []
            for config in configs:
                resident = cache.peek_classified(name, config, scale)
                cache.record_cache_event("classified", resident is not None)
                if resident is not None:
                    report.from_memory += 1
                    continue
                run = self._store_classified(name, scale, config)
                if run is not None:
                    cache.seed_classified(
                        name, config, scale, run, write_store=False
                    )
                    report.from_store += 1
                    continue
                missing.append(config)

            if trace is None or missing:
                tasks.append((name, scale, trace, tuple(missing)))
                pending[(name, scale)] = missing

        if not tasks:
            return
        results = self._run_tasks(tasks)
        for name, scale, trace, trace_seconds, runs in results:
            trace_unit = WorkUnit(name, scale)
            validate_unit_result(trace_unit, trace, None)
            if trace_seconds is not None:
                cache.seed_trace(name, scale, trace)
                self._account(trace_unit, "computed", trace_seconds, report)
            returned = [config for config, _, _ in runs]
            expected = pending[(name, scale)]
            if returned != expected:
                raise EngineError(
                    f"{name}@{scale}: worker returned configs "
                    f"{returned!r}, expected {expected!r}"
                )
            for config, run, seconds in runs:
                unit = WorkUnit(name, scale, config)
                validate_unit_result(unit, trace, run)
                cache.seed_classified(name, config, scale, run)
                self._account(unit, "computed", seconds, report)

    def _run_tasks(self, tasks: List[_GroupTask]):
        if len(tasks) == 1:
            # One group cannot parallelize; skip the pool entirely.
            return [_compute_group(tasks[0])]
        workers = min(self.jobs, len(tasks))
        with multiprocessing.Pool(processes=workers) as pool:
            return list(pool.imap_unordered(_compute_group, tasks))

    # -- bookkeeping ------------------------------------------------------

    @staticmethod
    def _group_units(name, scale, configs):
        yield WorkUnit(name, scale)
        for config in configs:
            yield WorkUnit(name, scale, config)

    def _store_trace(self, name, scale):
        store = cache.get_result_store()
        return store.get_trace(name, scale) if store is not None else None

    def _store_classified(self, name, scale, config):
        store = cache.get_result_store()
        if store is None:
            return None
        return store.get_classified(name, scale, config)

    def _account(
        self,
        unit: WorkUnit,
        source: str,
        seconds: float,
        report: EngineReport,
    ) -> None:
        if source == "memory":
            report.from_memory += 1
            return
        if source == "store":
            report.from_store += 1
            return
        report.computed += 1
        report.busy_seconds += seconds
        report.unit_seconds[unit] = seconds
        self._observe_unit(unit, seconds)
