"""Content-addressed on-disk store for traces and classification runs.

The in-process caches (:mod:`repro.harness.cache`) die with the
process, so every fresh CLI invocation, pytest worker, or CI job used
to pay full trace generation and classification again. The
:class:`ResultStore` persists both payload kinds under a content
address: a SHA-256 over the benchmark name, scale, the full
:class:`~repro.core.config.ClassifierConfig` (``None`` for raw
traces), and the store schema version. Anything that would change the
payload changes the key, so entries never need invalidation — a schema
bump simply makes old entries unreachable.

Durability rules:

- writes go to a private temp file and are published with one atomic
  ``os.replace``, so concurrent writers race benignly (last write wins,
  readers only ever see complete files);
- any unreadable, truncated, or mismatched entry is treated as a miss
  (counted in telemetry, best-effort unlinked), never an exception;
- trace payloads reuse :func:`repro.workloads.io.save_trace` /
  :func:`~repro.workloads.io.load_trace`, so the store format is the
  library's own exact round-trip format.

The default location is ``$REPRO_PHASES_STORE`` when set, else
``$XDG_CACHE_HOME/repro-phases/store``, else
``~/.cache/repro-phases/store``. ``repro-phases cache {stats,clear}``
inspects and empties it from the command line.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional, TYPE_CHECKING, Union

import numpy as np

from repro.core import ClassificationResult, ClassificationRun, ClassifierConfig
from repro.workloads.io import load_trace, save_trace
from repro.workloads.trace import IntervalTrace

if TYPE_CHECKING:  # pragma: no cover - import-time typing only
    from repro.telemetry import Telemetry

#: Bump when the payload layout or the meaning of a key field changes;
#: old entries become unreachable (a miss), never misread.
SCHEMA_VERSION = 1

_KINDS = ("trace", "classified")


def default_store_root() -> Path:
    """The store location honoring ``REPRO_PHASES_STORE`` / XDG."""
    override = os.environ.get("REPRO_PHASES_STORE")
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-phases" / "store"


@dataclass(frozen=True)
class StoreStats:
    """Entry counts and byte totals per payload kind."""

    root: Path
    entries: Dict[str, int]
    bytes: Dict[str, int]

    @property
    def total_entries(self) -> int:
        return sum(self.entries.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes.values())

    def render(self) -> str:
        lines = [f"store: {self.root}"]
        for kind in _KINDS:
            lines.append(
                f"  {kind:10s} {self.entries.get(kind, 0):6d} entries  "
                f"{self.bytes.get(kind, 0):12d} bytes"
            )
        lines.append(
            f"  {'total':10s} {self.total_entries:6d} entries  "
            f"{self.total_bytes:12d} bytes"
        )
        return "\n".join(lines)


class ResultStore:
    """Persistent content-addressed storage for harness work products."""

    def __init__(
        self,
        root: "Optional[Union[str, Path]]" = None,
        telemetry: "Optional[Telemetry]" = None,
    ) -> None:
        self.root = (
            Path(root).expanduser() if root is not None
            else default_store_root()
        )
        self._telemetry = telemetry
        self._tmp_serial = 0

    def set_telemetry(self, telemetry: "Optional[Telemetry]") -> None:
        self._telemetry = telemetry

    # -- keys -----------------------------------------------------------------

    @staticmethod
    def _key(
        kind: str,
        benchmark: str,
        scale: float,
        config: Optional[ClassifierConfig],
    ) -> str:
        identity = {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "benchmark": benchmark,
            # float hex is exact and stable across platforms, unlike repr
            "scale": float(scale).hex(),
            "config": None if config is None else asdict(config),
        }
        canonical = json.dumps(identity, sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.npz"

    def trace_path(self, benchmark: str, scale: float) -> Path:
        return self._path(
            "trace", self._key("trace", benchmark, scale, None)
        )

    def classified_path(
        self, benchmark: str, scale: float, config: ClassifierConfig
    ) -> Path:
        return self._path(
            "classified",
            self._key("classified", benchmark, scale, config),
        )

    # -- telemetry ------------------------------------------------------------

    def _count(self, name: str, amount: int = 1, help: str = "") -> None:
        if self._telemetry is not None and amount:
            self._telemetry.metrics.counter(
                f"repro_harness_store_{name}_total", help
            ).inc(amount)

    def _record_read(self, path: Path, hit: bool, corrupt: bool = False):
        self._count("hits" if hit else "misses", help="Store lookups")
        if corrupt:
            self._count(
                "corrupt", help="Store entries dropped as unreadable"
            )
        if hit:
            try:
                self._count(
                    "read_bytes", path.stat().st_size,
                    help="Bytes read from the store",
                )
            except OSError:  # pragma: no cover - raced deletion
                pass

    # -- I/O ------------------------------------------------------------------

    def _publish(self, tmp: Path, final: Path) -> None:
        final.parent.mkdir(parents=True, exist_ok=True)
        os.replace(tmp, final)

    def _tmp_for(self, final: Path) -> Path:
        self._tmp_serial += 1
        # Unique per (process, call) so concurrent writers never share a
        # temp file; suffix kept ``.npz`` for save_trace.
        return final.with_name(
            f"{final.stem}.{os.getpid()}.{self._tmp_serial}.tmp.npz"
        )

    def _discard(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def get_trace(
        self, benchmark: str, scale: float
    ) -> Optional[IntervalTrace]:
        """Load a stored trace, or ``None`` (miss / unreadable entry)."""
        path = self.trace_path(benchmark, scale)
        if not path.exists():
            self._record_read(path, hit=False)
            return None
        try:
            trace = load_trace(path)
        except Exception:
            self._discard(path)
            self._record_read(path, hit=False, corrupt=True)
            return None
        self._record_read(path, hit=True)
        return trace

    def put_trace(
        self, benchmark: str, scale: float, trace: IntervalTrace
    ) -> Optional[Path]:
        """Persist a trace; returns the entry path, or ``None`` if the
        write failed (counted, never raised)."""
        final = self.trace_path(benchmark, scale)
        tmp = self._tmp_for(final)
        try:
            final.parent.mkdir(parents=True, exist_ok=True)
            save_trace(trace, tmp)
            written = tmp.stat().st_size
            self._publish(tmp, final)
        except Exception:
            self._discard(tmp)
            self._count("write_errors", help="Failed store writes")
            return None
        self._count("writes", help="Store entries written")
        self._count(
            "written_bytes", written, help="Bytes written to the store"
        )
        return final

    def get_classified(
        self, benchmark: str, scale: float, config: ClassifierConfig
    ) -> Optional[ClassificationRun]:
        """Load a stored classification run, or ``None``."""
        path = self.classified_path(benchmark, scale, config)
        if not path.exists():
            self._record_read(path, hit=False)
            return None
        try:
            run = _read_classified(path, benchmark)
        except Exception:
            self._discard(path)
            self._record_read(path, hit=False, corrupt=True)
            return None
        self._record_read(path, hit=True)
        return run

    def put_classified(
        self,
        benchmark: str,
        scale: float,
        config: ClassifierConfig,
        run: ClassificationRun,
    ) -> Optional[Path]:
        """Persist a classification run (same failure contract as
        :meth:`put_trace`)."""
        final = self.classified_path(benchmark, scale, config)
        tmp = self._tmp_for(final)
        try:
            final.parent.mkdir(parents=True, exist_ok=True)
            _write_classified(tmp, benchmark, run)
            written = tmp.stat().st_size
            self._publish(tmp, final)
        except Exception:
            self._discard(tmp)
            self._count("write_errors", help="Failed store writes")
            return None
        self._count("writes", help="Store entries written")
        self._count(
            "written_bytes", written, help="Bytes written to the store"
        )
        return final

    # -- maintenance ----------------------------------------------------------

    def _entries(self, kind: str):
        base = self.root / kind
        if not base.is_dir():
            return
        for path in sorted(base.glob("*/*.npz")):
            if not path.name.endswith(".tmp.npz"):
                yield path

    def stats(self) -> StoreStats:
        """Count entries and bytes on disk (no payloads are read)."""
        entries: Dict[str, int] = {}
        sizes: Dict[str, int] = {}
        for kind in _KINDS:
            count = total = 0
            for path in self._entries(kind):
                try:
                    total += path.stat().st_size
                except OSError:  # pragma: no cover - raced deletion
                    continue
                count += 1
            entries[kind] = count
            sizes[kind] = total
        return StoreStats(root=self.root, entries=entries, bytes=sizes)

    def clear(self) -> int:
        """Delete every entry (and stray temp file); returns the number
        of entries removed."""
        removed = 0
        for kind in _KINDS:
            base = self.root / kind
            if not base.is_dir():
                continue
            for path in sorted(base.glob("*/*.npz")):
                entry = not path.name.endswith(".tmp.npz")
                self._discard(path)
                removed += int(entry)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore(root={str(self.root)!r})"


# -- classified payload format ------------------------------------------------


def _write_classified(
    path: Path, benchmark: str, run: ClassificationRun
) -> None:
    results = run.results
    header = {
        "schema": SCHEMA_VERSION,
        "benchmark": benchmark,
        "num_phases": run.num_phases,
        "evictions": run.evictions,
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
        phase_ids=np.array([r.phase_id for r in results], dtype=np.int64),
        matched=np.array([r.matched for r in results], dtype=bool),
        distances=np.array([r.distance for r in results], dtype=np.float64),
        tightened=np.array(
            [r.threshold_tightened for r in results], dtype=bool
        ),
        allocated=np.array(
            [r.new_phase_allocated for r in results], dtype=bool
        ),
    )


def _read_classified(path: Path, benchmark: str) -> ClassificationRun:
    with np.load(path, allow_pickle=False) as data:
        header = json.loads(bytes(data["header"]).decode("utf-8"))
        phase_ids = data["phase_ids"]
        matched = data["matched"]
        distances = data["distances"]
        tightened = data["tightened"]
        allocated = data["allocated"]
    if header.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"store schema {header.get('schema')!r} != {SCHEMA_VERSION}"
        )
    if header.get("benchmark") != benchmark:
        raise ValueError("entry does not belong to this key")
    if not (
        phase_ids.shape == matched.shape == distances.shape
        == tightened.shape == allocated.shape
    ):
        raise ValueError("inconsistent classified payload arrays")
    results = [
        ClassificationResult(
            phase_id=int(phase_ids[i]),
            matched=bool(matched[i]),
            distance=float(distances[i]),
            threshold_tightened=bool(tightened[i]),
            new_phase_allocated=bool(allocated[i]),
        )
        for i in range(phase_ids.shape[0])
    ]
    return ClassificationRun(
        results=results,
        num_phases=int(header["num_phases"]),
        evictions=int(header["evictions"]),
    )
