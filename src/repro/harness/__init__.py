"""Experiment harness: regenerates every table and figure of the paper.

Each experiment in :mod:`repro.harness.figures` reproduces one figure of
the evaluation, printing the same per-benchmark rows/series the paper
reports. Traces are generated once per process and shared across
experiments (:mod:`repro.harness.cache`).

Run everything from the command line::

    repro-phases --scale 0.5          # all figures, half-length runs
    repro-phases fig4 fig8            # selected figures

or programmatically::

    from repro.harness import run_experiment
    result = run_experiment("fig4", scale=0.5)
    print(result.rendered)
"""

from repro.harness.cache import (
    cached_classified,
    cached_trace,
    clear_cache,
    set_cache_telemetry,
)
from repro.harness.experiment import (
    EXPERIMENT_NAMES,
    ExperimentResult,
    run_experiment,
)
from repro.harness.sweep import SweepResult, sweep_classifier

__all__ = [
    "EXPERIMENT_NAMES",
    "ExperimentResult",
    "SweepResult",
    "cached_classified",
    "cached_trace",
    "clear_cache",
    "run_experiment",
    "set_cache_telemetry",
    "sweep_classifier",
]
