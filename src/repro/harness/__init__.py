"""Experiment harness: regenerates every table and figure of the paper.

Each experiment in :mod:`repro.harness.figures` reproduces one figure of
the evaluation, printing the same per-benchmark rows/series the paper
reports. Traces are generated once per process and shared across
experiments (:mod:`repro.harness.cache`); the
:class:`~repro.harness.engine.ExperimentEngine` computes each
experiment's declared work-unit grid across a process pool and persists
the results in a content-addressed on-disk store
(:mod:`repro.harness.store`), so repeat runs start warm.

Run everything from the command line::

    repro-phases --scale 0.5          # all figures, half-length runs
    repro-phases fig4 fig8            # selected figures
    repro-phases --jobs 4 fig4        # parallel work-grid computation
    repro-phases cache stats          # inspect the on-disk store

or programmatically::

    from repro.harness import run_experiment
    result = run_experiment("fig4", scale=0.5)
    print(result.rendered)
"""

from repro.harness.cache import (
    cached_classified,
    cached_trace,
    clear_cache,
    get_result_store,
    set_cache_telemetry,
    set_result_store,
)
from repro.harness.engine import (
    EngineReport,
    ExperimentEngine,
    WorkUnit,
    dedupe_units,
    validate_unit_result,
)
from repro.harness.experiment import (
    EXPERIMENT_NAMES,
    ExperimentResult,
    experiment_work_units,
    run_experiment,
)
from repro.harness.store import ResultStore, StoreStats, default_store_root
from repro.harness.sweep import SweepResult, sweep_classifier, sweep_work_units

__all__ = [
    "EXPERIMENT_NAMES",
    "EngineReport",
    "ExperimentEngine",
    "ExperimentResult",
    "ResultStore",
    "StoreStats",
    "SweepResult",
    "WorkUnit",
    "cached_classified",
    "cached_trace",
    "clear_cache",
    "dedupe_units",
    "default_store_root",
    "experiment_work_units",
    "get_result_store",
    "run_experiment",
    "set_cache_telemetry",
    "set_result_store",
    "sweep_classifier",
    "sweep_work_units",
    "validate_unit_result",
]
