"""Exception hierarchy for the ``repro`` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one base class. Configuration
mistakes raise :class:`ConfigurationError` (a subclass of ``ValueError``
as well, to honour the principle of least surprise for library users who
expect bad arguments to raise ``ValueError``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration value was supplied.

    Raised eagerly at construction time (not at use time) so that a
    misconfigured experiment fails before any simulation work is done.
    """


class TraceError(ReproError):
    """A workload trace is malformed or inconsistent.

    For example: an interval trace whose CPI array length disagrees with
    its branch-record structure, or a trace with zero intervals.
    """


class PredictionError(ReproError):
    """A predictor was driven incorrectly.

    For example: asking a predictor for statistics before any interval
    has been observed, or updating with a phase ID that was never
    predicted against.
    """


class SimulationError(ReproError):
    """The microarchitecture substrate was driven with invalid inputs."""


class TelemetryError(ReproError):
    """The telemetry layer was misused.

    For example: registering two metrics with the same name but
    different kinds, an invalid metric name, or exporting with an
    unknown format.
    """
