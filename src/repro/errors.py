"""Exception hierarchy for the ``repro`` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one base class. Configuration
mistakes raise :class:`ConfigurationError` (a subclass of ``ValueError``
as well, to honour the principle of least surprise for library users who
expect bad arguments to raise ``ValueError``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration value was supplied.

    Raised eagerly at construction time (not at use time) so that a
    misconfigured experiment fails before any simulation work is done.
    """


class TraceError(ReproError):
    """A workload trace is malformed or inconsistent.

    For example: an interval trace whose CPI array length disagrees with
    its branch-record structure, or a trace with zero intervals.
    """


class PredictionError(ReproError):
    """A predictor was driven incorrectly.

    For example: asking a predictor for statistics before any interval
    has been observed, or updating with a phase ID that was never
    predicted against.
    """


class SimulationError(ReproError):
    """The microarchitecture substrate was driven with invalid inputs."""


class EngineError(ReproError):
    """The parallel experiment engine was misused or a worker returned
    a result that fails the sequential-shape contract.

    Raised for invalid worker counts and whenever a parallel result is
    not structurally identical to what the sequential path produces
    (wrong type, interval-count mismatch, malformed phase IDs) — the
    admission check that keeps ``--jobs N`` bit-deterministic.
    """


class PoolError(ReproError):
    """The structure-of-arrays tracker pool was misused.

    Raised for out-of-range or unallocated slot handles, for
    allocation from a full pool with growth disabled, and for
    configurations the pool cannot host (an infinite signature table).
    Registry callers treat an allocation failure as a soft signal and
    fall back to a scalar :class:`~repro.core.online.PhaseTracker`.
    """


class TelemetryError(ReproError):
    """The telemetry layer was misused.

    For example: registering two metrics with the same name but
    different kinds, an invalid metric name, or exporting with an
    unknown format.
    """


class ServiceError(ReproError):
    """Base class for the phase-classification service layer.

    Splits into two families a caller must treat differently:
    *application* errors the server reported (a subclass per protocol
    error code — the request reached the service and was refused) and
    :class:`ServiceTransportError` (the request may never have arrived).
    """


class ProtocolError(ServiceError):
    """A message violated the newline-delimited-JSON wire protocol.

    Raised server-side for malformed or unknown requests, and
    client-side when a response cannot be decoded.
    """


class SessionNotFoundError(ServiceError):
    """The named session does not exist (never opened, closed, evicted
    by the LRU cap, or expired by the idle TTL)."""


class SessionExistsError(ServiceError):
    """An ``open`` request named a session that is already live."""


class ServiceOverloadedError(ServiceError):
    """Admission control refused the request: the session table is at
    capacity (and LRU eviction is disabled) or an ingest limit was hit.

    Transient by design — the client may retry after backoff once load
    subsides.
    """


class ServiceUnavailableError(ServiceError):
    """The service is draining for shutdown and no longer admits new
    requests; queued work is still being classified."""


class SnapshotError(ServiceError):
    """A tracker snapshot document is malformed, of an unsupported
    version, or inconsistent with the classifier configuration."""


class SnapshotSchemaError(SnapshotError):
    """A snapshot document's ``schema_version`` does not match the one
    this build reads.

    Raised by the envelope validators (``loads`` / ``restore_tracker``)
    *before* any component state is touched, so a version skew surfaces
    as one clear error instead of failing deep inside predictor
    restore.
    """


class PersistenceError(ReproError):
    """The durable session tier was misused or its on-disk state is
    unusable.

    Routine damage — a torn journal tail after ``kill -9``, an
    unreadable checkpoint — is *not* reported this way: recovery treats
    it as a counted, non-fatal event. This exception is reserved for
    programming errors (bad sync mode, appending to a closed journal)
    and for data that cannot be safely interpreted at all.
    """


class ClusterError(ServiceError):
    """The cluster layer refused or could not complete a request.

    Raised by the dispatcher for unknown worker ids, migrations that
    cannot proceed (unknown session, last live worker), and requests
    whose worker connection was lost mid-exchange after the reconnect
    window expired. Carried on the wire as error code ``cluster``, so
    clients can distinguish a cluster-topology refusal from both
    single-service application errors and transport failures.
    """


class ServiceTransportError(ServiceError):
    """The client could not complete the exchange (connect failure,
    timeout, or a connection dropped mid-request).

    Unlike the application errors above, a transport failure leaves the
    request's fate unknown: it may or may not have been processed.
    """
