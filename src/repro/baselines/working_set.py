"""Working-set signature phase detection (Dhodapkar & Smith).

Dhodapkar & Smith (ISCA 2002, MICRO 2003) detect phases through the
instruction *working set*: each interval's signature is a bit vector —
a lossy-hashed set of the code units touched — and two intervals belong
to the same phase when the *relative working set distance*

    delta(A, B) = |A xor B| / |A or B|

is below a threshold. Compared to the accumulator signatures of
Sherwood et al. (and this paper), working-set signatures ignore how
*much* each block executed — only membership counts — which is exactly
the weakness the comparison experiment exposes on workloads whose
phases share code but shift its usage mix.

The classifier below mirrors the structure of
:class:`repro.core.classifier.PhaseClassifier` (signature table with
LRU, phase IDs) so its output plugs into the same CoV analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.events import ClassificationResult, ClassificationRun
from repro.errors import ConfigurationError
from repro.workloads.trace import Interval, IntervalTrace

#: Hash constants shared with the core accumulator (same folding).
_HASH_MULTIPLIER = np.uint64(2654435761)
_HASH_MASK = np.uint64(0xFFFF_FFFF)


@dataclass(frozen=True)
class WorkingSetConfig:
    """Knobs of the working-set phase detector.

    Parameters
    ----------
    signature_bits:
        Bit-vector width (Dhodapkar & Smith used 1024 bits).
    granularity_bytes:
        Code bytes folded onto one working-set element before hashing
        (models their working-set 'units').
    threshold:
        Maximum relative working-set distance for two intervals to
        share a phase (they used ~0.5).
    table_entries:
        Signature-table capacity with LRU replacement.
    """

    signature_bits: int = 1024
    granularity_bytes: int = 32
    threshold: float = 0.5
    table_entries: Optional[int] = 32

    def __post_init__(self) -> None:
        if self.signature_bits <= 0 or self.signature_bits & (
            self.signature_bits - 1
        ):
            raise ConfigurationError(
                "signature_bits must be a positive power of two, got "
                f"{self.signature_bits}"
            )
        if self.granularity_bytes <= 0 or self.granularity_bytes & (
            self.granularity_bytes - 1
        ):
            raise ConfigurationError(
                "granularity_bytes must be a positive power of two, got "
                f"{self.granularity_bytes}"
            )
        if not 0.0 < self.threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be in (0, 1], got {self.threshold}"
            )
        if self.table_entries is not None and self.table_entries <= 0:
            raise ConfigurationError(
                "table_entries must be positive or None"
            )


class WorkingSetSignature:
    """A lossy-hashed working set: a fixed-width bit vector."""

    __slots__ = ("bits",)

    def __init__(self, bits: np.ndarray) -> None:
        bits = np.asarray(bits, dtype=bool)
        if bits.ndim != 1 or bits.size == 0:
            raise ConfigurationError("bits must be a non-empty 1-D vector")
        self.bits = bits

    @classmethod
    def from_interval(
        cls, interval: Interval, config: WorkingSetConfig
    ) -> "WorkingSetSignature":
        """Hash the interval's touched code units into the bit vector."""
        shift = config.granularity_bytes.bit_length() - 1
        units = (
            np.asarray(interval.branch_pcs, dtype=np.uint64)
            >> np.uint64(shift)
        )
        hashed = (units * _HASH_MULTIPLIER) & _HASH_MASK
        folded = hashed ^ (hashed >> np.uint64(16))
        indices = (
            folded & np.uint64(config.signature_bits - 1)
        ).astype(np.int64)
        bits = np.zeros(config.signature_bits, dtype=bool)
        bits[indices] = True
        return cls(bits)

    def distance(self, other: "WorkingSetSignature") -> float:
        """Relative working-set distance: |A xor B| / |A or B|."""
        if self.bits.shape != other.bits.shape:
            raise ConfigurationError(
                "signatures have different widths"
            )
        union = int(np.logical_or(self.bits, other.bits).sum())
        if union == 0:
            return 0.0
        difference = int(np.logical_xor(self.bits, other.bits).sum())
        return difference / union

    @property
    def population(self) -> int:
        """Number of set bits (working-set size proxy)."""
        return int(self.bits.sum())


@dataclass
class _Entry:
    signature: WorkingSetSignature
    phase_id: int
    last_used: int


class WorkingSetClassifier:
    """Phase classification with working-set signatures.

    Emits the same :class:`~repro.core.events.ClassificationRun` as the
    core classifier so analyses compare like with like. No transition
    phase or adaptive thresholds — this is the related-work baseline.
    """

    def __init__(self, config: Optional[WorkingSetConfig] = None) -> None:
        self.config = config or WorkingSetConfig()
        self._entries: List[_Entry] = []
        self._clock = 0
        self._next_phase = 1
        self.evictions = 0

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def classify_interval(self, interval: Interval) -> ClassificationResult:
        signature = WorkingSetSignature.from_interval(interval, self.config)
        best: Optional[_Entry] = None
        best_distance = float("inf")
        for entry in self._entries:
            distance = entry.signature.distance(signature)
            if distance <= self.config.threshold and distance < best_distance:
                best = entry
                best_distance = distance

        if best is not None:
            best.signature = signature
            best.last_used = self._tick()
            return ClassificationResult(
                phase_id=best.phase_id,
                matched=True,
                distance=best_distance,
            )

        capacity = self.config.table_entries
        if capacity is not None and len(self._entries) >= capacity:
            victim = min(
                range(len(self._entries)),
                key=lambda i: self._entries[i].last_used,
            )
            del self._entries[victim]
            self.evictions += 1
        entry = _Entry(
            signature=signature,
            phase_id=self._next_phase,
            last_used=self._tick(),
        )
        self._next_phase += 1
        self._entries.append(entry)
        return ClassificationResult(
            phase_id=entry.phase_id, matched=False, distance=0.0
        )

    def classify_trace(self, trace: IntervalTrace) -> ClassificationRun:
        results = [self.classify_interval(iv) for iv in trace]
        return ClassificationRun(
            results=results,
            num_phases=self._next_phase - 1,
            evictions=self.evictions,
        )
