"""Related-work baselines the paper positions itself against (§2).

- :mod:`repro.baselines.working_set` — Dhodapkar & Smith's working-set
  signature phase detector: per-interval bit-vector signatures of
  touched code, relative working-set distance, and a signature table —
  the main alternative hardware phase detector of the era.
- :mod:`repro.baselines.metric_prediction` — Duesterwald, Cascaval &
  Dwarkadas-style statistical predictors that forecast a hardware
  metric's *value* (CPI here) directly: last value, exponentially
  weighted moving average, and a history-pattern table. The paper
  argues phase-ID prediction subsumes these because one phase ID
  predicts many metrics at once; the ``baselines`` experiment
  quantifies the comparison.
"""

from repro.baselines.metric_prediction import (
    EWMAPredictor,
    HistoryTablePredictor,
    LastValueMetricPredictor,
    MetricPredictionStats,
    PhaseBasedMetricPredictor,
    evaluate_metric_predictor,
)
from repro.baselines.working_set import (
    WorkingSetClassifier,
    WorkingSetConfig,
    WorkingSetSignature,
)

__all__ = [
    "EWMAPredictor",
    "HistoryTablePredictor",
    "LastValueMetricPredictor",
    "MetricPredictionStats",
    "PhaseBasedMetricPredictor",
    "WorkingSetClassifier",
    "WorkingSetConfig",
    "WorkingSetSignature",
    "evaluate_metric_predictor",
]
