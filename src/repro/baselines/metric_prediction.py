"""Statistical metric-value prediction (Duesterwald et al., PACT 2003).

Instead of predicting a phase *ID*, these predictors forecast the next
interval's value of a hardware metric (CPI here) directly:

- :class:`LastValueMetricPredictor` — next value = current value.
- :class:`EWMAPredictor` — exponentially weighted moving average.
- :class:`HistoryTablePredictor` — a table keyed by the quantized
  recent value history, predicting the value that followed that
  pattern before (Duesterwald's cross-metric table predictor, single
  metric variant).
- :class:`PhaseBasedMetricPredictor` — the paper's counter-proposal:
  predict the *phase* of the next interval (last-value phase
  prediction) and emit that phase's running-average CPI. One phase ID
  stream serves any number of metrics.

All are evaluated by :func:`evaluate_metric_predictor`, which reports
mean absolute percentage error (MAPE) over a trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, PredictionError


class LastValueMetricPredictor:
    """Predict the next value equals the current one."""

    def __init__(self) -> None:
        self._current: Optional[float] = None

    def predict(self) -> Optional[float]:
        return self._current

    def observe(self, value: float) -> None:
        self._current = value


class EWMAPredictor:
    """Exponentially weighted moving average prediction.

    ``alpha`` is the weight of the newest observation; alpha = 1 makes
    this the last-value predictor.
    """

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must be in (0, 1], got {alpha}"
            )
        self.alpha = alpha
        self._average: Optional[float] = None

    def predict(self) -> Optional[float]:
        return self._average

    def observe(self, value: float) -> None:
        if self._average is None:
            self._average = value
        else:
            self._average = (
                self.alpha * value + (1.0 - self.alpha) * self._average
            )


class HistoryTablePredictor:
    """Table predictor keyed by the quantized recent value history.

    Values are quantized into relative buckets (percent steps) so the
    key tolerates noise; each table entry remembers the value that
    followed the pattern last time. Misses fall back to last value.
    """

    def __init__(
        self,
        history: int = 2,
        bucket_percent: float = 10.0,
        entries: int = 64,
    ) -> None:
        if history < 1:
            raise ConfigurationError(f"history must be >= 1, got {history}")
        if bucket_percent <= 0:
            raise ConfigurationError(
                f"bucket_percent must be positive, got {bucket_percent}"
            )
        if entries < 1:
            raise ConfigurationError(f"entries must be >= 1, got {entries}")
        self.history = history
        self.bucket = bucket_percent / 100.0
        self.entries = entries
        self._table: "Dict[Tuple[int, ...], float]" = {}
        self._order: List[Tuple[int, ...]] = []
        self._values: List[float] = []

    def _quantize(self, value: float) -> int:
        return int(round(np.log(max(value, 1e-9)) / self.bucket))

    def _key(self) -> Optional[Tuple[int, ...]]:
        if len(self._values) < self.history:
            return None
        return tuple(
            self._quantize(v) for v in self._values[-self.history:]
        )

    def predict(self) -> Optional[float]:
        key = self._key()
        if key is not None and key in self._table:
            return self._table[key]
        return self._values[-1] if self._values else None

    def observe(self, value: float) -> None:
        key = self._key()
        if key is not None:
            if key not in self._table and len(self._table) >= self.entries:
                oldest = self._order.pop(0)
                del self._table[oldest]
            if key not in self._table:
                self._order.append(key)
            self._table[key] = value
        self._values.append(value)
        self._values = self._values[-(self.history + 1):]


class PhaseBasedMetricPredictor:
    """Predict the metric through the phase-ID stream (this paper's way).

    Maintains a running-average CPI per phase ID; the prediction for
    the next interval is the average of the predicted next phase
    (last-value phase prediction). Driven with *pairs* (phase_id,
    value) so it can be compared head-to-head with the value-only
    predictors.
    """

    def __init__(self) -> None:
        self._means: Dict[int, float] = {}
        self._counts: Dict[int, int] = {}
        self._current_phase: Optional[int] = None

    def predict(self) -> Optional[float]:
        if self._current_phase is None:
            return None
        mean = self._means.get(self._current_phase)
        return mean

    def observe(self, phase_id: int, value: float) -> None:
        count = self._counts.get(phase_id, 0) + 1
        mean = self._means.get(phase_id, 0.0)
        self._means[phase_id] = mean + (value - mean) / count
        self._counts[phase_id] = count
        self._current_phase = phase_id


@dataclass
class MetricPredictionStats:
    """Prediction-error summary over a metric stream."""

    predictions: int
    mean_absolute_error: float
    mape: float

    @property
    def accuracy_within_10_percent(self) -> Optional[float]:
        """Set by the evaluator when per-point errors were collected."""
        return getattr(self, "_within_10", None)


def evaluate_metric_predictor(
    values: Sequence[float],
    predictor,
    phase_ids: Optional[Sequence[int]] = None,
) -> MetricPredictionStats:
    """Drive a metric predictor over a value stream and score it.

    ``phase_ids`` is required for :class:`PhaseBasedMetricPredictor`
    (its observe() takes the phase alongside the value).
    """
    values = list(values)
    if len(values) < 2:
        raise PredictionError("need at least two values to evaluate")
    phase_based = isinstance(predictor, PhaseBasedMetricPredictor)
    if phase_based and (
        phase_ids is None or len(phase_ids) != len(values)
    ):
        raise PredictionError(
            "phase_ids must parallel values for phase-based prediction"
        )

    errors: List[float] = []
    relative: List[float] = []
    within = 0
    for index, value in enumerate(values):
        prediction = predictor.predict()
        if index > 0 and prediction is not None:
            error = abs(prediction - value)
            errors.append(error)
            relative.append(error / max(abs(value), 1e-12))
            if relative[-1] <= 0.10:
                within += 1
        if phase_based:
            predictor.observe(int(phase_ids[index]), value)
        else:
            predictor.observe(value)

    if not errors:
        raise PredictionError("predictor never produced a prediction")
    stats = MetricPredictionStats(
        predictions=len(errors),
        mean_absolute_error=float(np.mean(errors)),
        mape=float(np.mean(relative)),
    )
    stats._within_10 = within / len(errors)  # type: ignore[attr-defined]
    return stats
