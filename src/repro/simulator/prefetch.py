"""Next-line (one-block-lookahead) prefetching.

Instruction fetch is highly sequential, so SimpleScalar-era machines
commonly front the I-cache with a tagged next-line prefetcher (Smith's
one-block lookahead): on an access to block B, block B+1 is brought in
if absent. The prefetcher wraps any :class:`~repro.simulator.cache.Cache`
and reports separate demand and prefetch statistics so coverage and
accuracy can be measured.

This is an optional substrate feature (Table 1 does not specify a
prefetcher); the ``bench_ablation_prefetch`` benchmark quantifies what
it would change for the big-code gcc models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.simulator.cache import Cache


@dataclass
class PrefetchStats:
    """Demand-side and prefetch-side counters."""

    demand_accesses: int = 0
    demand_misses: int = 0
    prefetches_issued: int = 0
    prefetches_useless: int = 0  # target already resident

    @property
    def demand_miss_rate(self) -> float:
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_misses / self.demand_accesses

    @property
    def issue_rate(self) -> float:
        """Prefetches issued per demand access."""
        if self.demand_accesses == 0:
            return 0.0
        return self.prefetches_issued / self.demand_accesses


class NextLinePrefetcher:
    """Tagged one-block-lookahead prefetcher in front of a cache.

    On every demand *miss* (tagged prefetching), the next sequential
    block is installed if absent. Prefetch fills do not perturb the
    demand statistics of the wrapped cache beyond their effect on
    contents — the wrapped cache's stats are bypassed for prefetch
    fills by accounting them here instead.
    """

    def __init__(self, cache: Cache, degree: int = 1) -> None:
        if degree < 1:
            raise ConfigurationError(f"degree must be >= 1, got {degree}")
        self.cache = cache
        self.degree = degree
        self.stats = PrefetchStats()

    def access(self, address: int) -> bool:
        """Demand access with tagged next-line prefetch on miss."""
        hit = self.cache.access(address)
        self.stats.demand_accesses += 1
        if hit:
            return True
        self.stats.demand_misses += 1
        block_bytes = self.cache.config.block_bytes
        base_block = (address // block_bytes) * block_bytes
        for step in range(1, self.degree + 1):
            target = base_block + step * block_bytes
            if self.cache.contains(target):
                self.stats.prefetches_useless += 1
                continue
            # Install without charging the demand-side statistics.
            self.cache.access(target)
            self.cache.stats.accesses -= 1
            self.cache.stats.misses -= 1
            self.stats.prefetches_issued += 1
        return False

    def reset_stats(self) -> None:
        self.stats = PrefetchStats()
