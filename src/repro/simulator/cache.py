"""Set-associative cache model with LRU replacement.

This is the data/instruction/L2 cache substrate used to calibrate the
per-region event rates of synthetic workloads (DESIGN.md §2). The model
is a functional cache: it tracks tags and replacement state and reports
hits and misses, but does not model timing (timing is the job of
:class:`repro.simulator.core_model.CoreModel`).

The geometry defaults correspond to the paper's Table 1:

- L1 I-cache: 16 KB, 4-way, 32-byte blocks
- L1 D-cache: 16 KB, 4-way, 32-byte blocks
- L2: 128 KB, 8-way, 64-byte blocks
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

import numpy as np

from repro.errors import ConfigurationError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a set-associative cache.

    Parameters
    ----------
    size_bytes:
        Total capacity in bytes. Must be a power of two.
    assoc:
        Number of ways per set. Must be a power of two.
    block_bytes:
        Line size in bytes. Must be a power of two.
    name:
        Human-readable label used in statistics output.
    """

    size_bytes: int
    assoc: int
    block_bytes: int
    name: str = "cache"

    def __post_init__(self) -> None:
        for label, value in (
            ("size_bytes", self.size_bytes),
            ("assoc", self.assoc),
            ("block_bytes", self.block_bytes),
        ):
            if not _is_power_of_two(value):
                raise ConfigurationError(
                    f"{self.name}: {label} must be a positive power of two, "
                    f"got {value}"
                )
        if self.assoc * self.block_bytes > self.size_bytes:
            raise ConfigurationError(
                f"{self.name}: one set ({self.assoc} ways x "
                f"{self.block_bytes} B) does not fit in {self.size_bytes} B"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets in the cache."""
        return self.size_bytes // (self.assoc * self.block_bytes)

    @property
    def block_shift(self) -> int:
        """log2 of the block size, for address decomposition."""
        return self.block_bytes.bit_length() - 1

    @property
    def index_mask(self) -> int:
        return self.num_sets - 1


@dataclass
class CacheStats:
    """Access counters for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses per access; 0.0 when the cache has not been accessed."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return the sum of two stats records (for aggregating runs)."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            writebacks=self.writebacks + other.writebacks,
        )


class Cache:
    """A set-associative cache with true-LRU replacement.

    The cache tracks block tags only (no data), which is all that is
    needed to measure hit/miss behaviour. Addresses are byte addresses.

    Example
    -------
    >>> cfg = CacheConfig(size_bytes=16 * 1024, assoc=4, block_bytes=32)
    >>> cache = Cache(cfg)
    >>> cache.access(0x1000)   # cold miss
    False
    >>> cache.access(0x1004)   # same block: hit
    True
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        # tags[set][way]; -1 marks an invalid way.
        self._tags = np.full(
            (config.num_sets, config.assoc), -1, dtype=np.int64
        )
        # lru[set][way]: higher value == more recently used.
        self._lru = np.zeros((config.num_sets, config.assoc), dtype=np.int64)
        # dirty[set][way]: line was written (write-back policy).
        self._dirty = np.zeros((config.num_sets, config.assoc), dtype=bool)
        self._use_clock = 0

    # -- address decomposition -------------------------------------------

    def _decompose(self, address: int) -> "tuple[int, int]":
        block = address >> self.config.block_shift
        set_index = block & self.config.index_mask
        tag = block >> (self.config.num_sets.bit_length() - 1)
        return set_index, tag

    # -- public API -------------------------------------------------------

    def access(self, address: int, write: bool = False) -> bool:
        """Access one byte address; return ``True`` on hit.

        On a miss the block is filled (write-allocate), evicting the
        LRU way of its set; evicting a dirty line counts a write-back.
        ``write`` marks the touched line dirty (write-back policy).
        """
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        set_index, tag = self._decompose(address)
        self.stats.accesses += 1
        self._use_clock += 1

        ways = self._tags[set_index]
        hit_ways = np.nonzero(ways == tag)[0]
        if hit_ways.size:
            way = int(hit_ways[0])
            self._lru[set_index, way] = self._use_clock
            if write:
                self._dirty[set_index, way] = True
            self.stats.hits += 1
            return True

        # Miss: fill into the invalid way if any, else evict true LRU.
        invalid = np.nonzero(ways == -1)[0]
        if invalid.size:
            victim = int(invalid[0])
        else:
            victim = int(np.argmin(self._lru[set_index]))
            if self._dirty[set_index, victim]:
                self.stats.writebacks += 1
        self._tags[set_index, victim] = tag
        self._lru[set_index, victim] = self._use_clock
        self._dirty[set_index, victim] = write
        self.stats.misses += 1
        return False

    def access_many(self, addresses: Iterable[int]) -> int:
        """Access a sequence of addresses; return the number of misses."""
        misses_before = self.stats.misses
        for address in addresses:
            self.access(int(address))
        return self.stats.misses - misses_before

    def contains(self, address: int) -> bool:
        """Check residency without touching stats or LRU state."""
        set_index, tag = self._decompose(address)
        return bool(np.any(self._tags[set_index] == tag))

    def flush(self) -> None:
        """Invalidate every line; statistics are preserved.

        Dirty lines are dropped without counting write-backs (an
        invalidating flush, matching SimpleScalar's cache_flush).
        """
        self._tags.fill(-1)
        self._lru.fill(0)
        self._dirty.fill(False)
        self._use_clock = 0

    def reset_stats(self) -> None:
        """Zero the statistics counters; contents are preserved."""
        self.stats = CacheStats()

    @property
    def resident_blocks(self) -> int:
        """Number of valid lines currently held."""
        return int(np.count_nonzero(self._tags != -1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cfg = self.config
        return (
            f"Cache({cfg.name}: {cfg.size_bytes}B {cfg.assoc}-way "
            f"{cfg.block_bytes}B blocks, miss_rate="
            f"{self.stats.miss_rate:.4f})"
        )


class CacheHierarchy:
    """A two-level hierarchy: split L1 I/D in front of a unified L2.

    ``access_instruction`` and ``access_data`` return ``(l1_hit, l2_hit)``
    where ``l2_hit`` is ``None`` when the L1 hit (the L2 was not
    consulted). This mirrors the paper's Table 1 hierarchy.
    """

    def __init__(
        self,
        icache: Optional[Cache] = None,
        dcache: Optional[Cache] = None,
        l2: Optional[Cache] = None,
    ) -> None:
        self.icache = icache or Cache(
            CacheConfig(16 * 1024, 4, 32, name="il1")
        )
        self.dcache = dcache or Cache(
            CacheConfig(16 * 1024, 4, 32, name="dl1")
        )
        self.l2 = l2 or Cache(CacheConfig(128 * 1024, 8, 64, name="ul2"))

    def access_instruction(self, address: int) -> "tuple[bool, Optional[bool]]":
        if self.icache.access(address):
            return True, None
        return False, self.l2.access(address)

    def access_data(self, address: int) -> "tuple[bool, Optional[bool]]":
        if self.dcache.access(address):
            return True, None
        return False, self.l2.access(address)

    def flush(self) -> None:
        self.icache.flush()
        self.dcache.flush()
        self.l2.flush()

    def reset_stats(self) -> None:
        self.icache.reset_stats()
        self.dcache.reset_stats()
        self.l2.reset_stats()

    def stats_summary(self) -> "dict[str, CacheStats]":
        return {
            "il1": self.icache.stats,
            "dl1": self.dcache.stats,
            "ul2": self.l2.stats,
        }
