"""Microarchitecture substrate: the SimpleScalar substitute.

The paper (Table 1) simulates an out-of-order core with split 16 KB L1
caches, a 128 KB L2, a hybrid gshare+bimodal branch predictor and a
fixed-latency TLB, using SimpleScalar. This package provides the same
machine as a set of composable Python models:

- :mod:`repro.simulator.cache` — set-associative caches with LRU.
- :mod:`repro.simulator.branch` — bimodal, gshare and hybrid predictors.
- :mod:`repro.simulator.tlb` — a TLB with fixed miss latency.
- :mod:`repro.simulator.core_model` — an analytic out-of-order CPI model
  that converts per-interval event *rates* into cycles per instruction
  using Table 1 latencies.
- :mod:`repro.simulator.machine` — wires the above into the Table 1
  baseline machine and calibrates workload code regions.

The models are event-driven (per memory reference / per branch) rather
than cycle-driven: phase classification consumes only branch records and
per-interval CPI, so event rates plus an analytic timing model preserve
all behaviour the paper's experiments measure. See DESIGN.md §2.
"""

from repro.simulator.branch import (
    BimodalPredictor,
    GSharePredictor,
    HybridPredictor,
)
from repro.simulator.cache import Cache, CacheConfig, CacheHierarchy, CacheStats
from repro.simulator.core_model import CoreModel, CoreTimings, EventRates
from repro.simulator.machine import Machine, MachineConfig, RegionCalibration
from repro.simulator.sampling import SampledStream
from repro.simulator.tlb import TLB, TLBConfig

__all__ = [
    "BimodalPredictor",
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "CacheStats",
    "CoreModel",
    "CoreTimings",
    "EventRates",
    "GSharePredictor",
    "HybridPredictor",
    "Machine",
    "MachineConfig",
    "RegionCalibration",
    "SampledStream",
    "TLB",
    "TLBConfig",
]
