"""Two-level local-history branch predictor (PAg).

Yeh & Patt's per-address two-level scheme: a table of per-branch
history registers indexes a shared table of 2-bit counters. Local
history captures per-branch periodic patterns (loop trip counts) that
global history dilutes when many branches interleave — the natural
third component alongside gshare and bimodal. Not part of the Table 1
machine; offered for machine-model ablations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

_COUNTER_MAX = 3
_TAKEN_THRESHOLD = 2
_WEAKLY_NOT_TAKEN = 1


class LocalHistoryPredictor:
    """Per-branch history indexing a shared pattern table.

    Parameters
    ----------
    history_bits:
        Width of each branch's local history register.
    history_entries:
        Number of per-branch history registers (power of two).
    pattern_entries:
        Counter table size (power of two); indexed by the local
        history XOR-folded with the PC to reduce cross-branch aliasing.
    """

    def __init__(
        self,
        history_bits: int = 10,
        history_entries: int = 1024,
        pattern_entries: int = 1024,
    ) -> None:
        for label, value in (
            ("history_entries", history_entries),
            ("pattern_entries", pattern_entries),
        ):
            if value <= 0 or value & (value - 1):
                raise ConfigurationError(
                    f"{label} must be a power of two, got {value}"
                )
        if not 1 <= history_bits <= 20:
            raise ConfigurationError(
                f"history_bits must be in [1, 20], got {history_bits}"
            )
        self.history_bits = history_bits
        self.history_entries = history_entries
        self.pattern_entries = pattern_entries
        self._history_mask = (1 << history_bits) - 1
        self._histories = np.zeros(history_entries, dtype=np.int64)
        self._counters = np.full(
            pattern_entries, _WEAKLY_NOT_TAKEN, dtype=np.int8
        )
        self.predictions = 0
        self.mispredictions = 0

    def _history_index(self, pc: int) -> int:
        return (pc >> 2) & (self.history_entries - 1)

    def _pattern_index(self, pc: int) -> int:
        history = int(self._histories[self._history_index(pc)])
        return (history ^ (pc >> 2)) & (self.pattern_entries - 1)

    def local_history(self, pc: int) -> int:
        """The branch's current local history register (for tests)."""
        return int(self._histories[self._history_index(pc)])

    def predict(self, pc: int) -> bool:
        return bool(
            self._counters[self._pattern_index(pc)] >= _TAKEN_THRESHOLD
        )

    def update(self, pc: int, taken: bool) -> None:
        """Train the pattern counter, then shift the local history."""
        index = self._pattern_index(pc)
        counter = int(self._counters[index])
        if taken:
            counter = min(counter + 1, _COUNTER_MAX)
        else:
            counter = max(counter - 1, 0)
        self._counters[index] = counter
        history_index = self._history_index(pc)
        self._histories[history_index] = (
            (int(self._histories[history_index]) << 1) | int(taken)
        ) & self._history_mask

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        prediction = self.predict(pc)
        correct = prediction == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        self.update(pc, taken)
        return correct

    @property
    def misprediction_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions

    def reset_stats(self) -> None:
        self.predictions = 0
        self.mispredictions = 0
