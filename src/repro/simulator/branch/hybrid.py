"""Hybrid (tournament) branch predictor: gshare + bimodal + chooser.

The Table 1 machine uses "hybrid - 8-bit gshare w/ 2k 2-bit predictors +
a 8k bimodal predictor". A per-PC meta table of 2-bit counters selects
which component's prediction to use; the chooser is trained toward
whichever component was correct when they disagree (McFarling's
combining scheme, as implemented by SimpleScalar's ``bpred_comb``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.simulator.branch.bimodal import BimodalPredictor
from repro.simulator.branch.gshare import GSharePredictor

_META_MAX = 3
_USE_GSHARE_THRESHOLD = 2


class HybridPredictor:
    """Tournament predictor combining gshare and bimodal components.

    The meta (chooser) table holds 2-bit counters: values >= 2 select the
    gshare component. The chooser is only trained when the two components
    disagree.
    """

    def __init__(
        self,
        gshare: "GSharePredictor | None" = None,
        bimodal: "BimodalPredictor | None" = None,
        meta_entries: int = 2048,
    ) -> None:
        if meta_entries <= 0 or meta_entries & (meta_entries - 1):
            raise ConfigurationError(
                f"meta_entries must be a power of two, got {meta_entries}"
            )
        self.gshare = gshare or GSharePredictor()
        self.bimodal = bimodal or BimodalPredictor()
        self.meta_entries = meta_entries
        self._meta = np.full(meta_entries, _USE_GSHARE_THRESHOLD, dtype=np.int8)
        self.predictions = 0
        self.mispredictions = 0

    def _meta_index(self, pc: int) -> int:
        return (pc >> 2) & (self.meta_entries - 1)

    def predict(self, pc: int) -> bool:
        """Return the selected component's prediction for ``pc``."""
        if self._meta[self._meta_index(pc)] >= _USE_GSHARE_THRESHOLD:
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict ``pc``, train all components, and return correctness."""
        gshare_pred = self.gshare.predict(pc)
        bimodal_pred = self.bimodal.predict(pc)
        meta_index = self._meta_index(pc)
        use_gshare = self._meta[meta_index] >= _USE_GSHARE_THRESHOLD
        prediction = gshare_pred if use_gshare else bimodal_pred

        correct = prediction == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1

        # Train the chooser only on disagreement.
        if gshare_pred != bimodal_pred:
            meta = int(self._meta[meta_index])
            if gshare_pred == taken:
                meta = min(meta + 1, _META_MAX)
            else:
                meta = max(meta - 1, 0)
            self._meta[meta_index] = meta

        # Both components always train on the actual outcome.
        self.gshare.update(pc, taken)
        self.bimodal.update(pc, taken)
        return correct

    @property
    def misprediction_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions

    def reset_stats(self) -> None:
        self.predictions = 0
        self.mispredictions = 0
        self.gshare.reset_stats()
        self.bimodal.reset_stats()
