"""Bimodal (per-PC 2-bit counter) branch predictor.

A classic Smith predictor: a table of 2-bit saturating counters indexed
by branch PC. Counters count 0..3; values >= 2 predict taken. The
paper's hybrid uses an 8K-entry bimodal component (Table 1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

_COUNTER_MAX = 3
_TAKEN_THRESHOLD = 2
_WEAKLY_NOT_TAKEN = 1


class BimodalPredictor:
    """2-bit saturating-counter predictor indexed by PC.

    Parameters
    ----------
    entries:
        Table size; must be a power of two (default 8192 per Table 1).
    """

    def __init__(self, entries: int = 8192) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigurationError(
                f"bimodal entries must be a power of two, got {entries}"
            )
        self.entries = entries
        self._counters = np.full(entries, _WEAKLY_NOT_TAKEN, dtype=np.int8)
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        # Drop the two low bits (instruction alignment) before indexing.
        return (pc >> 2) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        """Return the taken/not-taken prediction for ``pc``."""
        return bool(self._counters[self._index(pc)] >= _TAKEN_THRESHOLD)

    def update(self, pc: int, taken: bool) -> None:
        """Train the counter for ``pc`` with the actual outcome."""
        index = self._index(pc)
        counter = int(self._counters[index])
        if taken:
            counter = min(counter + 1, _COUNTER_MAX)
        else:
            counter = max(counter - 1, 0)
        self._counters[index] = counter

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict, record accuracy stats, then train. Returns correctness."""
        prediction = self.predict(pc)
        correct = prediction == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        self.update(pc, taken)
        return correct

    @property
    def misprediction_rate(self) -> float:
        """Mispredictions per prediction; 0.0 before any prediction."""
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions

    def reset_stats(self) -> None:
        self.predictions = 0
        self.mispredictions = 0
