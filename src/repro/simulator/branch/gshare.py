"""gshare branch predictor (global history XOR PC).

McFarling's gshare: a global branch-history register is XORed with the
branch PC to index a table of 2-bit saturating counters. The paper's
Table 1 hybrid uses an 8-bit gshare with 2K 2-bit counters.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

_COUNTER_MAX = 3
_TAKEN_THRESHOLD = 2
_WEAKLY_NOT_TAKEN = 1


class GSharePredictor:
    """Global-history XOR-indexed 2-bit counter predictor.

    Parameters
    ----------
    history_bits:
        Width of the global history register (default 8, per Table 1).
    entries:
        Counter table size; power of two (default 2048, per Table 1).
    """

    def __init__(self, history_bits: int = 8, entries: int = 2048) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigurationError(
                f"gshare entries must be a power of two, got {entries}"
            )
        if not 1 <= history_bits <= 30:
            raise ConfigurationError(
                f"gshare history_bits must be in [1, 30], got {history_bits}"
            )
        self.history_bits = history_bits
        self.entries = entries
        self._history = 0
        self._history_mask = (1 << history_bits) - 1
        self._counters = np.full(entries, _WEAKLY_NOT_TAKEN, dtype=np.int8)
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & (self.entries - 1)

    @property
    def history(self) -> int:
        """Current global history register value (for inspection/tests)."""
        return self._history

    def predict(self, pc: int) -> bool:
        return bool(self._counters[self._index(pc)] >= _TAKEN_THRESHOLD)

    def update(self, pc: int, taken: bool) -> None:
        """Train the indexed counter, then shift the outcome into history."""
        index = self._index(pc)
        counter = int(self._counters[index])
        if taken:
            counter = min(counter + 1, _COUNTER_MAX)
        else:
            counter = max(counter - 1, 0)
        self._counters[index] = counter
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        prediction = self.predict(pc)
        correct = prediction == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        self.update(pc, taken)
        return correct

    @property
    def misprediction_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions

    def reset_stats(self) -> None:
        self.predictions = 0
        self.mispredictions = 0
