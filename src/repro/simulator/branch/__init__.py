"""Branch predictor models.

The paper's Table 1 machine uses a hybrid predictor: an 8-bit-history
gshare with 2K 2-bit counters plus an 8K-entry bimodal predictor, with a
meta chooser selecting between them per branch. All three components are
implemented here:

- :class:`repro.simulator.branch.bimodal.BimodalPredictor`
- :class:`repro.simulator.branch.gshare.GSharePredictor`
- :class:`repro.simulator.branch.hybrid.HybridPredictor`

A two-level local-history (PAg) predictor is available as an ablation
component: :class:`repro.simulator.branch.local.LocalHistoryPredictor`.
"""

from repro.simulator.branch.bimodal import BimodalPredictor
from repro.simulator.branch.gshare import GSharePredictor
from repro.simulator.branch.hybrid import HybridPredictor
from repro.simulator.branch.local import LocalHistoryPredictor

__all__ = [
    "BimodalPredictor",
    "GSharePredictor",
    "HybridPredictor",
    "LocalHistoryPredictor",
]
