"""The Table 1 baseline machine: caches + branch predictor + TLB + core.

:class:`Machine` wires together the functional models from this package
and exposes :meth:`Machine.calibrate` — replay a region's sampled event
stream through the real structures, measure miss ratios, and fold them
into per-instruction :class:`~repro.simulator.core_model.EventRates`
that the analytic core model converts to CPI.

Calibration is run once per code region (regions are stationary by
construction); per-interval CPI is then drawn from the calibrated rates
with controlled noise by the workload generator. See DESIGN.md §2 for
why this preserves the behaviour the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.simulator.branch import HybridPredictor
from repro.simulator.cache import Cache, CacheConfig, CacheHierarchy
from repro.simulator.core_model import CoreModel, CoreTimings, EventRates
from repro.simulator.sampling import SampledStream
from repro.simulator.tlb import TLB, TLBConfig


@dataclass(frozen=True)
class MachineConfig:
    """Structural configuration of the baseline machine (paper Table 1)."""

    il1: CacheConfig = field(
        default_factory=lambda: CacheConfig(16 * 1024, 4, 32, name="il1")
    )
    dl1: CacheConfig = field(
        default_factory=lambda: CacheConfig(16 * 1024, 4, 32, name="dl1")
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(128 * 1024, 8, 64, name="ul2")
    )
    tlb: TLBConfig = field(default_factory=TLBConfig)
    timings: CoreTimings = field(default_factory=CoreTimings)
    gshare_history_bits: int = 8
    gshare_entries: int = 2048
    bimodal_entries: int = 8192
    #: Branch predictor style: "hybrid" (Table 1), or a single
    #: component ("bimodal" / "gshare" / "local") for ablations.
    branch_predictor: str = "hybrid"

    def __post_init__(self) -> None:
        if self.branch_predictor not in (
            "hybrid", "bimodal", "gshare", "local"
        ):
            raise SimulationError(
                f"unknown branch_predictor {self.branch_predictor!r}"
            )

    @staticmethod
    def table1() -> "MachineConfig":
        """The exact configuration of the paper's Table 1 (the default)."""
        return MachineConfig()


@dataclass(frozen=True)
class RegionCalibration:
    """Measured behaviour of one code region on the machine.

    ``rates`` feeds the analytic core model; ``cpi`` is the resulting
    steady-state CPI for the region. The raw miss ratios are retained for
    inspection and testing.
    """

    rates: EventRates
    cpi: float
    il1_miss_ratio: float
    dl1_miss_ratio: float
    l2_miss_ratio: float
    tlb_miss_ratio: float
    branch_mispredict_ratio: float


class Machine:
    """The baseline simulated machine.

    Example
    -------
    >>> machine = Machine()
    >>> # stream = some SampledStream from a workload region
    >>> # calibration = machine.calibrate(stream)
    >>> # calibration.cpi
    """

    def __init__(self, config: "MachineConfig | None" = None) -> None:
        self.config = config or MachineConfig.table1()
        self.core = CoreModel(self.config.timings)

    def _fresh_hierarchy(self) -> CacheHierarchy:
        return CacheHierarchy(
            icache=Cache(self.config.il1),
            dcache=Cache(self.config.dl1),
            l2=Cache(self.config.l2),
        )

    def _fresh_branch_predictor(self):
        from repro.simulator.branch import (
            BimodalPredictor,
            GSharePredictor,
            LocalHistoryPredictor,
        )

        style = self.config.branch_predictor
        if style == "bimodal":
            return BimodalPredictor(entries=self.config.bimodal_entries)
        if style == "gshare":
            return GSharePredictor(
                history_bits=self.config.gshare_history_bits,
                entries=self.config.gshare_entries,
            )
        if style == "local":
            return LocalHistoryPredictor()
        return HybridPredictor(
            gshare=GSharePredictor(
                history_bits=self.config.gshare_history_bits,
                entries=self.config.gshare_entries,
            ),
            bimodal=BimodalPredictor(entries=self.config.bimodal_entries),
        )

    def calibrate(
        self, stream: SampledStream, warmup_fraction: float = 0.25
    ) -> RegionCalibration:
        """Replay ``stream`` through fresh structures and measure rates.

        The first ``warmup_fraction`` of each event class is replayed to
        warm the structures, then statistics are reset and the remainder
        is measured — so cold-start misses do not pollute steady-state
        region behaviour.
        """
        if not 0.0 <= warmup_fraction < 1.0:
            raise SimulationError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
            )

        hierarchy = self._fresh_hierarchy()
        predictor = self._fresh_branch_predictor()
        tlb = TLB(self.config.tlb)

        # --- instruction fetches -------------------------------------
        fetches = stream.instruction_addresses
        split = int(len(fetches) * warmup_fraction)
        for address in fetches[:split]:
            hierarchy.access_instruction(int(address))
        hierarchy.icache.reset_stats()
        hierarchy.l2.reset_stats()
        for address in fetches[split:]:
            hierarchy.access_instruction(int(address))
        il1_ratio = hierarchy.icache.stats.miss_rate

        # --- data references (TLB translated alongside) --------------
        data = stream.data_addresses
        split = int(len(data) * warmup_fraction)
        for address in data[:split]:
            hierarchy.access_data(int(address))
            tlb.access(int(address))
        hierarchy.dcache.reset_stats()
        tlb.reset_stats()
        l2_after_fetch = hierarchy.l2.stats
        hierarchy.l2.reset_stats()
        for address in data[split:]:
            hierarchy.access_data(int(address))
            tlb.access(int(address))
        dl1_ratio = hierarchy.dcache.stats.miss_rate
        tlb_ratio = tlb.miss_rate
        # L2 ratio measured over L2 accesses from both fetch and data
        # measurement windows.
        l2_stats = l2_after_fetch.merge(hierarchy.l2.stats)
        l2_ratio = l2_stats.miss_rate

        # --- branches -------------------------------------------------
        pcs = stream.branch_pcs
        outcomes = stream.branch_taken
        split = int(len(pcs) * warmup_fraction)
        for pc, taken in zip(pcs[:split], outcomes[:split]):
            predictor.predict_and_update(int(pc), bool(taken))
        predictor.reset_stats()
        for pc, taken in zip(pcs[split:], outcomes[split:]):
            predictor.predict_and_update(int(pc), bool(taken))
        branch_ratio = predictor.misprediction_rate

        # --- fold ratios into per-instruction rates -------------------
        rates = EventRates(
            base_ipc=stream.base_ipc,
            branch_rate=stream.branches_per_instr,
            branch_mispredict_rate=branch_ratio * stream.branches_per_instr,
            il1_miss_rate=il1_ratio * stream.fetches_per_instr,
            dl1_miss_rate=dl1_ratio * stream.loads_per_instr,
            l2_miss_rate=l2_ratio
            * (
                il1_ratio * stream.fetches_per_instr
                + dl1_ratio * stream.loads_per_instr
            ),
            tlb_miss_rate=tlb_ratio * stream.loads_per_instr,
        )
        return RegionCalibration(
            rates=rates,
            cpi=self.core.cpi(rates),
            il1_miss_ratio=il1_ratio,
            dl1_miss_ratio=dl1_ratio,
            l2_miss_ratio=l2_ratio,
            tlb_miss_ratio=tlb_ratio,
            branch_mispredict_ratio=branch_ratio,
        )
