"""Sampled event streams fed to the machine model for calibration.

A :class:`SampledStream` is a statistically representative sample of one
code region's dynamic behaviour: instruction-fetch addresses, data
addresses, and branch (pc, outcome) pairs, plus the per-instruction
densities needed to convert observed miss counts into per-instruction
rates. Workload code regions produce these (see
:mod:`repro.workloads.generator`); :class:`repro.simulator.machine.Machine`
replays them through the real cache/branch/TLB models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError


@dataclass
class SampledStream:
    """A representative event sample for one code region.

    Parameters
    ----------
    instruction_addresses:
        Byte addresses of sampled instruction fetches (one per fetched
        block is fine; density is controlled by ``fetches_per_instr``).
    data_addresses:
        Byte addresses of sampled loads/stores.
    branch_pcs / branch_taken:
        Parallel arrays of sampled branch PCs and outcomes.
    base_ipc:
        Dependence-limited IPC of the region's code (no miss events).
    loads_per_instr:
        Data references per committed instruction (used to convert the
        measured D-cache miss *ratio* into a per-instruction rate).
    fetches_per_instr:
        Instruction-cache block fetches per committed instruction.
    branches_per_instr:
        Branches per committed instruction.
    """

    instruction_addresses: np.ndarray
    data_addresses: np.ndarray
    branch_pcs: np.ndarray
    branch_taken: np.ndarray
    base_ipc: float
    loads_per_instr: float
    fetches_per_instr: float
    branches_per_instr: float

    def __post_init__(self) -> None:
        self.instruction_addresses = np.asarray(
            self.instruction_addresses, dtype=np.int64
        )
        self.data_addresses = np.asarray(self.data_addresses, dtype=np.int64)
        self.branch_pcs = np.asarray(self.branch_pcs, dtype=np.int64)
        self.branch_taken = np.asarray(self.branch_taken, dtype=bool)
        if self.branch_pcs.shape != self.branch_taken.shape:
            raise SimulationError(
                "branch_pcs and branch_taken must have identical shape: "
                f"{self.branch_pcs.shape} vs {self.branch_taken.shape}"
            )
        if self.base_ipc <= 0:
            raise SimulationError(
                f"base_ipc must be positive, got {self.base_ipc}"
            )
        for label in ("loads_per_instr", "fetches_per_instr",
                      "branches_per_instr"):
            if getattr(self, label) < 0:
                raise SimulationError(f"{label} must be non-negative")

    @property
    def num_branches(self) -> int:
        return int(self.branch_pcs.shape[0])

    @property
    def num_data_refs(self) -> int:
        return int(self.data_addresses.shape[0])

    @property
    def num_fetches(self) -> int:
        return int(self.instruction_addresses.shape[0])
