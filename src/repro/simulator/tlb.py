"""TLB model with fixed miss latency.

Table 1 specifies 8 KB pages with a 30-cycle fixed TLB miss latency.
The TLB itself is modelled as a small fully-associative LRU translation
cache; the latency is applied by the core model.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TLBConfig:
    """Geometry of the TLB.

    Parameters
    ----------
    entries:
        Number of translations held (fully associative, LRU).
    page_bytes:
        Page size; must be a power of two (8 KB per Table 1).
    miss_latency_cycles:
        Fixed penalty applied by the core model per TLB miss.
    """

    entries: int = 64
    page_bytes: int = 8 * 1024
    miss_latency_cycles: int = 30

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ConfigurationError(
                f"TLB entries must be positive, got {self.entries}"
            )
        if self.page_bytes <= 0 or self.page_bytes & (self.page_bytes - 1):
            raise ConfigurationError(
                f"page_bytes must be a power of two, got {self.page_bytes}"
            )
        if self.miss_latency_cycles < 0:
            raise ConfigurationError(
                "miss_latency_cycles must be non-negative, got "
                f"{self.miss_latency_cycles}"
            )

    @property
    def page_shift(self) -> int:
        return self.page_bytes.bit_length() - 1


class TLB:
    """Fully-associative LRU translation lookaside buffer."""

    def __init__(self, config: "TLBConfig | None" = None) -> None:
        self.config = config or TLBConfig()
        self._pages: "OrderedDict[int, None]" = OrderedDict()
        self.accesses = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Translate one byte address; return ``True`` on TLB hit."""
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        page = address >> self.config.page_shift
        self.accesses += 1
        if page in self._pages:
            self._pages.move_to_end(page)
            return True
        self.misses += 1
        self._pages[page] = None
        if len(self._pages) > self.config.entries:
            self._pages.popitem(last=False)
        return False

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    def flush(self) -> None:
        """Drop all translations; statistics are preserved."""
        self._pages.clear()

    def reset_stats(self) -> None:
        self.accesses = 0
        self.misses = 0
