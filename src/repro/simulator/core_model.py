"""Analytic out-of-order core timing model.

Converts per-interval microarchitectural *event rates* into cycles per
instruction (CPI). This replaces SimpleScalar's cycle-accurate
``sim-outorder`` timing loop with a first-order interval model (in the
spirit of Karkhanis & Smith's interval analysis): the core sustains a
dependence-limited steady-state IPC, and each miss event adds a penalty
that is partially hidden by out-of-order execution.

Latencies default to the paper's Table 1 machine:

- L1 hit 1 cycle (folded into the base IPC),
- L2 hit 12 cycles,
- main memory 120 cycles,
- TLB miss 30 cycles,
- 4-wide issue with a 64-entry reorder buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SimulationError


@dataclass(frozen=True)
class CoreTimings:
    """Latency and overlap parameters of the analytic core model.

    The ``*_overlap`` factors are the fraction of each raw penalty that
    out-of-order execution hides (0.0 = fully exposed, 1.0 = free).
    Defaults were chosen so that the model produces CPI in the 0.5-4.0
    range the paper's benchmarks exhibit.
    """

    issue_width: int = 4
    rob_entries: int = 64
    l2_hit_latency: int = 12
    memory_latency: int = 120
    tlb_miss_latency: int = 30
    branch_mispredict_penalty: int = 14
    l2_hit_overlap: float = 0.4
    memory_overlap: float = 0.5
    tlb_overlap: float = 0.0
    branch_overlap: float = 0.0

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ConfigurationError(
                f"issue_width must be positive, got {self.issue_width}"
            )
        if self.rob_entries <= 0:
            raise ConfigurationError(
                f"rob_entries must be positive, got {self.rob_entries}"
            )
        for label in (
            "l2_hit_latency",
            "memory_latency",
            "tlb_miss_latency",
            "branch_mispredict_penalty",
        ):
            if getattr(self, label) < 0:
                raise ConfigurationError(f"{label} must be non-negative")
        for label in (
            "l2_hit_overlap",
            "memory_overlap",
            "tlb_overlap",
            "branch_overlap",
        ):
            value = getattr(self, label)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{label} must be in [0, 1], got {value}"
                )


@dataclass(frozen=True)
class EventRates:
    """Per-instruction event rates observed over an interval.

    All fields are events *per committed instruction* (so an L1 D-cache
    miss rate of 0.01 means 10 misses per 1000 instructions). ``base_ipc``
    is the dependence-limited IPC of the code in the absence of any miss
    events; it is a property of the workload's instruction mix and must
    not exceed the machine's issue width (enforced by the core model).
    """

    base_ipc: float
    branch_rate: float = 0.0
    branch_mispredict_rate: float = 0.0
    il1_miss_rate: float = 0.0
    dl1_miss_rate: float = 0.0
    l2_miss_rate: float = 0.0
    tlb_miss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.base_ipc <= 0:
            raise ConfigurationError(
                f"base_ipc must be positive, got {self.base_ipc}"
            )
        for label in (
            "branch_rate",
            "branch_mispredict_rate",
            "il1_miss_rate",
            "dl1_miss_rate",
            "l2_miss_rate",
            "tlb_miss_rate",
        ):
            value = getattr(self, label)
            if value < 0:
                raise ConfigurationError(
                    f"{label} must be non-negative, got {value}"
                )
        if self.branch_mispredict_rate > self.branch_rate + 1e-12:
            raise ConfigurationError(
                "branch_mispredict_rate cannot exceed branch_rate "
                f"({self.branch_mispredict_rate} > {self.branch_rate})"
            )

    def scaled(self, factor: float) -> "EventRates":
        """Scale all miss rates by ``factor`` (base IPC unchanged)."""
        if factor < 0:
            raise ValueError(f"factor must be non-negative, got {factor}")
        return EventRates(
            base_ipc=self.base_ipc,
            branch_rate=self.branch_rate,
            branch_mispredict_rate=min(
                self.branch_mispredict_rate * factor, self.branch_rate
            ),
            il1_miss_rate=self.il1_miss_rate * factor,
            dl1_miss_rate=self.dl1_miss_rate * factor,
            l2_miss_rate=self.l2_miss_rate * factor,
            tlb_miss_rate=self.tlb_miss_rate * factor,
        )

    @staticmethod
    def blend(a: "EventRates", b: "EventRates", weight_b: float) -> "EventRates":
        """Linearly interpolate two rate records (used for transitions)."""
        if not 0.0 <= weight_b <= 1.0:
            raise ValueError(f"weight_b must be in [0, 1], got {weight_b}")
        wa = 1.0 - weight_b

        def mix(field_name: str) -> float:
            return wa * getattr(a, field_name) + weight_b * getattr(
                b, field_name
            )

        return EventRates(
            base_ipc=mix("base_ipc"),
            branch_rate=mix("branch_rate"),
            branch_mispredict_rate=mix("branch_mispredict_rate"),
            il1_miss_rate=mix("il1_miss_rate"),
            dl1_miss_rate=mix("dl1_miss_rate"),
            l2_miss_rate=mix("l2_miss_rate"),
            tlb_miss_rate=mix("tlb_miss_rate"),
        )


class CoreModel:
    """First-order interval timing model for an out-of-order core.

    CPI is modelled as the dependence-limited base CPI plus one additive
    term per event class::

        CPI = 1 / min(base_ipc, issue_width)
            + il1_miss_rate * l2_hit_latency * (1 - l2_hit_overlap)
            + dl1_miss_rate * l2_hit_latency * (1 - l2_hit_overlap)
            + l2_miss_rate  * memory_latency * (1 - memory_overlap)
            + tlb_miss_rate * tlb_miss_latency * (1 - tlb_overlap)
            + mispredicts   * branch_penalty * (1 - branch_overlap)

    The overlap factors model memory-level parallelism and out-of-order
    latency hiding to first order; with Table 1 latencies and realistic
    miss rates the model lands in the 0.4-5 CPI range SimpleScalar
    reports for SPEC 2000 on this configuration.
    """

    def __init__(self, timings: "CoreTimings | None" = None) -> None:
        self.timings = timings or CoreTimings()

    def cpi(self, rates: EventRates) -> float:
        """Compute CPI for one interval's event rates."""
        t = self.timings
        effective_ipc = min(rates.base_ipc, float(t.issue_width))
        if effective_ipc <= 0:
            raise SimulationError("effective IPC must be positive")
        base = 1.0 / effective_ipc

        il1 = rates.il1_miss_rate * t.l2_hit_latency * (1.0 - t.l2_hit_overlap)
        dl1 = rates.dl1_miss_rate * t.l2_hit_latency * (1.0 - t.l2_hit_overlap)
        l2 = rates.l2_miss_rate * t.memory_latency * (1.0 - t.memory_overlap)
        tlb = rates.tlb_miss_rate * t.tlb_miss_latency * (1.0 - t.tlb_overlap)
        branch = (
            rates.branch_mispredict_rate
            * t.branch_mispredict_penalty
            * (1.0 - t.branch_overlap)
        )
        return base + il1 + dl1 + l2 + tlb + branch

    def ipc(self, rates: EventRates) -> float:
        """Instructions per cycle (reciprocal of :meth:`cpi`)."""
        return 1.0 / self.cpi(rates)

    def cycles(self, rates: EventRates, instructions: int) -> float:
        """Total cycles to execute ``instructions`` at these rates."""
        if instructions < 0:
            raise ValueError(
                f"instructions must be non-negative, got {instructions}"
            )
        return self.cpi(rates) * instructions
