"""The stable public facade of the repro package.

Import from here when embedding phase tracking in another system::

    from repro.api import PhaseTracker, TrackerPool, ClassifierConfig

Everything re-exported below is covered by the compatibility promise:
names, signatures and serialized formats only change with a
deprecation cycle. Modules *not* re-exported here — the classifier
internals (``repro.core.accumulator``, ``repro.core.bitselect``,
``repro.core.signature_table``, ``repro.core.distance``), the service
wire protocol, the persistence journal format, and the harness — are
internal: they may be reorganized between releases without notice (see
``DESIGN.md``, "Public API and internal modules").

The surface, by role:

- :class:`PhaseTracker` — one streaming tracker: branch-by-branch
  ingest, interval-boundary classification, next-phase and length
  prediction.
- :class:`TrackerPool` — N logical trackers in structure-of-arrays
  form; batched ingest and classification for many sessions per numpy
  call, state-identical to scalar trackers.
- :class:`ClassifierConfig` — the classifier's knobs (paper §4), with
  the :meth:`~repro.core.config.ClassifierConfig.paper_default` and
  :meth:`~repro.core.config.ClassifierConfig.paper_baseline` presets.
- :class:`TrackerReport` — the per-interval boundary report both
  tracker flavours emit (``to_dict`` is the wire format).
- :class:`PhaseServiceClient` — the blocking client for the phase
  service's length-prefixed JSON protocol.
- :class:`HttpGateway` — the HTTP operations surface (health probes,
  Prometheus ``/metrics``, JSON session API, SSE events, dashboard)
  that :class:`~repro.service.server.PhaseService` runs when given an
  ``http_port``. The route set and JSON shapes are covered by the
  promise; the internal HTTP plumbing under :mod:`repro.obs.http` is
  not.
"""

from repro.core.config import ClassifierConfig
from repro.core.online import PhaseTracker, TrackerReport
from repro.core.pool import TrackerPool
from repro.obs import HttpGateway
from repro.service.client import PhaseServiceClient

__all__ = [
    "ClassifierConfig",
    "HttpGateway",
    "PhaseServiceClient",
    "PhaseTracker",
    "TrackerPool",
    "TrackerReport",
]
