"""Run-length extraction from phase-ID streams.

A *phase run* is a maximal sequence of contiguous intervals classified
into one phase — the paper's definition of phase length (§4.5, citing
Dhodapkar & Smith). These utilities convert a classified stream into
runs and histograms for the Figure 5 and Figure 9 analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.core.config import TRANSITION_PHASE_ID
from repro.errors import TraceError


@dataclass(frozen=True)
class PhaseRun:
    """One maximal run: phase, start interval index, length."""

    phase_id: int
    start: int
    length: int

    @property
    def is_transition(self) -> bool:
        return self.phase_id == TRANSITION_PHASE_ID

    @property
    def end(self) -> int:
        """Exclusive end index."""
        return self.start + self.length


def extract_runs(phase_ids: Sequence[int]) -> List[PhaseRun]:
    """Run-length encode a classified phase stream."""
    ids = np.asarray(phase_ids, dtype=np.int64)
    if ids.size == 0:
        raise TraceError("cannot extract runs from an empty stream")
    boundaries = np.nonzero(ids[1:] != ids[:-1])[0] + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [ids.size]))
    return [
        PhaseRun(phase_id=int(ids[s]), start=int(s), length=int(e - s))
        for s, e in zip(starts, ends)
    ]


def run_length_histogram(
    runs: Iterable[PhaseRun], class_bounds: Sequence[int]
) -> np.ndarray:
    """Count runs per length class.

    ``class_bounds`` are inclusive lower bounds in ascending order
    (e.g. ``(1, 16, 128, 1024)`` for the paper's four classes).
    """
    bounds = list(class_bounds)
    if not bounds or bounds != sorted(bounds) or bounds[0] < 1:
        raise TraceError(
            f"class_bounds must be ascending and start >= 1, got {bounds}"
        )
    counts = np.zeros(len(bounds), dtype=np.int64)
    for run in runs:
        for index in range(len(bounds) - 1, -1, -1):
            if run.length >= bounds[index]:
                counts[index] += 1
                break
    return counts


def runs_by_phase(runs: Iterable[PhaseRun]) -> Dict[int, List[PhaseRun]]:
    """Group runs by their phase ID."""
    grouped: Dict[int, List[PhaseRun]] = {}
    for run in runs:
        grouped.setdefault(run.phase_id, []).append(run)
    return grouped
