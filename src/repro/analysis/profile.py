"""Per-phase profiles: everything known about each detected phase.

Joins a classification run with its trace into one report per phase:
occupancy, CPI statistics, run-length statistics, first/last sighting,
and recurrence count. This is the summary a phase-aware optimizer
consults when deciding which phases are worth optimizing (long, hot,
recurrent) — and the natural thing to print after classification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.runs import extract_runs, runs_by_phase
from repro.core.config import TRANSITION_PHASE_ID
from repro.core.events import ClassificationRun
from repro.errors import TraceError
from repro.workloads.trace import IntervalTrace


@dataclass(frozen=True)
class PhaseProfile:
    """Aggregate statistics for one phase."""

    phase_id: int
    intervals: int
    occupancy: float
    cpi_mean: float
    cpi_std: float
    cpi_cov: float
    runs: int
    mean_run_length: float
    longest_run: int
    first_interval: int
    last_interval: int
    instructions: int

    @property
    def is_transition(self) -> bool:
        return self.phase_id == TRANSITION_PHASE_ID

    @property
    def recurrent(self) -> bool:
        """The phase appears in more than one run — the property that
        makes phase-keyed optimization tables pay off."""
        return self.runs > 1


def profile_phases(
    run: ClassificationRun, trace: IntervalTrace
) -> Dict[int, PhaseProfile]:
    """Build a :class:`PhaseProfile` for every phase in the run."""
    if len(run) != len(trace):
        raise TraceError(
            f"classification run covers {len(run)} intervals but the "
            f"trace has {len(trace)}"
        )
    ids = run.phase_ids
    cpis = trace.cpis
    instructions = np.array(
        [interval.instructions for interval in trace], dtype=np.int64
    )
    grouped_runs = runs_by_phase(extract_runs(ids))

    profiles: Dict[int, PhaseProfile] = {}
    for phase, indices in run.phase_interval_indices().items():
        phase_cpis = cpis[indices]
        mean = float(phase_cpis.mean())
        std = float(phase_cpis.std())
        phase_runs = grouped_runs.get(phase, [])
        lengths = [r.length for r in phase_runs]
        profiles[phase] = PhaseProfile(
            phase_id=int(phase),
            intervals=int(indices.size),
            occupancy=indices.size / len(trace),
            cpi_mean=mean,
            cpi_std=std,
            cpi_cov=std / mean if mean else 0.0,
            runs=len(phase_runs),
            mean_run_length=float(np.mean(lengths)) if lengths else 0.0,
            longest_run=max(lengths) if lengths else 0,
            first_interval=int(indices.min()),
            last_interval=int(indices.max()),
            instructions=int(instructions[indices].sum()),
        )
    return profiles


def top_phases(
    profiles: Dict[int, PhaseProfile],
    count: int = 5,
    include_transition: bool = False,
) -> List[PhaseProfile]:
    """Phases worth optimizing first: highest occupancy, stable first."""
    candidates = [
        profile
        for profile in profiles.values()
        if include_transition or not profile.is_transition
    ]
    return sorted(
        candidates, key=lambda p: p.occupancy, reverse=True
    )[:count]


def format_profile_table(
    profiles: Dict[int, PhaseProfile], count: int = 10
) -> str:
    """Human-readable per-phase summary table."""
    header = (
        f"{'phase':>6} {'ivals':>6} {'occup':>6} {'CPI':>6} {'CoV%':>5} "
        f"{'runs':>5} {'avg run':>8} {'longest':>8}"
    )
    lines = [header, "-" * len(header)]
    ordered = top_phases(profiles, count=count, include_transition=True)
    for profile in ordered:
        label = "trans" if profile.is_transition else str(profile.phase_id)
        lines.append(
            f"{label:>6} {profile.intervals:>6} "
            f"{profile.occupancy:>6.1%} {profile.cpi_mean:>6.2f} "
            f"{profile.cpi_cov * 100:>5.1f} {profile.runs:>5} "
            f"{profile.mean_run_length:>8.1f} {profile.longest_run:>8}"
        )
    return "\n".join(lines)
