"""Plain-text table rendering for experiment output.

The harness regenerates the paper's figures as text tables (one row per
benchmark, one column per configuration/series). This module renders
them with aligned columns, optional percent formatting, and an average
row, matching how the paper reports per-benchmark bars plus "avg".
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

Number = Union[int, float]


def format_value(value: Number, percent: bool = False, digits: int = 1) -> str:
    """Format one cell: percentages as 'xx.x', counts as integers."""
    if isinstance(value, bool):  # bool is an int subclass; refuse it
        raise TypeError("boolean is not a table value")
    if percent:
        return f"{value * 100:.{digits}f}"
    if isinstance(value, int):
        return str(value)
    return f"{value:.{digits}f}"


def render_table(
    title: str,
    row_labels: Sequence[str],
    columns: "Dict[str, Sequence[Number]]",
    percent: bool = False,
    digits: int = 1,
    average_row: bool = True,
) -> str:
    """Render a labelled table as aligned plain text.

    ``columns`` maps column name -> per-row values (parallel with
    ``row_labels``). When ``average_row`` is set, an ``avg`` row with
    arithmetic means is appended (the paper's figures all carry one).
    """
    for name, values in columns.items():
        if len(values) != len(row_labels):
            raise ValueError(
                f"column {name!r} has {len(values)} values for "
                f"{len(row_labels)} rows"
            )

    names = list(columns)
    rows: List[List[str]] = []
    for index, label in enumerate(row_labels):
        rows.append(
            [label]
            + [
                format_value(columns[name][index], percent, digits)
                for name in names
            ]
        )
    if average_row and row_labels:
        averages = [
            sum(columns[name]) / len(row_labels) for name in names
        ]
        rows.append(
            ["avg"]
            + [format_value(a, percent, digits) for a in averages]
        )

    header = [""] + names
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    lines = [title]
    lines.append(
        "  ".join(h.rjust(w) for h, w in zip(header, widths)).rstrip()
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)
