"""Side-by-side comparison of two classifications of one trace.

Different classifiers (configurations, the working-set baseline, the
offline SimPoint labeling) can be compared on common ground: phase
counts, weighted CoV, transition occupancy, mutual agreement, and a
per-benchmark verdict. The ``simpoint`` and ``baselines`` experiments
compute these ad hoc; this module is the reusable form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.agreement import adjusted_rand_index
from repro.analysis.cov import weighted_cov
from repro.core.config import TRANSITION_PHASE_ID
from repro.core.events import ClassificationRun
from repro.errors import TraceError
from repro.workloads.trace import IntervalTrace


@dataclass(frozen=True)
class ClassificationComparison:
    """Summary of two classification runs over the same trace."""

    name_a: str
    name_b: str
    cov_a: float
    cov_b: float
    phases_a: int
    phases_b: int
    transition_a: float
    transition_b: float
    agreement_ari: float

    @property
    def cov_winner(self) -> Optional[str]:
        """The more homogeneous classification, or None on a tie.

        Ties are declared within half a CoV percentage point — below
        the run-to-run noise of the synthetic workloads.
        """
        if abs(self.cov_a - self.cov_b) < 0.005:
            return None
        return self.name_a if self.cov_a < self.cov_b else self.name_b

    @property
    def more_frugal(self) -> Optional[str]:
        """Which classification uses fewer phase IDs (None on a tie)."""
        if self.phases_a == self.phases_b:
            return None
        return (
            self.name_a if self.phases_a < self.phases_b else self.name_b
        )

    def summary(self) -> str:
        """One-paragraph human-readable comparison."""
        lines = [
            f"{self.name_a} vs {self.name_b}:",
            f"  CoV: {self.cov_a:.1%} vs {self.cov_b:.1%}"
            + (f" ({self.cov_winner} more homogeneous)"
               if self.cov_winner else " (tie)"),
            f"  phases: {self.phases_a} vs {self.phases_b}"
            + (f" ({self.more_frugal} more frugal)"
               if self.more_frugal else " (tie)"),
            f"  transition occupancy: {self.transition_a:.1%} vs "
            f"{self.transition_b:.1%}",
            f"  label agreement (ARI): {self.agreement_ari:.2f}",
        ]
        return "\n".join(lines)


def compare_runs(
    run_a: ClassificationRun,
    run_b: ClassificationRun,
    trace: IntervalTrace,
    name_a: str = "A",
    name_b: str = "B",
) -> ClassificationComparison:
    """Compare two classification runs of the same trace."""
    if len(run_a) != len(trace) or len(run_b) != len(trace):
        raise TraceError(
            "both runs must cover the trace: "
            f"{len(run_a)}/{len(run_b)} vs {len(trace)} intervals"
        )
    return ClassificationComparison(
        name_a=name_a,
        name_b=name_b,
        cov_a=weighted_cov(run_a, trace),
        cov_b=weighted_cov(run_b, trace),
        phases_a=run_a.num_phases,
        phases_b=run_b.num_phases,
        transition_a=run_a.transition_fraction,
        transition_b=run_b.transition_fraction,
        agreement_ari=adjusted_rand_index(
            run_a.phase_ids, run_b.phase_ids
        ),
    )


def compare_labelings(
    labels_a: Sequence[int],
    labels_b: Sequence[int],
) -> float:
    """Shorthand: adjusted Rand index between two raw label streams."""
    return adjusted_rand_index(
        np.asarray(labels_a), np.asarray(labels_b)
    )
