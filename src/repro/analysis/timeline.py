"""ASCII phase timelines.

A compact visual rendering of a classified phase-ID stream: one
character per interval (dots for the transition phase, letters/digits
for phases, cycling through a glyph alphabet), wrapped with interval
offsets, plus a legend with per-phase occupancy. Useful in terminals,
logs and doctests; the quickstart example prints one.

Example output::

    0000 AAAAAAAAAA..BBBBBBBB..AAAAAAAAAA
    0033 CCCC..BBBBBBBB
    legend: A=phase 1 (20, 45%)  B=phase 2 (16, 36%)  ...
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.config import TRANSITION_PHASE_ID
from repro.errors import TraceError

#: Glyphs assigned to phases in order of first appearance.
_GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
#: Transition-phase glyph.
_TRANSITION_GLYPH = "."
#: Glyph used once the alphabet is exhausted.
_OVERFLOW_GLYPH = "?"


def phase_glyphs(phase_ids: Sequence[int]) -> Dict[int, str]:
    """Assign a glyph to each phase, in order of first appearance.

    The transition phase always maps to ``"."``; phases beyond the
    glyph alphabet share ``"?"``.
    """
    ids = np.asarray(phase_ids, dtype=np.int64)
    if ids.ndim != 1 or ids.size == 0:
        raise TraceError("phase_ids must be a non-empty 1-D sequence")
    mapping: Dict[int, str] = {TRANSITION_PHASE_ID: _TRANSITION_GLYPH}
    next_glyph = 0
    for phase in ids.tolist():
        if phase in mapping:
            continue
        if next_glyph < len(_GLYPHS):
            mapping[phase] = _GLYPHS[next_glyph]
            next_glyph += 1
        else:
            mapping[phase] = _OVERFLOW_GLYPH
    return mapping


def render_timeline(
    phase_ids: Sequence[int],
    width: int = 64,
    legend: bool = True,
    max_legend_entries: int = 12,
) -> str:
    """Render a classified stream as a wrapped ASCII timeline."""
    if width < 8:
        raise TraceError(f"width must be >= 8, got {width}")
    ids = np.asarray(phase_ids, dtype=np.int64)
    mapping = phase_glyphs(ids)
    glyph_stream = "".join(mapping[int(phase)] for phase in ids)

    offset_digits = max(len(str(ids.size)), 4)
    lines: List[str] = []
    for start in range(0, len(glyph_stream), width):
        chunk = glyph_stream[start:start + width]
        lines.append(f"{start:0{offset_digits}d} {chunk}")

    if legend:
        counts: Dict[int, int] = {}
        for phase in ids.tolist():
            counts[phase] = counts.get(phase, 0) + 1
        entries = []
        shown = 0
        for phase, count in sorted(
            counts.items(), key=lambda kv: kv[1], reverse=True
        ):
            if shown >= max_legend_entries:
                entries.append("...")
                break
            label = (
                "transition" if phase == TRANSITION_PHASE_ID
                else f"phase {phase}"
            )
            entries.append(
                f"{mapping[phase]}={label} "
                f"({count}, {count / ids.size:.0%})"
            )
            shown += 1
        lines.append("legend: " + "  ".join(entries))
    return "\n".join(lines)


def run_summary_line(phase_ids: Sequence[int], max_runs: int = 20) -> str:
    """One-line run-length view: ``A x12 -> . x2 -> B x30 -> ...``."""
    from repro.analysis.runs import extract_runs

    ids = np.asarray(phase_ids, dtype=np.int64)
    mapping = phase_glyphs(ids)
    runs = extract_runs(ids)
    parts = [
        f"{mapping[run.phase_id]}x{run.length}" for run in runs[:max_runs]
    ]
    if len(runs) > max_runs:
        parts.append(f"...(+{len(runs) - max_runs} runs)")
    return " -> ".join(parts)
