"""Agreement between two interval labelings.

Used to validate classifications against the synthetic workloads'
ground-truth region labels (which the classifier never sees) and to
compare the online classifier against the offline SimPoint labeling:

- :func:`purity` — fraction of intervals whose label matches their
  cluster's majority reference label (1.0 = every cluster is pure).
- :func:`adjusted_rand_index` — chance-corrected pairwise agreement
  (1.0 = identical partitions, ~0.0 = random relabeling).
- :func:`contingency_table` — the underlying cross-tabulation.

Both metrics are label-permutation invariant, which matters because
phase IDs are arbitrary names.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import TraceError


def _validate(a: Sequence[int], b: Sequence[int]) -> "Tuple[np.ndarray, np.ndarray]":
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.ndim != 1 or a.shape != b.shape:
        raise TraceError(
            f"labelings must be parallel 1-D sequences: {a.shape} vs "
            f"{b.shape}"
        )
    if a.size == 0:
        raise TraceError("labelings must be non-empty")
    return a, b


def contingency_table(
    labels: Sequence[int], reference: Sequence[int]
) -> np.ndarray:
    """Cross-tabulation: rows = labels, columns = reference labels."""
    labels, reference = _validate(labels, reference)
    _, label_index = np.unique(labels, return_inverse=True)
    _, reference_index = np.unique(reference, return_inverse=True)
    table = np.zeros(
        (label_index.max() + 1, reference_index.max() + 1), dtype=np.int64
    )
    np.add.at(table, (label_index, reference_index), 1)
    return table


def purity(labels: Sequence[int], reference: Sequence[int]) -> float:
    """Weighted majority agreement of ``labels`` against ``reference``.

    For each cluster in ``labels``, count its most common reference
    label; purity is the total over all clusters divided by n.
    """
    table = contingency_table(labels, reference)
    return float(table.max(axis=1).sum() / table.sum())


def adjusted_rand_index(
    labels: Sequence[int], reference: Sequence[int]
) -> float:
    """Hubert & Arabie's adjusted Rand index between two partitions."""
    table = contingency_table(labels, reference)
    n = table.sum()

    def comb2(x: np.ndarray) -> np.ndarray:
        return x * (x - 1) / 2.0

    sum_cells = comb2(table).sum()
    sum_rows = comb2(table.sum(axis=1)).sum()
    sum_cols = comb2(table.sum(axis=0)).sum()
    total = comb2(np.array(n))
    expected = sum_rows * sum_cols / total if total else 0.0
    maximum = (sum_rows + sum_cols) / 2.0
    if maximum == expected:
        # Degenerate partitions (all-one-cluster vs all-one-cluster).
        return 1.0 if sum_cells == maximum else 0.0
    return float((sum_cells - expected) / (maximum - expected))


def region_agreement(
    phase_ids: Sequence[int],
    regions: Sequence[int],
    ignore_transitions: bool = True,
) -> Dict[str, float]:
    """Agreement of a classification with ground-truth region labels.

    ``regions`` uses -1 for ground-truth transition intervals; with
    ``ignore_transitions`` both ground-truth transitions and intervals
    classified into the transition phase (ID 0) are excluded, since
    neither side claims a stable identity for them.
    """
    phase_ids, regions = _validate(phase_ids, regions)
    if ignore_transitions:
        keep = (regions >= 0) & (phase_ids != 0)
        if not keep.any():
            raise TraceError("no stable intervals left to compare")
        phase_ids = phase_ids[keep]
        regions = regions[keep]
    return {
        "purity": purity(phase_ids, regions),
        "ari": adjusted_rand_index(phase_ids, regions),
        "intervals": float(phase_ids.size),
    }
