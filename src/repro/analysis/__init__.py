"""Analysis: the paper's evaluation metrics.

- :mod:`repro.analysis.cov` — per-phase CPI coefficient of variation and
  the execution-weighted overall CoV (paper §3.1).
- :mod:`repro.analysis.runs` — run-length extraction from phase-ID
  streams (paper §4.5's definition of phase length).
- :mod:`repro.analysis.phase_stats` — stable/transition phase length
  statistics (Figure 5).
- :mod:`repro.analysis.prediction_stats` — accuracy/coverage summaries.
- :mod:`repro.analysis.tables` — plain-text table rendering for the
  experiment harness.
- :mod:`repro.analysis.agreement` — purity / adjusted Rand agreement
  between labelings (classification vs ground truth, online vs
  SimPoint).
- :mod:`repro.analysis.hardware` — SRAM storage budget of the
  architecture (the paper's implementability claim, quantified).
"""

from repro.analysis.agreement import (
    adjusted_rand_index,
    purity,
    region_agreement,
)
from repro.analysis.compare import ClassificationComparison, compare_runs
from repro.analysis.cov import per_phase_cov, weighted_cov
from repro.analysis.hardware import (
    classifier_budget,
    full_architecture_budget,
    predictor_budget,
)
from repro.analysis.phase_stats import PhaseLengthSummary, phase_length_summary
from repro.analysis.profile import (
    PhaseProfile,
    format_profile_table,
    profile_phases,
    top_phases,
)
from repro.analysis.runs import PhaseRun, extract_runs, run_length_histogram
from repro.analysis.timeline import render_timeline, run_summary_line

__all__ = [
    "ClassificationComparison",
    "PhaseLengthSummary",
    "PhaseProfile",
    "PhaseRun",
    "format_profile_table",
    "profile_phases",
    "top_phases",
    "adjusted_rand_index",
    "classifier_budget",
    "full_architecture_budget",
    "predictor_budget",
    "compare_runs",
    "purity",
    "region_agreement",
    "render_timeline",
    "run_summary_line",
    "extract_runs",
    "per_phase_cov",
    "phase_length_summary",
    "run_length_histogram",
    "weighted_cov",
]
