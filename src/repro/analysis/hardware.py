"""Hardware storage cost of the phase-tracking architecture.

The paper's structures are meant to be "simple, easily implementable"
(§4.1) with "only a small fixed amount of storage" — this module makes
that budget explicit. Costs are in bits of SRAM state, following the
structure widths the paper gives:

- accumulator table: N counters x 24 bits;
- signature table: per entry, the compressed signature
  (N x bits_per_counter), a phase ID, the Min Counter, LRU state, and —
  for the adaptive classifier — a threshold register plus CPI average
  and count registers;
- phase-change table: per entry, a tag, the stored outcome(s), the
  1-bit confidence, and LRU state;
- last-value confidence: one 3-bit counter per signature-table entry.

Numbers land in the hundreds of bytes, matching the paper's claim that
the mechanism is cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ACCUMULATOR_BITS, ClassifierConfig
from repro.errors import ConfigurationError

#: Field widths (bits) used across the architecture.
PHASE_ID_BITS = 8          # up to 255 live phases
MIN_COUNTER_BITS = 4       # thresholds up to 15
LRU_BITS_PER_ENTRY = 6     # coarse global LRU position
THRESHOLD_BITS = 6         # per-entry similarity threshold mantissa
CPI_AVERAGE_BITS = 16      # fixed-point running CPI
CPI_COUNT_BITS = 8
TAG_BITS = 16              # phase-change table tag
RUN_LENGTH_BITS = 10       # run lengths up to 1023 in RLE keys
CONFIDENCE_BITS_TABLE = 1
CONFIDENCE_BITS_LV = 3
LENGTH_CLASS_BITS = 2
HYSTERESIS_BITS = 2


@dataclass(frozen=True)
class HardwareBudget:
    """Bit counts per structure, plus the total."""

    accumulator_bits: int
    signature_table_bits: int
    change_table_bits: int
    confidence_bits: int

    @property
    def total_bits(self) -> int:
        return (
            self.accumulator_bits
            + self.signature_table_bits
            + self.change_table_bits
            + self.confidence_bits
        )

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8.0


def classifier_budget(config: ClassifierConfig) -> HardwareBudget:
    """Storage bits of the classification architecture under ``config``.

    Infinite-table configurations are rejected — they exist only to
    model the prior work's idealization and have no hardware cost.
    """
    if config.table_entries is None:
        raise ConfigurationError(
            "an infinite signature table has no hardware realization"
        )
    accumulator = config.num_counters * ACCUMULATOR_BITS

    per_entry = (
        config.num_counters * config.bits_per_counter
        + PHASE_ID_BITS
        + MIN_COUNTER_BITS
        + LRU_BITS_PER_ENTRY
    )
    if config.adaptive:
        per_entry += THRESHOLD_BITS + CPI_AVERAGE_BITS + CPI_COUNT_BITS
    signature_table = config.table_entries * per_entry

    confidence = config.table_entries * CONFIDENCE_BITS_LV

    return HardwareBudget(
        accumulator_bits=accumulator,
        signature_table_bits=signature_table,
        change_table_bits=0,
        confidence_bits=confidence,
    )


def predictor_budget(
    entries: int = 32,
    rle_depth: int = 2,
    outcomes_per_entry: int = 1,
    length_predictor: bool = False,
) -> HardwareBudget:
    """Storage bits of a phase-change (or length) prediction table.

    ``outcomes_per_entry`` is 1 for plain predictors, 4 for the Last-4
    and Top-4 variants (Top-N additionally needs small frequency
    counters, charged at 4 bits per outcome).
    """
    if entries <= 0:
        raise ConfigurationError(f"entries must be positive, got {entries}")
    if rle_depth < 0:
        raise ConfigurationError(
            f"rle_depth must be non-negative, got {rle_depth}"
        )
    if outcomes_per_entry < 1:
        raise ConfigurationError(
            "outcomes_per_entry must be >= 1, got "
            f"{outcomes_per_entry}"
        )
    per_entry = (
        TAG_BITS
        + rle_depth * RUN_LENGTH_BITS
        + outcomes_per_entry * PHASE_ID_BITS
        + CONFIDENCE_BITS_TABLE
        + LRU_BITS_PER_ENTRY
    )
    if outcomes_per_entry > 1:
        per_entry += outcomes_per_entry * 4  # Top-N frequency counters
    if length_predictor:
        per_entry += LENGTH_CLASS_BITS + HYSTERESIS_BITS

    return HardwareBudget(
        accumulator_bits=0,
        signature_table_bits=0,
        change_table_bits=entries * per_entry,
        confidence_bits=0,
    )


def full_architecture_budget(
    config: ClassifierConfig,
    change_entries: int = 32,
    with_length_predictor: bool = True,
) -> HardwareBudget:
    """The complete architecture: classifier + change + length tables."""
    classifier = classifier_budget(config)
    change = predictor_budget(entries=change_entries, rle_depth=2)
    length = (
        predictor_budget(
            entries=change_entries, rle_depth=2, length_predictor=True
        )
        if with_length_predictor
        else HardwareBudget(0, 0, 0, 0)
    )
    return HardwareBudget(
        accumulator_bits=classifier.accumulator_bits,
        signature_table_bits=classifier.signature_table_bits,
        change_table_bits=change.change_table_bits
        + length.change_table_bits,
        confidence_bits=classifier.confidence_bits,
    )
