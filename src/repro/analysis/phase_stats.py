"""Stable vs transition phase length statistics (paper §4.5, Figure 5).

For a classified stream, computes the average length (in intervals) and
standard deviation of stable-phase runs and transition-phase runs. For
good classifications, stable runs are long (with high variability) and
transition runs are short — "this is ideal, since it indicates that the
classifier is finding long stable phases".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.runs import extract_runs
from repro.errors import TraceError


@dataclass(frozen=True)
class PhaseLengthSummary:
    """Average/std-dev of stable and transition run lengths."""

    stable_mean: float
    stable_std: float
    stable_count: int
    transition_mean: float
    transition_std: float
    transition_count: int

    @property
    def stable_dominates(self) -> bool:
        """Whether stable runs are on average longer than transitions."""
        return self.stable_mean > self.transition_mean


def phase_length_summary(phase_ids: Sequence[int]) -> PhaseLengthSummary:
    """Compute Figure 5's statistics from a classified phase stream."""
    runs = extract_runs(phase_ids)
    stable = np.array(
        [r.length for r in runs if not r.is_transition], dtype=np.float64
    )
    transition = np.array(
        [r.length for r in runs if r.is_transition], dtype=np.float64
    )

    def describe(lengths: np.ndarray) -> "tuple[float, float, int]":
        if lengths.size == 0:
            return 0.0, 0.0, 0
        return float(lengths.mean()), float(lengths.std()), int(lengths.size)

    stable_mean, stable_std, stable_count = describe(stable)
    trans_mean, trans_std, trans_count = describe(transition)
    return PhaseLengthSummary(
        stable_mean=stable_mean,
        stable_std=stable_std,
        stable_count=stable_count,
        transition_mean=trans_mean,
        transition_std=trans_std,
        transition_count=trans_count,
    )
