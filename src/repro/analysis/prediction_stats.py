"""Summary helpers for prediction statistics.

Bridges the predictor-level statistics objects
(:class:`~repro.prediction.composite.NextPhaseStats`,
:class:`~repro.prediction.change_eval.ChangePredictionStats`) to the
aggregated per-benchmark summaries the harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.errors import PredictionError
from repro.prediction.change_eval import (
    CHANGE_CATEGORIES,
    ChangePredictionStats,
)
from repro.prediction.composite import CATEGORIES, NextPhaseStats


def aggregate_next_phase(
    stats_list: Sequence[NextPhaseStats],
) -> NextPhaseStats:
    """Sum next-phase stats across benchmarks (for the avg bar)."""
    if not stats_list:
        raise PredictionError("no statistics to aggregate")
    total = NextPhaseStats()
    for stats in stats_list:
        for category in CATEGORIES:
            total.counts[category] += stats.counts[category]
    return total


def aggregate_change(
    stats_list: Sequence[ChangePredictionStats],
) -> ChangePredictionStats:
    """Sum phase-change stats across benchmarks."""
    if not stats_list:
        raise PredictionError("no statistics to aggregate")
    total = ChangePredictionStats()
    for stats in stats_list:
        for category in CHANGE_CATEGORIES:
            total.counts[category] += stats.counts[category]
    return total


@dataclass(frozen=True)
class AccuracyCoverage:
    """An (accuracy, coverage) operating point for confidence studies."""

    accuracy: float
    coverage: float

    def dominates(self, other: "AccuracyCoverage") -> bool:
        """Pareto dominance: at least as good on both axes, better on one."""
        at_least = (
            self.accuracy >= other.accuracy
            and self.coverage >= other.coverage
        )
        strictly = (
            self.accuracy > other.accuracy or self.coverage > other.coverage
        )
        return at_least and strictly


def operating_point(stats: NextPhaseStats) -> AccuracyCoverage:
    """The confidence-gated operating point of a next-phase predictor."""
    return AccuracyCoverage(
        accuracy=stats.confident_accuracy, coverage=stats.coverage
    )
