"""Coefficient of Variation of CPI (paper §3.1).

The paper's homogeneity metric: for each phase, the standard deviation
of the CPI of its intervals divided by their mean. The overall metric
weights each phase's CoV by the share of execution the phase accounts
for and sums the weighted CoVs. The transition phase is excluded ("The
transition phase is not included in the CPI CoV calculations", §4.4);
weights are therefore shares of *stable* execution.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.config import TRANSITION_PHASE_ID
from repro.core.events import ClassificationRun
from repro.errors import TraceError
from repro.workloads.trace import IntervalTrace


def _check_alignment(run: ClassificationRun, trace: IntervalTrace) -> None:
    if len(run) != len(trace):
        raise TraceError(
            f"classification run covers {len(run)} intervals but the trace "
            f"has {len(trace)}"
        )


def cov_of(values: np.ndarray) -> float:
    """Standard deviation divided by mean (population std).

    A single-interval phase has zero deviation by definition.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise TraceError("cannot compute CoV of an empty value set")
    mean = float(values.mean())
    if mean == 0.0:
        raise TraceError("mean is zero; CoV undefined")
    if values.size == 1:
        return 0.0
    return float(values.std()) / mean


def per_phase_cov(
    run: ClassificationRun,
    trace: IntervalTrace,
    include_transition: bool = False,
) -> Dict[int, float]:
    """CoV of CPI for each phase (keyed by phase ID).

    The transition phase (ID 0) is excluded unless requested.
    """
    _check_alignment(run, trace)
    cpis = trace.cpis
    result: Dict[int, float] = {}
    for phase, indices in run.phase_interval_indices().items():
        if phase == TRANSITION_PHASE_ID and not include_transition:
            continue
        result[phase] = cov_of(cpis[indices])
    return result


def weighted_cov(run: ClassificationRun, trace: IntervalTrace) -> float:
    """The paper's overall CoV: per-phase CoV weighted by execution share.

    Each stable phase's CoV is weighted by the fraction of stable
    intervals it holds. Returns 0.0 when the run has no stable phase
    (every interval in transition) — a degenerate but legal outcome for
    tiny traces.
    """
    _check_alignment(run, trace)
    cpis = trace.cpis
    groups = run.phase_interval_indices()
    stable_total = sum(
        indices.size
        for phase, indices in groups.items()
        if phase != TRANSITION_PHASE_ID
    )
    if stable_total == 0:
        return 0.0
    total = 0.0
    for phase, indices in groups.items():
        if phase == TRANSITION_PHASE_ID:
            continue
        weight = indices.size / stable_total
        total += weight * cov_of(cpis[indices])
    return total
