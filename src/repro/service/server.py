"""The asyncio phase-classification server.

One :class:`PhaseService` hosts a :class:`~repro.service.session.SessionRegistry`
behind the NDJSON protocol (:mod:`repro.service.protocol`). Each TCP
connection gets two tasks:

- a **reader** that parses request lines into a *bounded*
  ``asyncio.Queue``. When the worker falls behind, ``queue.put`` blocks
  the reader, the socket stops being drained, and the kernel's TCP
  receive window closes — backpressure reaches the client without any
  explicit flow-control messages.
- a **worker** that pops requests, executes them against the registry,
  and writes interval pushes followed by the matching response. All
  writes happen on the worker, so message order per connection is the
  protocol order: pushes for an observe precede that observe's ack.

Admission control: the session cap refuses/evicts at ``open`` (see the
registry), a connection cap closes surplus sockets at accept, and during
shutdown new requests are refused with ``shutting_down``.

Graceful drain: :meth:`PhaseService.shutdown` (``drain=True``) stops
accepting connections and new request lines, but every request already
queued is still executed and its responses/pushes flushed before sockets
close — no interval is lost or double-classified across a drain, which
the test suite proves by snapshotting at shutdown and replaying.

Durability (``data_dir=...``): the service builds a
:class:`~repro.persistence.manager.PersistenceManager`, recovers the
registry from the last checkpoints plus journal replay before binding,
and from then on journals every successful open/observe/close *before*
acknowledging it, checkpoints dirty sessions on a timer (and at
shutdown), and lets the registry evict idle sessions to disk instead of
destroying them — they hydrate back on their next touch.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.errors import (
    ClusterError,
    ConfigurationError,
    ProtocolError,
    ReproError,
    ServiceUnavailableError,
)
from repro.service import protocol
from repro.service.session import Session, SessionRegistry
from repro.service.snapshot import snapshot_tracker

if TYPE_CHECKING:  # pragma: no cover - import-time typing only
    from repro.telemetry import Telemetry


class _Connection:
    """Per-connection state: the socket pair, the bounded ingest queue,
    and the reader/worker task pair."""

    __slots__ = ("reader", "writer", "queue", "tasks", "peer")

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        queue_size: int,
    ) -> None:
        self.reader = reader
        self.writer = writer
        # Items are ("request", Request), ("bad", id-or-None, error), or
        # None (end of input). Bounded: this queue is the backpressure.
        self.queue: "asyncio.Queue" = asyncio.Queue(maxsize=queue_size)
        self.tasks: List["asyncio.Task"] = []
        peer = writer.get_extra_info("peername")
        self.peer = f"{peer[0]}:{peer[1]}" if peer else "?"


class PhaseService:
    """A streaming phase-classification service.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port, exposed as
        :attr:`port` after :meth:`start`.
    max_sessions, idle_ttl, evict_lru:
        Session registry policy (see :class:`SessionRegistry`).
    max_connections:
        Concurrent-connection cap; surplus accepts are closed
        immediately.
    queue_size:
        Per-connection ingest queue bound — the backpressure depth, in
        requests.
    sweep_interval:
        Seconds between idle-session sweeps (only meaningful with an
        ``idle_ttl``).
    drain_timeout:
        Upper bound, per connection, on waiting for queued work to
        finish during a graceful shutdown — a stalled client cannot
        wedge the drain.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` hub; the service
        records request/error counters, ingest- and request-latency
        histograms, connection/session gauges, and lifecycle events.
    data_dir:
        Enable the durable session tier rooted here (journal +
        checkpoints). Construction recovers whatever the directory
        holds — including after ``kill -9``.
    checkpoint_interval:
        Seconds between periodic checkpoint-dirty-sessions sweeps
        (each followed by journal compaction).
    sync:
        Journal durability mode (``none`` / ``batch`` / ``always``);
        see :mod:`repro.persistence.journal`. Only meaningful with a
        ``data_dir``.
    pool_slots:
        When set, back default-configured sessions with a shared
        :class:`~repro.core.pool.TrackerPool` of this initial capacity
        (the structure-of-arrays fast path; the pool grows on demand).
        Sessions opened with non-default configuration overrides fall
        back to scalar trackers transparently.
    coalesce, coalesce_window:
        Enable cross-session ingest coalescing: queued observe requests
        across all connections (and the HTTP gateway) are drained per
        scheduling round and the pool-backed sessions' records run
        through one fused :meth:`TrackerPool.observe_fanin` pass, with
        reports and acks fanned back per connection in exact protocol
        order (see :mod:`repro.service.coalesce` and DESIGN.md §11).
        ``coalesce_window`` adds a fixed gather delay per round; the
        default 0 coalesces only already-runnable work. Most effective
        together with ``pool_slots``; non-pool sessions inside a round
        fall back to the per-session path.
    uds_path:
        When given, listen on this Unix domain socket instead of the
        TCP ``host``/``port`` pair. This is the cluster worker mode:
        the dispatcher proxies client frames over per-worker Unix
        sockets, which skip the TCP stack and are unreachable from off
        the box. A stale socket file from a previous incarnation is
        unlinked before binding.
    http_host, http_port:
        When ``http_port`` is given (0 picks a free port), run the
        :class:`~repro.obs.HttpGateway` alongside the NDJSON listener:
        health/readiness probes, a Prometheus ``/metrics`` scrape
        target, a JSON session API, live SSE events, and the built-in
        dashboard at ``/``. ``http_host`` defaults to ``host``. A
        service with a gateway but no ``telemetry`` gets an in-memory
        hub automatically so the scrape surface is never empty.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_sessions: int = 64,
        idle_ttl: Optional[float] = None,
        evict_lru: bool = True,
        max_connections: int = 64,
        queue_size: int = 32,
        sweep_interval: float = 5.0,
        drain_timeout: float = 30.0,
        telemetry: "Optional[Telemetry]" = None,
        data_dir: Optional[str] = None,
        checkpoint_interval: float = 30.0,
        sync: str = "batch",
        pool_slots: Optional[int] = None,
        coalesce: bool = False,
        coalesce_window: float = 0.0,
        uds_path: Optional[str] = None,
        http_host: Optional[str] = None,
        http_port: Optional[int] = None,
    ) -> None:
        if coalesce_window < 0:
            raise ConfigurationError(
                f"coalesce_window must be >= 0, got {coalesce_window}"
            )
        if max_connections <= 0:
            raise ConfigurationError(
                f"max_connections must be positive, got {max_connections}"
            )
        if queue_size <= 0:
            raise ConfigurationError(
                f"queue_size must be positive, got {queue_size}"
            )
        if checkpoint_interval <= 0:
            raise ConfigurationError(
                f"checkpoint_interval must be positive, "
                f"got {checkpoint_interval}"
            )
        if http_port is not None and http_port < 0:
            raise ConfigurationError(
                f"http_port must be >= 0, got {http_port}"
            )
        if http_port is not None and telemetry is None:
            # The gateway exists to expose telemetry; an operator who
            # asks for the HTTP surface gets an in-memory hub for free.
            from repro.telemetry import Telemetry as _Telemetry

            telemetry = _Telemetry()
        self.host = host
        self.port = port
        self.uds_path = uds_path
        self.http_host = http_host if http_host is not None else host
        self.http_port = http_port
        self._gateway = None
        self.max_connections = max_connections
        self.queue_size = queue_size
        self.sweep_interval = sweep_interval
        self.drain_timeout = drain_timeout
        self.coalesce = coalesce
        self.coalesce_window = coalesce_window
        self._coalescer = None
        pool = None
        if pool_slots is not None:
            if pool_slots <= 0:
                raise ConfigurationError(
                    f"pool_slots must be positive, got {pool_slots}"
                )
            # Imported lazily: the service protocol surface should not
            # pay the numpy pool import unless the fast path is on.
            from repro.core.pool import TrackerPool
            from repro.service.session import build_config

            pool = TrackerPool(
                capacity=pool_slots, config=build_config(None),
                telemetry=telemetry,
            )
        self.registry = SessionRegistry(
            max_sessions=max_sessions,
            idle_ttl=idle_ttl,
            evict_lru=evict_lru,
            telemetry=telemetry,
            pool=pool,
        )
        self.checkpoint_interval = checkpoint_interval
        self._persistence = None
        self.sessions_recovered = 0
        if data_dir is not None:
            # Imported lazily: the persistence package depends on the
            # service package, not the other way around.
            from repro.persistence import PersistenceManager

            self._persistence = PersistenceManager(
                data_dir, sync=sync, telemetry=telemetry
            )
            self.sessions_recovered = self._persistence.install_into(
                self.registry
            )
        self.requests_served = 0
        self.errors_returned = 0
        self.connections_refused = 0
        self.checkpoint_failures = 0
        self.predictions_scored = 0
        self.predictions_correct = 0
        self.confident_scored = 0
        self.confident_correct = 0
        self.started_at = time.time()
        self._started_mono = time.monotonic()
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Dict[int, _Connection] = {}
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        self._sweeper: Optional["asyncio.Task"] = None
        self._checkpointer: Optional["asyncio.Task"] = None
        self._drain_task: Optional["asyncio.Task"] = None
        self._telemetry = telemetry
        if telemetry is not None:
            from repro import __version__ as _version
            import os as _os

            telemetry.gauge(
                "repro_service_info",
                "Constant 1; process identity in the labels.",
                labels={
                    "version": _version,
                    "pid": _os.getpid(),
                    "started": int(self.started_at),
                },
            ).set(1)
            self._g_uptime = telemetry.gauge(
                "repro_service_uptime_seconds",
                "Seconds since service construction (updated on scrape).",
            )
            self._m_pred_scored = telemetry.counter(
                "repro_service_predictions_total",
                "Next-phase predictions scored against the next interval",
            )
            self._m_pred_correct = telemetry.counter(
                "repro_service_predictions_correct_total",
                "Scored next-phase predictions that matched",
            )
            self._m_pred_confident = telemetry.counter(
                "repro_service_predictions_confident_total",
                "Scored predictions the predictor marked confident",
            )
            self._m_pred_confident_correct = telemetry.counter(
                "repro_service_predictions_confident_correct_total",
                "Confident scored predictions that matched",
            )
            self._m_requests = telemetry.counter(
                "repro_service_requests_total",
                "Requests executed by the service (including refusals)",
            )
            self._m_errors = telemetry.counter(
                "repro_service_errors_total",
                "Requests answered with an error response",
            )
            self._m_branches = telemetry.counter(
                "repro_service_branches_total",
                "Branch records ingested via observe",
            )
            self._m_intervals = telemetry.counter(
                "repro_service_intervals_total",
                "Interval reports pushed to clients",
            )
            self._h_request = telemetry.histogram(
                "repro_service_request_seconds",
                "Wall time to execute one request",
            )
            self._h_ingest = telemetry.histogram(
                "repro_service_ingest_seconds",
                "Mean per-branch ingest latency, one sample per observe",
            )
            self._g_connections = telemetry.gauge(
                "repro_service_connections",
                "Open client connections",
            )
            self._m_checkpoint_failures = telemetry.counter(
                "repro_service_checkpoint_failures_total",
                "Periodic checkpoint sweeps that raised",
            )
            if coalesce:
                self._m_coalesce_rounds = telemetry.counter(
                    "repro_service_coalesce_rounds_total",
                    "Coalesced ingest scheduling rounds executed",
                )
                self._m_coalesce_fallbacks = telemetry.counter(
                    "repro_service_coalesce_fallbacks_total",
                    "Observes in a round executed on the per-session "
                    "path (non-pool sessions)",
                )
                self._h_round_size = telemetry.histogram(
                    "repro_service_coalesce_round_size",
                    "Observe requests fused per scheduling round",
                    start=1.0, factor=2.0, count=16,
                )
                self._g_coalesced_sessions = telemetry.gauge(
                    "repro_service_coalesced_sessions",
                    "Distinct pool-backed sessions in the last "
                    "coalesced round",
                )

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise ServiceUnavailableError("service is already started")
        self._stopped = asyncio.Event()
        if self.uds_path is not None:
            try:
                os.unlink(self.uds_path)
            except FileNotFoundError:
                pass
            self._server = await asyncio.start_unix_server(
                self._handle_connection,
                path=self.uds_path,
                limit=protocol.MAX_LINE_BYTES,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                self.host,
                self.port,
                limit=protocol.MAX_LINE_BYTES,
            )
            sockets = self._server.sockets or []
            if sockets:
                self.port = sockets[0].getsockname()[1]
        if self.coalesce:
            # Imported lazily alongside its numpy dependency chain: the
            # scheduler only exists when coalescing was asked for.
            from repro.service.coalesce import IngestCoalescer

            self._coalescer = IngestCoalescer(
                self._coalesce_round, window=self.coalesce_window
            )
            self._coalescer.start()
        if self.idle_ttl_enabled:
            self._sweeper = asyncio.ensure_future(self._sweep_idle())
        if self._persistence is not None:
            self._checkpointer = asyncio.ensure_future(
                self._checkpoint_loop()
            )
        if self.http_port is not None:
            # Imported lazily: the NDJSON service must not pay for the
            # HTTP gateway unless it was asked for.
            from repro.obs import HttpGateway

            self._gateway = HttpGateway(
                self, host=self.http_host, port=self.http_port
            )
            await self._gateway.start()
            self.http_port = self._gateway.port
        if self._telemetry is not None:
            self._telemetry.emit(
                "service_start", host=self.host, port=self.port,
                max_sessions=self.registry.max_sessions,
                recovered=self.sessions_recovered,
                durable=self._persistence is not None,
                http_port=self.http_port,
            )

    @property
    def idle_ttl_enabled(self) -> bool:
        return self.registry.idle_ttl is not None

    @property
    def persistence(self):
        """The :class:`~repro.persistence.manager.PersistenceManager`
        backing this service, or ``None`` when RAM-only."""
        return self._persistence

    @property
    def telemetry(self) -> "Optional[Telemetry]":
        return self._telemetry

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def gateway(self):
        """The running :class:`~repro.obs.HttpGateway`, or ``None``."""
        return self._gateway

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started_mono

    def touch_uptime(self) -> float:
        """Refresh the uptime gauge (called on scrape) and return it."""
        uptime = self.uptime_seconds
        if self._telemetry is not None:
            self._g_uptime.set(uptime)
        return uptime

    def ingest_queue_depth(self) -> int:
        """Requests currently buffered across all connection queues —
        the live backpressure signal."""
        return sum(
            connection.queue.qsize()
            for connection in self._connections.values()
        )

    def begin_drain(self, grace: float = 0.5) -> None:
        """Flip to draining *now* and schedule the real shutdown.

        ``/readyz`` (and ``ping``) report not-ready immediately; the
        full :meth:`shutdown` runs after ``grace`` seconds so probes
        and load balancers get a window to observe the transition
        before sockets disappear. Idempotent while already draining.
        """
        if self._draining:
            return
        self._draining = True

        async def _later() -> None:
            await asyncio.sleep(grace)
            await self.shutdown(drain=True)

        self._drain_task = asyncio.ensure_future(_later())

    async def serve_forever(self) -> None:
        """Run until :meth:`shutdown` completes (from another task or a
        signal handler)."""
        if self._server is None:
            await self.start()
        assert self._stopped is not None
        await self._stopped.wait()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop the service.

        With ``drain=True`` (the default): stop accepting connections,
        stop reading new request lines, execute everything already
        queued, flush all responses and interval pushes, then close the
        sockets. With ``drain=False``: cancel everything immediately.
        """
        if self._server is None:
            return
        self._draining = True
        drain_task = self._drain_task
        if drain_task is not None and drain_task is not asyncio.current_task():
            # A direct shutdown supersedes a scheduled begin_drain one.
            self._drain_task = None
            drain_task.cancel()
        server, self._server = self._server, None
        server.close()
        await server.wait_closed()
        if self.uds_path is not None:
            try:
                os.unlink(self.uds_path)
            except OSError:
                pass
        if self._sweeper is not None:
            self._sweeper.cancel()
            self._sweeper = None
        if self._checkpointer is not None:
            self._checkpointer.cancel()
            self._checkpointer = None

        connections = list(self._connections.values())
        if drain:
            # Stop the readers (no new requests), then let each worker
            # finish its queue. The sentinel wakes idle workers; both
            # waits are bounded so a stalled client cannot wedge the
            # shutdown.
            for connection in connections:
                for task in connection.tasks[:1]:  # the reader
                    task.cancel()
            for connection in connections:
                try:
                    await asyncio.wait_for(
                        connection.queue.put(None), self.drain_timeout
                    )
                except asyncio.TimeoutError:
                    pass
            for connection in connections:
                for task in connection.tasks[1:]:  # the worker
                    try:
                        await asyncio.wait_for(
                            asyncio.shield(task), self.drain_timeout
                        )
                    except (asyncio.CancelledError, Exception):
                        pass
        if self._coalescer is not None:
            # After the workers: every queued observe has been rounded
            # and acked (the drain guarantee); stopping earlier would
            # strand workers awaiting their round.
            coalescer, self._coalescer = self._coalescer, None
            await coalescer.stop()
        for connection in connections:
            for task in connection.tasks:
                task.cancel()
            await self._close_connection(connection)
        self._connections.clear()

        if self._persistence is not None:
            # Final checkpoint so a graceful stop leaves the data dir
            # ready to recover every session — the registry teardown
            # below destroys only the RAM copies.
            self._persistence.checkpoint_all(self.registry.sessions())
            self._persistence.compact()
            self._persistence.close()
        closed = self.registry.close_all()
        if self._telemetry is not None:
            self._telemetry.emit(
                "service_stop", drained=drain, sessions_closed=closed,
                requests=self.requests_served,
            )
        if self._gateway is not None:
            # The gateway goes down last so /healthz and /readyz stay
            # observable for the whole drain — a load balancer sees the
            # not-ready signal before the port disappears.
            gateway, self._gateway = self._gateway, None
            await gateway.shutdown()
        if self._stopped is not None:
            self._stopped.set()

    async def _sweep_idle(self) -> None:
        while True:
            await asyncio.sleep(self.sweep_interval)
            self.registry.expire_idle()

    async def _checkpoint_loop(self) -> None:
        while True:
            await asyncio.sleep(self.checkpoint_interval)
            try:
                self._persistence.checkpoint_all(self.registry.sessions())
                self._persistence.compact()
            except Exception as error:
                # One failed sweep (disk full, transient I/O) must not
                # kill the loop: with no checkpoints the journal grows
                # unboundedly and recovery time degrades silently.
                self.checkpoint_failures += 1
                if self._telemetry is not None:
                    self._telemetry.emit(
                        "checkpoint_sweep_failed",
                        error=f"{type(error).__name__}: {error}",
                    )
                    self._m_checkpoint_failures.inc()

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        if self._draining or len(self._connections) >= self.max_connections:
            # Admission control at the socket level: no request to
            # answer yet, so refuse by closing.
            self.connections_refused += 1
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
            return
        connection = _Connection(reader, writer, self.queue_size)
        self._connections[id(connection)] = connection
        if self._telemetry is not None:
            self._g_connections.set(len(self._connections))
        reader_task = asyncio.ensure_future(self._read_loop(connection))
        worker_task = asyncio.ensure_future(self._work_loop(connection))
        connection.tasks = [reader_task, worker_task]
        try:
            await worker_task
        except asyncio.CancelledError:
            pass
        finally:
            reader_task.cancel()
            if self._connections.pop(id(connection), None) is not None:
                await self._close_connection(connection)
            if self._telemetry is not None:
                self._g_connections.set(len(self._connections))

    async def _close_connection(self, connection: _Connection) -> None:
        try:
            connection.writer.close()
            await connection.writer.wait_closed()
        except Exception:
            pass

    async def _read_loop(self, connection: _Connection) -> None:
        """Parse request lines into the bounded queue (the await on
        ``put`` is what backpressures the socket)."""
        try:
            while True:
                try:
                    line = await connection.reader.readline()
                except (
                    asyncio.LimitOverrunError, ValueError
                ) as error:  # line longer than MAX_LINE_BYTES
                    await connection.queue.put(
                        ("bad", None, ProtocolError(
                            f"request line exceeds the "
                            f"{protocol.MAX_LINE_BYTES}-byte limit: {error}"
                        ))
                    )
                    break
                if not line:
                    break  # EOF
                if not line.strip():
                    continue
                try:
                    request = protocol.parse_request(line)
                except ProtocolError as error:
                    request_id = _best_effort_id(line)
                    await connection.queue.put(("bad", request_id, error))
                    continue
                if self._draining and not isinstance(
                    request,
                    (
                        protocol.PingRequest,
                        protocol.StatsRequest,
                        protocol.ClusterRequest,
                    ),
                ):
                    # Lines read after drain began: typed refusal, so
                    # the client knows the work was NOT ingested.
                    await connection.queue.put(("bad", request.id,
                                                ServiceUnavailableError(
                        "service is draining; no new work is accepted"
                    )))
                    continue
                await connection.queue.put(("request", request))
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            # Unblock the worker even when cancelled mid-drain.
            try:
                connection.queue.put_nowait(None)
            except asyncio.QueueFull:
                pass

    async def _work_loop(self, connection: _Connection) -> None:
        """Execute queued requests; the only writer on this socket.

        Each cycle drains everything immediately available from the
        queue. With coalescing enabled, observe requests are submitted
        to the ingest scheduler (joining the cross-connection round)
        and any other request acts as an ordering barrier: earlier
        observes' results are collected first, so responses always
        leave in request order and a close never overtakes its
        session's in-flight observe. All of a cycle's payloads are
        serialized into one buffer and written with a single
        ``writer.write`` — one syscall per cycle instead of one per
        line, which also benefits the uncoalesced path.
        """
        while True:
            item = await connection.queue.get()
            if item is None:
                break
            batch: List[object] = [item]
            while True:
                try:
                    extra = connection.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                batch.append(extra)
                if extra is None:
                    break
            stop = False
            chunks: List[bytes] = []
            # (future, request, submit time) triples for coalesced
            # observes whose results have not been collected yet, in
            # request order.
            pending: List[tuple] = []

            async def _collect_pending() -> None:
                for future, request, submitted in pending:
                    try:
                        payloads = await future
                    except Exception as error:
                        # A scheduler fault must answer the request,
                        # not strand the connection.
                        payloads = self._error_payloads(
                            request.id, error
                        )
                    for payload in payloads:
                        chunks.append(protocol.encode(payload))
                    self.requests_served += 1
                    if self._telemetry is not None:
                        self._m_requests.inc()
                        self._h_request.observe(
                            time.perf_counter() - submitted
                        )
                pending.clear()

            for item in batch:
                if item is None:
                    stop = True
                    break
                started = time.perf_counter()
                if (
                    item[0] == "request"
                    and self._coalescer is not None
                    and self._coalescer.running
                    and isinstance(item[1], protocol.ObserveRequest)
                ):
                    pending.append(
                        (self._coalescer.submit(item[1]), item[1], started)
                    )
                    continue
                await _collect_pending()  # the ordering barrier
                if item[0] == "bad":
                    _, request_id, error = item
                    payloads = [protocol.error_response(
                        request_id if request_id is not None else -1,
                        protocol.error_code_for(error),
                        str(error),
                    )]
                    self.errors_returned += 1
                    if self._telemetry is not None:
                        self._m_errors.inc()
                else:
                    payloads = self._execute(item[1])
                for payload in payloads:
                    chunks.append(protocol.encode(payload))
                self.requests_served += 1
                if self._telemetry is not None:
                    self._m_requests.inc()
                    self._h_request.observe(time.perf_counter() - started)
            await _collect_pending()
            if chunks:
                try:
                    connection.writer.write(b"".join(chunks))
                    await connection.writer.drain()
                except (ConnectionError, RuntimeError):
                    break
            if stop:
                break

    # -- request execution -----------------------------------------------------

    def _execute(self, request: protocol.Request) -> List[dict]:
        """Run one request; returns the wire payloads to send, pushes
        first, the response to ``request`` last."""
        # Requests already queued when a drain begins are still
        # executed — the drain guarantee — so there is deliberately no
        # draining check here; refusal happens at the read loop.
        try:
            if isinstance(request, protocol.ObserveRequest):
                return self._handle_observe(request)
            return [protocol.ok_response(
                request.id, self._handle_simple(request)
            )]
        except Exception as error:
            return self._error_payloads(request.id, error)

    def _error_payloads(
        self, request_id: int, error: Exception
    ) -> List[dict]:
        """Count and encode one refusal (typed) or failure (internal)."""
        self.errors_returned += 1
        if self._telemetry is not None:
            self._m_errors.inc()
        if isinstance(error, ReproError):
            return [protocol.error_response(
                request_id, protocol.error_code_for(error), str(error)
            )]
        return [protocol.error_response(
            request_id, "internal", f"{type(error).__name__}: {error}",
        )]

    def _handle_simple(self, request: protocol.Request) -> dict:
        if isinstance(request, protocol.PingRequest):
            return {
                "protocol": protocol.PROTOCOL_VERSION,
                "draining": self._draining,
            }
        if isinstance(request, protocol.StatsRequest):
            stats = dict(self.registry.stats())
            stats.update(
                requests=self.requests_served,
                errors=self.errors_returned,
                connections=len(self._connections),
                uptime_seconds=self.touch_uptime(),
                predictions=self.prediction_accuracy(),
            )
            if self._persistence is not None:
                stats["persistence"] = self._persistence.stats()
                stats["checkpoint_failures"] = self.checkpoint_failures
            return stats
        if isinstance(request, protocol.OpenRequest):
            session = self.registry.open(
                name=request.session,
                config=request.config,
                interval_instructions=request.interval_instructions,
                snapshot=request.snapshot,
            )
            if self._persistence is not None:
                self._persistence.log_open(
                    session.name,
                    config=request.config,
                    interval_instructions=(
                        session.tracker.interval_instructions
                    ),
                    snapshot=request.snapshot,
                )
            return {
                "session": session.name,
                "restored": not session.recyclable,
                "interval_instructions":
                    session.tracker.interval_instructions,
            }
        if isinstance(request, protocol.CloseRequest):
            session = self.registry.close(request.session)
            if self._persistence is not None:
                self._persistence.log_close(session.name)
            return {
                "session": session.name,
                "intervals": session.tracker.intervals_observed,
                "branches": session.branches_ingested,
            }
        if isinstance(request, protocol.PredictRequest):
            session = self.registry.get(request.session)
            return self._predict_result(session)
        if isinstance(request, protocol.ClusterRequest):
            # A worker answers the diagnostics action so a dispatcher
            # can aggregate the same shape the dashboard renders; every
            # other cluster action belongs to the dispatcher.
            if request.action == "diagnostics":
                return self.diagnostics()
            raise ClusterError(
                f"action {request.action!r} requires a cluster "
                f"dispatcher; this is a single phase service"
            )
        assert isinstance(request, protocol.SnapshotRequest)
        session = self.registry.get(request.session)
        return {"snapshot": snapshot_tracker(session.tracker)}

    @staticmethod
    def _predict_result(session: Session) -> dict:
        tracker = session.tracker
        pending = tracker.next_phase.pending_prediction
        return {
            "session": session.name,
            "intervals": tracker.intervals_observed,
            "current_phase": tracker.current_phase,
            "predicted_next_phase": (
                pending.phase_id if pending is not None else None
            ),
            "prediction_confident": (
                pending.confident if pending is not None else False
            ),
            "prediction_source": (
                pending.source if pending is not None else None
            ),
            "predicted_length_class":
                tracker.length_predictor.outstanding_prediction,
        }

    def _handle_observe(
        self, request: protocol.ObserveRequest
    ) -> List[dict]:
        session = self.registry.get(request.session)
        started = time.perf_counter()
        reports = session.tracker.observe_batch(
            request.pcs, request.counts, cpi=request.cpi
        )
        elapsed = time.perf_counter() - started
        if self._telemetry is not None and request.pcs:
            self._h_ingest.observe(elapsed / len(request.pcs))
        return self._finish_observe(session, request, reports)

    def _finish_observe(
        self,
        session: Session,
        request: protocol.ObserveRequest,
        reports,
    ) -> List[dict]:
        """The shared post-classification tail of an observe: session
        bookkeeping, journaling, prediction scoring, interval events,
        and the wire payloads (pushes first, ack last). Used by both
        the per-session path and the coalesced round executor so the
        two produce byte-identical streams by construction."""
        session.branches_ingested += len(request.pcs)
        session.intervals_pushed += len(reports)
        if self._persistence is not None and request.pcs:
            # Journaled (and flushed per the sync mode) before the ack
            # below is written: an acknowledged batch is as durable as
            # the sync mode promises. In a coalesced round every
            # submission logs here before any future resolves, so the
            # whole round is journaled before the first ack leaves.
            self._persistence.log_observe(
                session.name, request.pcs, request.counts,
                cpi=request.cpi,
            )
        if self._telemetry is not None:
            self._m_branches.inc(len(request.pcs))
            self._m_intervals.inc(len(reports))
        for report in reports:
            self._score_prediction(session, report)
        if self._telemetry is not None and reports:
            # One event per boundary (not per branch); with neither a
            # JSONL sink nor an SSE subscriber these are one-check
            # no-ops inside the hub.
            for report in reports:
                self._telemetry.emit(
                    "interval", session=session.name,
                    **report.to_dict(),
                )
        payloads = [
            protocol.interval_push(session.name, report.to_dict())
            for report in reports
        ]
        payloads.append(protocol.ok_response(request.id, {
            "intervals": len(reports),
            "branches": len(request.pcs),
        }))
        return payloads

    # -- coalesced ingest rounds ----------------------------------------------

    async def execute_observe(
        self, request: protocol.ObserveRequest
    ) -> List[dict]:
        """Execute one observe through the ingest coalescer when it is
        running, else inline — the entry point shared by the NDJSON
        workers and the HTTP gateway's observe-batch endpoint."""
        coalescer = self._coalescer
        if coalescer is not None and coalescer.running:
            return await coalescer.submit(request)
        return self._execute(request)

    def _coalesce_round(self, submissions) -> None:
        """Execute one coalesced ingest round.

        Sessions on pool slots contribute their record slices to a
        single fused :meth:`TrackerPool.observe_fanin` pass; everything
        else (scalar trackers, lookup failures) takes the per-session
        path. Every submission's future is resolved with its wire
        payloads — pushes first, ack last, identical to the inline
        path — and journaling for the whole round happens before any
        future resolves.

        Ordering: submissions arrive in per-connection request order,
        a session's submissions are grouped and its whole group takes
        exactly one path per round (fused or per-session — never a
        mid-round flip that could reorder a session's requests), and
        same-session slices are concatenated in submission order, so a
        record-by-record replay would interleave exactly the way the
        uncoalesced worker loop does.
        """
        from collections import OrderedDict

        # Group submissions per session, keeping submission order both
        # across groups (insertion order) and within each group. The
        # lookup runs per submission — exactly the inline path's LRU /
        # hydration touches — and the group always uses the *latest*
        # resolved Session object (a mid-round evict-and-hydrate
        # replaces it for every queued request of that session).
        groups: "OrderedDict[str, dict]" = OrderedDict()
        for submission in submissions:
            request = submission.request
            try:
                session = self.registry.get(request.session)
            except Exception as error:
                submission.resolve(
                    self._error_payloads(request.id, error)
                )
                continue
            group = groups.get(request.session)
            if group is None:
                groups[request.session] = {
                    "session": session, "subs": [submission],
                }
            else:
                group["session"] = session
                group["subs"].append(submission)

        def _per_session(group: dict) -> None:
            """Today's path for a whole group, in request order."""
            for submission in group["subs"]:
                submission.resolve(self._execute(submission.request))
            if self._telemetry is not None:
                self._m_coalesce_fallbacks.inc(len(group["subs"]))

        fused = []
        for group in groups.values():
            if self.registry.pool_slot(group["session"]) is None:
                # Foreign-config scalar trackers (and pool-exhaustion
                # fallbacks) keep the per-session path.
                _per_session(group)
            else:
                fused.append(group)

        # A scalar group's (or another pooled group's) hydration may
        # have LRU-evicted a fused session after its lookup; demote any
        # stale group to the per-session path, whose own registry.get
        # re-hydrates it correctly. Each iteration demotes at least one
        # group, so this terminates even under eviction ping-pong.
        while True:
            stale = [
                group for group in fused
                if self.registry.pool_slot(group["session"]) is None
            ]
            if not stale:
                break
            fused = [group for group in fused if group not in stale]
            for group in stale:
                _per_session(group)

        records = 0
        live_count = len(fused)
        if fused:
            segments = []
            flat: List[tuple] = []  # (submission, session) per segment
            for group in fused:
                session = group["session"]
                slot = self.registry.pool_slot(session)
                for submission in group["subs"]:
                    request = submission.request
                    segments.append((
                        slot, request.pcs, request.counts, request.cpi,
                    ))
                    flat.append((submission, session))
                    records += len(request.pcs)
            started = time.perf_counter()
            try:
                fanned = self.registry.pool.observe_fanin(segments)
            except Exception as error:  # pragma: no cover - defensive
                for submission, _ in flat:
                    submission.resolve(self._error_payloads(
                        submission.request.id, error
                    ))
                fanned = None
            if fanned is not None:
                elapsed = time.perf_counter() - started
                if self._telemetry is not None and records:
                    # Per-record ingest latency, attributed per round:
                    # the fused pass is one unit of work.
                    self._h_ingest.observe(elapsed / records)
                for (submission, session), reports in zip(flat, fanned):
                    try:
                        payloads = self._finish_observe(
                            session, submission.request, reports
                        )
                    except Exception as error:  # pragma: no cover
                        payloads = self._error_payloads(
                            submission.request.id, error
                        )
                    submission.resolve(payloads)

        if self._telemetry is not None:
            self._m_coalesce_rounds.inc()
            self._h_round_size.observe(len(submissions))
            self._g_coalesced_sessions.set(live_count)

    def _score_prediction(self, session: Session, report) -> None:
        """Score the session's outstanding next-phase prediction against
        the interval that just closed, then remember the new one."""
        predicted = session.predicted_next_phase
        if predicted is not None:
            correct = predicted == report.phase_id
            self.predictions_scored += 1
            self.predictions_correct += int(correct)
            if session.prediction_confident:
                self.confident_scored += 1
                self.confident_correct += int(correct)
            if self._telemetry is not None:
                self._m_pred_scored.inc()
                if correct:
                    self._m_pred_correct.inc()
                if session.prediction_confident:
                    self._m_pred_confident.inc()
                    if correct:
                        self._m_pred_confident_correct.inc()
        session.predicted_next_phase = report.predicted_next_phase
        session.prediction_confident = report.prediction_confident

    def prediction_accuracy(self) -> Dict[str, object]:
        """Service-level next-phase predictor scoreboard."""
        scored = self.predictions_scored
        confident = self.confident_scored
        return {
            "scored": scored,
            "correct": self.predictions_correct,
            "accuracy": (
                self.predictions_correct / scored if scored else None
            ),
            "confident_scored": confident,
            "confident_correct": self.confident_correct,
            "confident_accuracy": (
                self.confident_correct / confident if confident else None
            ),
        }

    def diagnostics(self) -> Dict[str, object]:
        """The operational state the dashboard renders: per-phase
        occupancy across live sessions, predictor accuracy, pool slot
        utilization, ingest backpressure, and persistence stats."""
        occupancy: Dict[str, int] = {}
        for session in self.registry.sessions():
            phase = session.tracker.current_phase
            key = "none" if phase is None else str(phase)
            occupancy[key] = occupancy.get(key, 0) + 1
        pool = self.registry.pool
        diagnostics: Dict[str, object] = {
            "uptime_seconds": self.touch_uptime(),
            "draining": self._draining,
            "requests": self.requests_served,
            "errors": self.errors_returned,
            "connections": len(self._connections),
            "connections_refused": self.connections_refused,
            "ingest_queue_depth": self.ingest_queue_depth(),
            "phase_occupancy": occupancy,
            "prediction": self.prediction_accuracy(),
            "registry": dict(self.registry.stats()),
            "pool": (
                {
                    "capacity": pool.capacity,
                    "active_slots": pool.active_slots,
                    "utilization": (
                        pool.active_slots / pool.capacity
                        if pool.capacity else None
                    ),
                }
                if pool is not None else None
            ),
            "persistence": (
                self._persistence.stats()
                if self._persistence is not None else None
            ),
        }
        if self.coalesce:
            coalescer = self._coalescer
            if coalescer is not None:
                diagnostics["coalesce"] = dict(
                    enabled=True, **coalescer.stats()
                )
            else:
                diagnostics["coalesce"] = {
                    "enabled": True,
                    "window": self.coalesce_window,
                    "rounds": 0,
                }
        if self._persistence is not None:
            diagnostics["checkpoint_failures"] = self.checkpoint_failures
        return diagnostics


def _best_effort_id(line: bytes) -> Optional[int]:
    """Recover the request id from a line that failed validation, so
    the error response can still be matched to its request."""
    try:
        payload = json.loads(line)
    except Exception:
        return None
    if isinstance(payload, dict):
        request_id = payload.get("id")
        if isinstance(request_id, int) and not isinstance(request_id, bool):
            return request_id
    return None


# -- thread hosting -----------------------------------------------------------


class ServiceHandle:
    """A running service on a background thread (tests, demos, the
    benchmark). Use as a context manager or call :meth:`stop`."""

    def __init__(self, service: PhaseService, drain: bool = True) -> None:
        self.service = service
        self.drain = drain
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.service.port

    @property
    def host(self) -> str:
        return self.service.host

    def start(self, timeout: float = 10.0) -> "ServiceHandle":
        self._thread = threading.Thread(
            target=self._run, name="repro-phase-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise ServiceUnavailableError(
                "service failed to start within the timeout"
            )
        if self._error is not None:
            raise ServiceUnavailableError(
                f"service failed to start: {self._error}"
            )
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.service.start())
        except BaseException as error:
            self._error = error
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_until_complete(self.service.serve_forever())
        finally:
            loop.close()

    def stop(self, drain: Optional[bool] = None, timeout: float = 10.0) -> None:
        """Shut the service down (draining by default) and join the
        thread. Idempotent."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None or not thread.is_alive():
            return
        should_drain = self.drain if drain is None else drain
        future = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(drain=should_drain), loop
        )
        try:
            future.result(timeout)
        except Exception:
            pass
        thread.join(timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def start_in_thread(**kwargs: object) -> ServiceHandle:
    """Build a :class:`PhaseService` and run it on a daemon thread;
    returns a started :class:`ServiceHandle` (``handle.port`` is live)."""
    service = PhaseService(**kwargs)  # type: ignore[arg-type]
    return ServiceHandle(service).start()
