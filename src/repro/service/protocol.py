"""The service wire protocol: newline-delimited JSON messages.

Every message is one JSON object on one ``\\n``-terminated line, UTF-8
encoded. Clients send *requests*; the server answers each request with
exactly one *response* carrying the request's ``id``, and may interleave
*pushes* (server-initiated records with no ``id``) before the response.

Requests::

    {"op":"ping","id":1}
    {"op":"stats","id":2}
    {"op":"open","id":3,"session":"s1","config":{...},
     "interval_instructions":100000,"snapshot":{...}}
    {"op":"observe","id":4,"session":"s1","pcs":[...],"counts":[...],
     "cpi":1.0}
    {"op":"predict","id":5,"session":"s1"}
    {"op":"snapshot","id":6,"session":"s1"}
    {"op":"close","id":7,"session":"s1"}
    {"op":"cluster","id":8,"action":"status","params":{}}

Responses::

    {"id":4,"ok":true,"result":{"intervals":2,"branches":1000}}
    {"id":4,"ok":false,"error":{"code":"session_not_found",
                                "message":"..."}}

Pushes (one per interval boundary classified during an ``observe``,
written *before* that observe's response)::

    {"push":"interval","session":"s1","report":{...}}

The ``report`` payload is exactly
:meth:`repro.core.online.TrackerReport.to_dict`. Error codes map 1:1
to the exception classes in :mod:`repro.errors`
(:data:`ERROR_CODE_EXCEPTIONS`), so a client can rethrow the server's
refusal as a typed exception distinct from any transport failure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type, Union

from repro.errors import (
    ClusterError,
    ProtocolError,
    ServiceError,
    ServiceOverloadedError,
    ServiceUnavailableError,
    SessionExistsError,
    SessionNotFoundError,
    SnapshotError,
)

#: Protocol revision, reported by ``ping``; bumped on breaking changes.
PROTOCOL_VERSION = 1

#: Upper bound on one encoded line. Snapshots dominate (a full tracker
#: state is tens of KiB); observe batches of 100k pairs stay under 2 MiB.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Wire error code -> exception raised client-side. ``internal`` is the
#: catch-all for unexpected server-side failures.
ERROR_CODE_EXCEPTIONS: Dict[str, Type[ServiceError]] = {
    "protocol": ProtocolError,
    "session_not_found": SessionNotFoundError,
    "session_exists": SessionExistsError,
    "overloaded": ServiceOverloadedError,
    "shutting_down": ServiceUnavailableError,
    "snapshot": SnapshotError,
    "cluster": ClusterError,
    "internal": ServiceError,
}

_EXCEPTION_ERROR_CODES: Dict[Type[ServiceError], str] = {
    exception: code
    for code, exception in ERROR_CODE_EXCEPTIONS.items()
    if exception is not ServiceError
}


def error_code_for(error: Exception) -> str:
    """The wire code a server reports for ``error``.

    Subclasses inherit their nearest ancestor's code (for example
    :class:`~repro.errors.SnapshotSchemaError` reports ``snapshot``),
    so new refinements of an existing refusal never leak ``internal``.
    """
    for klass in type(error).__mro__:
        code = _EXCEPTION_ERROR_CODES.get(klass)
        if code is not None:
            return code
    return "internal"


def exception_for(code: str, message: str) -> ServiceError:
    """Rebuild the typed exception a wire error code denotes."""
    return ERROR_CODE_EXCEPTIONS.get(code, ServiceError)(message)


# -- request messages ---------------------------------------------------------


@dataclass(frozen=True)
class PingRequest:
    """Liveness probe; answers with the protocol version."""

    id: int
    op = "ping"


@dataclass(frozen=True)
class StatsRequest:
    """Service-level statistics (sessions, totals)."""

    id: int
    op = "stats"


@dataclass(frozen=True)
class OpenRequest:
    """Create a session, optionally restoring a tracker snapshot.

    ``session`` may be omitted to let the server assign a name.
    ``config`` holds :class:`~repro.core.config.ClassifierConfig`
    field overrides; ``interval_instructions`` the interval length.
    When ``snapshot`` is given it must be a document produced by the
    ``snapshot`` op (configuration travels inside it, so ``config`` and
    ``interval_instructions`` must then be omitted).
    """

    id: int
    session: Optional[str] = None
    config: Optional[dict] = None
    interval_instructions: Optional[int] = None
    snapshot: Optional[dict] = None
    op = "open"


@dataclass(frozen=True)
class CloseRequest:
    """Tear down a session, discarding its tracker."""

    id: int
    session: str
    op = "close"


@dataclass(frozen=True)
class ObserveRequest:
    """Ingest a batch of committed branches into a session.

    ``pcs`` and ``counts`` are parallel arrays of branch PCs and
    instruction counts. ``cpi`` is attributed to any interval boundary
    the batch completes (the client-side measured CPI; defaults to 1.0
    for callers without a cycle counter).
    """

    id: int
    session: str
    pcs: List[int] = field(default_factory=list)
    counts: List[int] = field(default_factory=list)
    cpi: float = 1.0
    op = "observe"


@dataclass(frozen=True)
class PredictRequest:
    """Current phase plus next-phase / length-class predictions."""

    id: int
    session: str
    op = "predict"


@dataclass(frozen=True)
class SnapshotRequest:
    """Export the session's full tracker state as a snapshot document."""

    id: int
    session: str
    op = "snapshot"


@dataclass(frozen=True)
class ClusterRequest:
    """A cluster control-plane operation.

    Understood fully only by a cluster dispatcher (``status``,
    ``drain-worker``, ``migrate``, ``rebalance``, ``grow``); a plain
    :class:`~repro.service.server.PhaseService` answers only the
    ``diagnostics`` action (the dispatcher uses it to assemble the
    cluster-wide view) and refuses everything else with error code
    ``cluster``.
    """

    id: int
    action: str
    params: dict = field(default_factory=dict)
    op = "cluster"


Request = Union[
    PingRequest,
    StatsRequest,
    OpenRequest,
    CloseRequest,
    ObserveRequest,
    PredictRequest,
    SnapshotRequest,
    ClusterRequest,
]

_REQUEST_OPS = ("ping", "stats", "open", "close", "observe", "predict",
                "snapshot", "cluster")


# -- server-to-client messages ------------------------------------------------


@dataclass(frozen=True)
class Response:
    """One reply per request, matched to it by ``id``."""

    id: int
    ok: bool
    result: dict = field(default_factory=dict)
    error_code: Optional[str] = None
    error_message: Optional[str] = None

    def raise_for_error(self) -> "Response":
        """Rethrow a refusal as its typed exception; no-op when ok."""
        if not self.ok:
            raise exception_for(
                self.error_code or "internal", self.error_message or ""
            )
        return self


@dataclass(frozen=True)
class IntervalPush:
    """A server-initiated interval report for one classified boundary."""

    session: str
    report: dict


ServerMessage = Union[Response, IntervalPush]


# -- encoding -----------------------------------------------------------------


def encode(payload: dict) -> bytes:
    """One wire line: compact JSON + newline, UTF-8."""
    line = json.dumps(payload, separators=(",", ":"))
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte line limit"
        )
    return data


def ok_response(request_id: int, result: dict) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: int, code: str, message: str) -> dict:
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def interval_push(session: str, report: dict) -> dict:
    return {"push": "interval", "session": session, "report": report}


def request_payload(request: Request) -> dict:
    """The wire form of a request object (omitting default fields)."""
    payload: dict = {"op": request.op, "id": request.id}
    if isinstance(request, OpenRequest):
        if request.session is not None:
            payload["session"] = request.session
        if request.config is not None:
            payload["config"] = request.config
        if request.interval_instructions is not None:
            payload["interval_instructions"] = request.interval_instructions
        if request.snapshot is not None:
            payload["snapshot"] = request.snapshot
    elif isinstance(request, ObserveRequest):
        payload["session"] = request.session
        payload["pcs"] = request.pcs
        payload["counts"] = request.counts
        payload["cpi"] = request.cpi
    elif isinstance(
        request, (CloseRequest, PredictRequest, SnapshotRequest)
    ):
        payload["session"] = request.session
    elif isinstance(request, ClusterRequest):
        payload["action"] = request.action
        if request.params:
            payload["params"] = request.params
    return payload


# -- decoding -----------------------------------------------------------------


def _decode_object(line: Union[str, bytes]) -> dict:
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"line is not UTF-8: {error}") from None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"line is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("message must be a JSON object")
    return payload


def _require_id(payload: dict) -> int:
    request_id = payload.get("id")
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ProtocolError("request 'id' must be an integer")
    return request_id


def _require_session(payload: dict) -> str:
    session = payload.get("session")
    if not isinstance(session, str) or not session:
        raise ProtocolError("request 'session' must be a non-empty string")
    return session


def _int_list(
    payload: dict, name: str, minimum: Optional[int] = None
) -> List[int]:
    values = payload.get(name)
    if not isinstance(values, list):
        raise ProtocolError(f"observe '{name}' must be a list of integers")
    out = []
    for value in values:
        if not isinstance(value, int) or isinstance(value, bool):
            raise ProtocolError(
                f"observe '{name}' must be a list of integers"
            )
        if minimum is not None and value < minimum:
            raise ProtocolError(
                f"observe '{name}' values must be >= {minimum}"
            )
        out.append(value)
    return out


def parse_request(line: Union[str, bytes]) -> Request:
    """Decode and validate one request line.

    Raises :class:`~repro.errors.ProtocolError` on any malformed input;
    the server maps that to an ``error`` response with code
    ``protocol``.
    """
    payload = _decode_object(line)
    op = payload.get("op")
    if op not in _REQUEST_OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {_REQUEST_OPS}"
        )
    request_id = _require_id(payload)

    if op == "ping":
        return PingRequest(id=request_id)
    if op == "stats":
        return StatsRequest(id=request_id)
    if op == "open":
        session = payload.get("session")
        if session is not None and (
            not isinstance(session, str) or not session
        ):
            raise ProtocolError(
                "open 'session' must be a non-empty string when given"
            )
        config = payload.get("config")
        if config is not None and not isinstance(config, dict):
            raise ProtocolError("open 'config' must be an object")
        interval = payload.get("interval_instructions")
        if interval is not None and (
            not isinstance(interval, int) or isinstance(interval, bool)
            or interval <= 0
        ):
            raise ProtocolError(
                "open 'interval_instructions' must be a positive integer"
            )
        snapshot = payload.get("snapshot")
        if snapshot is not None:
            if not isinstance(snapshot, dict):
                raise ProtocolError("open 'snapshot' must be an object")
            if config is not None or interval is not None:
                raise ProtocolError(
                    "open with 'snapshot' must not also carry 'config' "
                    "or 'interval_instructions' (they travel inside the "
                    "snapshot)"
                )
        return OpenRequest(
            id=request_id,
            session=session,
            config=config,
            interval_instructions=interval,
            snapshot=snapshot,
        )
    if op == "observe":
        pcs = _int_list(payload, "pcs", minimum=0)
        counts = _int_list(payload, "counts", minimum=0)
        if len(pcs) != len(counts):
            raise ProtocolError(
                f"observe 'pcs' and 'counts' must be parallel arrays: "
                f"{len(pcs)} vs {len(counts)}"
            )
        cpi = payload.get("cpi", 1.0)
        if not isinstance(cpi, (int, float)) or isinstance(cpi, bool) or (
            cpi <= 0
        ):
            raise ProtocolError("observe 'cpi' must be a positive number")
        return ObserveRequest(
            id=request_id,
            session=_require_session(payload),
            pcs=pcs,
            counts=counts,
            cpi=float(cpi),
        )
    if op == "cluster":
        action = payload.get("action")
        if not isinstance(action, str) or not action:
            raise ProtocolError(
                "cluster 'action' must be a non-empty string"
            )
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise ProtocolError("cluster 'params' must be an object")
        return ClusterRequest(id=request_id, action=action, params=params)
    session = _require_session(payload)
    if op == "close":
        return CloseRequest(id=request_id, session=session)
    if op == "predict":
        return PredictRequest(id=request_id, session=session)
    return SnapshotRequest(id=request_id, session=session)


def parse_server_message(line: Union[str, bytes]) -> ServerMessage:
    """Decode one server line into a :class:`Response` or a push."""
    payload = _decode_object(line)
    if "push" in payload:
        if payload["push"] != "interval":
            raise ProtocolError(f"unknown push type {payload['push']!r}")
        report = payload.get("report")
        session = payload.get("session")
        if not isinstance(report, dict) or not isinstance(session, str):
            raise ProtocolError("interval push lacks 'session'/'report'")
        return IntervalPush(session=session, report=report)
    request_id = _require_id(payload)
    ok = payload.get("ok")
    if not isinstance(ok, bool):
        raise ProtocolError("response 'ok' must be a boolean")
    if ok:
        result = payload.get("result", {})
        if not isinstance(result, dict):
            raise ProtocolError("response 'result' must be an object")
        return Response(id=request_id, ok=True, result=result)
    error = payload.get("error")
    if not isinstance(error, dict) or "code" not in error:
        raise ProtocolError("error response lacks an 'error' object")
    return Response(
        id=request_id,
        ok=False,
        error_code=str(error["code"]),
        error_message=str(error.get("message", "")),
    )
