"""Cross-session ingest coalescing: the micro-batching scheduler.

The per-connection worker loops in :mod:`repro.service.server` execute
requests one at a time, so with a structure-of-arrays
:class:`~repro.core.pool.TrackerPool` behind the registry every observe
still pays a full single-slot numpy pass — the fused multi-session
batching the pool exists for never reaches the wire path.

The :class:`IngestCoalescer` fixes that. Workers *submit* observe
requests here instead of executing them inline and await a per-request
future. A single scheduler task collects everything submitted across
all connections (plus the HTTP gateway's observe-batch endpoint) into
one *round*, hands the round to the service's round executor — which
groups the pool-backed sessions' record slices into one
:meth:`~repro.core.pool.TrackerPool.observe_fanin` pass and journals
the round before acknowledging any of it — and resolves each future
with that request's wire payloads (interval pushes first, ack last).

Scheduling is self-clocking: with ``window=0`` the scheduler yields one
event-loop tick after the first submission so every currently-runnable
worker can join the round, then runs it synchronously. While a round
executes no worker runs (one thread), so their next requests pile up
into the next round — batch size adapts to load with no configured
delay. A positive ``window`` adds a fixed gather delay for deployments
that prefer larger rounds over per-request latency.

Ordering and durability invariants live with the round executor
(:meth:`~repro.service.server.PhaseService._coalesce_round`); this
module only guarantees that submissions join rounds in submission
order and that every submitted future is eventually resolved (or
cancelled with the service).
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, List, Optional

from repro.service import protocol

__all__ = ["IngestCoalescer", "Submission"]


class Submission:
    """One queued observe awaiting its round."""

    __slots__ = ("request", "future")

    def __init__(
        self, request: "protocol.ObserveRequest", future: "asyncio.Future"
    ) -> None:
        self.request = request
        self.future = future

    def resolve(self, payloads: List[dict]) -> None:
        """Hand the request's wire payloads back to its submitter."""
        if not self.future.done():
            self.future.set_result(payloads)


class IngestCoalescer:
    """Collects observe submissions into batched scheduling rounds.

    Parameters
    ----------
    run_round:
        Callback executing one round: takes the list of
        :class:`Submission` objects in submission order and must
        resolve every one of them (the service's
        ``_coalesce_round``).
    window:
        Gather delay in seconds. ``0`` (the default) coalesces only
        what is already runnable — one event-loop yield between the
        first submission and the round, adding no configured latency.
    """

    def __init__(
        self,
        run_round: Callable[[List[Submission]], None],
        window: float = 0.0,
    ) -> None:
        self._run_round = run_round
        self.window = window
        self._pending: List[Submission] = []
        self._event: Optional[asyncio.Event] = None
        self._task: Optional["asyncio.Task"] = None
        self.rounds = 0
        self.requests = 0
        self.max_round_size = 0

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    @property
    def pending(self) -> int:
        """Submissions waiting for the next round (the live signal)."""
        return len(self._pending)

    def start(self) -> None:
        """Start the scheduler task on the running event loop."""
        if self.running:
            return
        self._event = asyncio.Event()
        self._task = asyncio.ensure_future(self._loop())

    async def stop(self) -> None:
        """Stop the scheduler, flushing any not-yet-rounded work.

        Called after the connection workers drain, so normally nothing
        is pending; a final round covers the cancel-mid-submit race so
        no submitter is left awaiting forever.
        """
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        if self._pending:
            pending, self._pending = self._pending, []
            self._account(pending)
            self._dispatch(pending)

    def submit(
        self, request: "protocol.ObserveRequest"
    ) -> "Awaitable[List[dict]]":
        """Queue an observe for the next round; returns a future
        resolving to the request's wire payloads (pushes then ack)."""
        future = asyncio.get_event_loop().create_future()
        self._pending.append(Submission(request, future))
        if self._event is not None:
            self._event.set()
        return future

    def _dispatch(self, pending: List[Submission]) -> None:
        """Run one round; a fault escaping the executor fails the
        still-unresolved submissions instead of stranding their
        workers (and would otherwise kill the scheduler task)."""
        try:
            self._run_round(pending)
        except Exception as error:  # pragma: no cover - defensive
            for submission in pending:
                if not submission.future.done():
                    submission.future.set_exception(error)

    def _account(self, round_submissions: List[Submission]) -> None:
        self.rounds += 1
        self.requests += len(round_submissions)
        self.max_round_size = max(
            self.max_round_size, len(round_submissions)
        )

    async def _loop(self) -> None:
        assert self._event is not None
        while True:
            await self._event.wait()
            if self.window > 0:
                await asyncio.sleep(self.window)
            else:
                # One tick: every worker that is already runnable gets
                # to submit before the round closes.
                await asyncio.sleep(0)
            self._event.clear()
            pending, self._pending = self._pending, []
            if not pending:
                continue
            self._account(pending)
            # Runs synchronously on the loop — the whole point: nothing
            # else interleaves with the fused pool pass.
            self._dispatch(pending)

    def stats(self) -> dict:
        """Scheduler-side counters for diagnostics()."""
        return {
            "window": self.window,
            "rounds": self.rounds,
            "requests": self.requests,
            "max_round_size": self.max_round_size,
            "mean_round_size": (
                self.requests / self.rounds if self.rounds else None
            ),
            "pending": self.pending,
        }
