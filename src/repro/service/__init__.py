"""A streaming phase-classification service (stdlib + numpy only).

Hosts many concurrent :class:`~repro.core.online.PhaseTracker` sessions
behind a newline-delimited-JSON TCP protocol:

- :mod:`repro.service.protocol` — typed request/response/push messages
  and the wire encoding;
- :mod:`repro.service.session` — the session registry (LRU capping,
  idle-TTL expiry, tracker recycling);
- :mod:`repro.service.snapshot` — full tracker serialize/restore, so
  sessions survive restarts and migrate between hosts;
- :mod:`repro.service.server` — the asyncio TCP server with bounded
  ingest queues (backpressure), admission control, and graceful drain;
- :mod:`repro.service.client` — the synchronous SDK with typed error
  mapping and bounded retry for read-only requests.

Start a server from the CLI (``repro-phases serve --port 9137``), from
code (:func:`start_in_thread`), or embed :class:`PhaseService` in an
existing asyncio application.
"""

from repro.service.client import PhaseServiceClient
from repro.service.protocol import (
    ERROR_CODE_EXCEPTIONS,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    IntervalPush,
    Response,
)
from repro.service.server import PhaseService, ServiceHandle, start_in_thread
from repro.service.session import Session, SessionRegistry
from repro.service.snapshot import (
    SNAPSHOT_VERSION,
    check_schema_version,
    restore_tracker,
    snapshot_tracker,
)

__all__ = [
    "ERROR_CODE_EXCEPTIONS",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "SNAPSHOT_VERSION",
    "IntervalPush",
    "PhaseService",
    "PhaseServiceClient",
    "Response",
    "ServiceHandle",
    "Session",
    "SessionRegistry",
    "check_schema_version",
    "restore_tracker",
    "snapshot_tracker",
    "start_in_thread",
]
