"""Full serialize/restore of :class:`~repro.core.online.PhaseTracker`.

A snapshot is a JSON-safe document capturing *everything* a tracker
knows: the signature table (entries, per-entry thresholds, min
counters, CPI statistics, LRU clocks), the mid-interval accumulator
contents, adaptive-threshold state, both predictors' tables and
histories, and the interval bookkeeping. Restoring a snapshot and
continuing a branch stream yields byte-identical phase-ID and
prediction streams versus never having stopped — the property the test
suite enforces — so sessions survive service restarts and can migrate
between hosts.

The document is stamped with an explicit ``schema_version``
(:data:`SNAPSHOT_VERSION`); a mismatch raises the typed
:class:`~repro.errors.SnapshotSchemaError` from the envelope
validators, before any component state is touched. The document is
self-describing: the classifier configuration and the change
predictor's type/geometry travel inside it, so ``restore_tracker``
needs nothing but the document. The component state formats live with
the components themselves (``export_state`` / ``restore_state`` hooks
on the classifier, tables and predictors); this module adds the
envelope, validation, and tracker reconstruction.
"""

from __future__ import annotations

import json
from typing import Optional, TYPE_CHECKING

from repro.core.config import ClassifierConfig
from repro.core.online import PhaseTracker
from repro.errors import (
    ConfigurationError,
    ReproError,
    SnapshotError,
    SnapshotSchemaError,
)
from repro.prediction import CHANGE_PREDICTOR_KINDS

if TYPE_CHECKING:  # pragma: no cover - import-time typing only
    from repro.core.pool import TrackerPool
    from repro.telemetry import Telemetry

#: Snapshot document revision; bumped on incompatible state changes.
SNAPSHOT_VERSION = 1

__all__ = [
    "CHANGE_PREDICTOR_KINDS",
    "SNAPSHOT_VERSION",
    "check_schema_version",
    "dumps",
    "loads",
    "restore_tracker",
    "snapshot_tracker",
]


def snapshot_tracker(tracker) -> dict:
    """Export a tracker into a versioned, JSON-safe document.

    Accepts anything with the :class:`PhaseTracker` ``export_state``
    hook — including :class:`~repro.core.pool.PooledTracker` slots,
    whose exported state is byte-identical to the scalar tracker's.
    """
    document = {
        "schema_version": SNAPSHOT_VERSION,
        "tracker": tracker.export_state(),
    }
    return document


def check_schema_version(document: dict) -> int:
    """Validate a document's ``schema_version`` stamp.

    Accepts the pre-stamp key ``version`` as a legacy alias. Returns
    the version on success; raises :class:`SnapshotSchemaError` when
    the stamp is missing or differs from :data:`SNAPSHOT_VERSION`.
    """
    version = document.get("schema_version", document.get("version"))
    if version != SNAPSHOT_VERSION:
        raise SnapshotSchemaError(
            f"unsupported snapshot schema_version {version!r}; this "
            f"build reads version {SNAPSHOT_VERSION}"
        )
    return version


def restore_tracker(
    document: dict,
    telemetry: "Optional[Telemetry]" = None,
    pool: "Optional[TrackerPool]" = None,
) -> PhaseTracker:
    """Rebuild a tracker from a :func:`snapshot_tracker` document.

    The returned tracker continues exactly where the snapshotted one
    stopped (mid-interval accumulator contents included). Listeners
    are not part of a snapshot; ``telemetry`` attaches a hub to the
    restored tracker.

    When ``pool`` is given and no telemetry is requested, the state is
    adopted into a pool slot first — the restored tracker is then a
    :class:`~repro.core.pool.PooledTracker` riding the batched hot
    path. A pool that cannot host the snapshot (configuration
    mismatch) is a soft signal: the scalar path below is used instead.

    Raises :class:`~repro.errors.SnapshotError` on a malformed
    document and :class:`~repro.errors.SnapshotSchemaError` (a
    subclass) on a ``schema_version`` mismatch.
    """
    if not isinstance(document, dict):
        raise SnapshotError("snapshot must be a JSON object")
    check_schema_version(document)
    state = document.get("tracker")
    if not isinstance(state, dict):
        raise SnapshotError("snapshot lacks the 'tracker' state object")

    if pool is not None and telemetry is None:
        try:
            adopted = pool.try_adopt(state)
        except (KeyError, IndexError, TypeError, ValueError, ReproError) as error:
            raise SnapshotError(
                f"snapshot state is malformed: {error}"
            ) from None
        if adopted is not None:
            return adopted

    try:
        config = ClassifierConfig(**state["classifier"]["config"])
    except (KeyError, TypeError, ConfigurationError) as error:
        raise SnapshotError(
            f"snapshot classifier configuration is invalid: {error}"
        ) from None

    change_spec = state.get("change_predictor")
    if change_spec is None:
        change_predictor = None
    else:
        kind = change_spec.get("kind")
        predictor_class = CHANGE_PREDICTOR_KINDS.get(kind)
        if predictor_class is None:
            raise SnapshotError(
                f"unknown change-predictor kind {kind!r}; known: "
                f"{sorted(CHANGE_PREDICTOR_KINDS)}"
            )
        try:
            change_predictor = predictor_class(**change_spec["kwargs"])
        except (KeyError, TypeError, ConfigurationError) as error:
            raise SnapshotError(
                f"snapshot change-predictor spec is invalid: {error}"
            ) from None

    tracker = PhaseTracker(
        config,
        interval_instructions=int(state["interval_instructions"]),
        change_predictor=change_predictor,
        telemetry=telemetry,
    )
    try:
        tracker.restore_state(state)
    except (KeyError, IndexError, TypeError, ValueError, ReproError) as error:
        raise SnapshotError(f"snapshot state is malformed: {error}") from None
    return tracker


def dumps(document: dict) -> str:
    """Serialize a snapshot document to compact JSON text."""
    return json.dumps(document, separators=(",", ":"))


def loads(text: str) -> dict:
    """Parse snapshot JSON text, validating the envelope shape and the
    ``schema_version`` stamp (:class:`~repro.errors.SnapshotSchemaError`
    on mismatch)."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise SnapshotError(f"snapshot text is not valid JSON: {error}")
    if not isinstance(document, dict):
        raise SnapshotError("snapshot must be a JSON object")
    check_schema_version(document)
    return document
