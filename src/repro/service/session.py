"""Session registry: many named trackers behind one service.

A :class:`Session` owns one :class:`~repro.core.online.PhaseTracker`
plus activity bookkeeping; the :class:`SessionRegistry` maps names to
sessions with three protection mechanisms a long-lived service needs:

- **capacity cap** — at most ``max_sessions`` live trackers. When the
  cap is hit, opening another session either evicts the
  least-recently-active one (``evict_lru=True``, the default — the
  same policy the paper's signature table uses) or is refused with
  :class:`~repro.errors.ServiceOverloadedError` for deployments that
  prefer explicit admission control.
- **idle TTL** — :meth:`SessionRegistry.expire_idle` drops sessions
  untouched for ``idle_ttl`` seconds; the server sweeps periodically.
- **recycling** — closed/evicted trackers return to a free pool and are
  :meth:`~repro.core.online.PhaseTracker.reset` on reuse instead of
  reconstructed, keeping session churn off the allocation path.

Reclamation is observable and interceptable: before the LRU cap or the
idle TTL destroys a session, the optional ``on_evict`` pre-drop hook
runs (the durable tier uses it to checkpoint the session to disk), and
the eviction counters split into saved / lost / recycled so durability
loss shows up in ``stats()`` even with persistence disabled. A miss in
:meth:`get` or :meth:`close` consults the optional ``resolver`` hook,
which lets evicted-to-disk sessions hydrate back on demand; the
``name_reserved`` hook keeps their names taken while they are cold.

The registry is not thread-safe by itself; the asyncio server drives
it from one event loop, and the synchronous tests drive it from one
thread.
"""

from __future__ import annotations

import itertools
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.core.config import ClassifierConfig
from repro.core.online import PhaseTracker
from repro.core.pool import PooledTracker
from repro.errors import (
    ConfigurationError,
    PoolError,
    ServiceOverloadedError,
    SessionExistsError,
    SessionNotFoundError,
)
from repro.service.snapshot import restore_tracker
from repro.workloads.trace import DEFAULT_INTERVAL_INSTRUCTIONS

if TYPE_CHECKING:  # pragma: no cover - import-time typing only
    from repro.core.pool import TrackerPool
    from repro.telemetry import Telemetry


class Session:
    """One client-visible tracking session."""

    __slots__ = (
        "name", "tracker", "created_at", "last_active",
        "intervals_pushed", "branches_ingested", "recyclable",
        "predicted_next_phase", "prediction_confident",
    )

    def __init__(
        self, name: str, tracker: PhaseTracker, now: float,
        recyclable: bool = True,
    ) -> None:
        self.name = name
        self.tracker = tracker
        self.created_at = now
        self.last_active = now
        self.intervals_pushed = 0
        self.branches_ingested = 0
        # Restored trackers may carry a non-default predictor setup, so
        # they never enter the homogeneous free pool.
        self.recyclable = recyclable
        # The last outstanding next-phase prediction this session pushed
        # to its client; the server scores it against the next interval's
        # actual phase (service-level predictor accuracy, uniform across
        # scalar and pooled trackers).
        self.predicted_next_phase: Optional[int] = None
        self.prediction_confident = False

    def idle_seconds(self, now: float) -> float:
        return now - self.last_active


def build_config(overrides: Optional[dict]) -> ClassifierConfig:
    """A ClassifierConfig from wire-supplied field overrides.

    Shared with the persistence tier's journal replay, so a recovered
    session is configured exactly as its ``open`` request configured
    the original.
    """
    if not overrides:
        return ClassifierConfig.paper_default()
    try:
        return ClassifierConfig(**overrides)
    except TypeError as error:
        # Unknown field names reach the dataclass constructor as
        # unexpected kwargs; surface them as configuration errors.
        raise ConfigurationError(str(error)) from None


class SessionRegistry:
    """Named tracker sessions with LRU capping and idle-TTL expiry.

    Parameters
    ----------
    max_sessions:
        Live-session cap.
    idle_ttl:
        Seconds of inactivity after which :meth:`expire_idle` drops a
        session; ``None`` disables expiry.
    evict_lru:
        When full, evict the least-recently-active session instead of
        refusing the open.
    telemetry:
        Optional hub: a live-sessions gauge plus one event per session
        lifecycle transition (opened / closed / evicted / expired /
        hydrated / adopted).
    clock:
        Monotonic time source (overridable in tests).
    on_evict:
        Pre-drop hook ``(session, reason)`` run before the LRU cap
        (``reason="evicted"``) or the idle TTL (``reason="expired"``)
        destroys a session — the durable tier's evict-to-disk point. A
        hook that raises does not block reclamation; the drop is then
        counted as lost, not saved.
    resolver:
        Miss hook ``(name) -> Optional[Session]`` consulted by
        :meth:`get` and :meth:`close` before reporting
        :class:`SessionNotFoundError` — the hydrate-on-demand point.
    name_reserved:
        Predicate ``(name) -> bool`` marking names that are taken even
        though not live (evicted-to-disk sessions); :meth:`open`
        refuses them and auto-naming skips them.
    pool:
        Optional :class:`~repro.core.pool.TrackerPool`. Sessions whose
        configuration matches the pool's live on pool slots (the
        batched structure-of-arrays hot path) instead of owning scalar
        trackers; incompatible configurations and pool exhaustion fall
        back to scalar trackers transparently.
    """

    def __init__(
        self,
        max_sessions: int = 64,
        idle_ttl: Optional[float] = None,
        evict_lru: bool = True,
        telemetry: "Optional[Telemetry]" = None,
        clock: Callable[[], float] = time.monotonic,
        on_evict: "Optional[Callable[[Session, str], None]]" = None,
        resolver: "Optional[Callable[[str], Optional[Session]]]" = None,
        name_reserved: Optional[Callable[[str], bool]] = None,
        pool: "Optional[TrackerPool]" = None,
    ) -> None:
        if max_sessions <= 0:
            raise ConfigurationError(
                f"max_sessions must be positive, got {max_sessions}"
            )
        if idle_ttl is not None and idle_ttl <= 0:
            raise ConfigurationError(
                f"idle_ttl must be positive or None, got {idle_ttl}"
            )
        self.max_sessions = max_sessions
        self.idle_ttl = idle_ttl
        self.evict_lru = evict_lru
        self.clock = clock
        self.on_evict = on_evict
        self.resolver = resolver
        self.name_reserved = name_reserved
        self.pool = pool
        # Most recently active last; OrderedDict gives O(1) LRU updates.
        self._sessions: "OrderedDict[str, Session]" = OrderedDict()
        self._free_trackers: List[PhaseTracker] = []
        self._name_counter = itertools.count(1)
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.sessions_evicted = 0
        self.sessions_expired = 0
        # The reclamation split: every LRU eviction / TTL expiry lands
        # in exactly one bucket, so ``evicted + expired ==
        # saved + lost + recycled`` and durability loss is visible even
        # without a persistence tier attached.
        self.sessions_evicted_saved = 0
        self.sessions_evicted_lost = 0
        self.sessions_evicted_recycled = 0
        self.sessions_hydrated = 0
        self.sessions_adopted = 0
        self._telemetry = telemetry
        if telemetry is not None:
            self._g_sessions = telemetry.gauge(
                "repro_service_sessions",
                "Live tracker sessions in the registry",
            )

    # -- bookkeeping ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, name: str) -> bool:
        return name in self._sessions

    def names(self) -> List[str]:
        """Session names, least recently active first."""
        return list(self._sessions)

    def _emit(self, event: str, session: Session, **fields: object) -> None:
        if self._telemetry is not None:
            self._g_sessions.set(len(self._sessions))
            self._telemetry.emit(
                event,
                session=session.name,
                intervals=session.tracker.intervals_observed,
                **fields,
            )

    # -- lifecycle ------------------------------------------------------------

    def open(
        self,
        name: Optional[str] = None,
        config: Optional[dict] = None,
        interval_instructions: Optional[int] = None,
        snapshot: Optional[dict] = None,
    ) -> Session:
        """Create (or restore) a session.

        Raises :class:`SessionExistsError` for a duplicate name,
        :class:`~repro.errors.ConfigurationError` for bad config
        overrides, :class:`~repro.errors.SnapshotError` for a bad
        snapshot, and :class:`ServiceOverloadedError` when the registry
        is full and LRU eviction is disabled.
        """
        if name is None:
            name = self._generate_name()
        elif name in self._sessions:
            raise SessionExistsError(f"session {name!r} is already open")
        elif self.name_reserved is not None and self.name_reserved(name):
            raise SessionExistsError(
                f"session {name!r} is evicted to disk; it hydrates on "
                "use — close it first to reuse the name"
            )

        self._make_room()

        if snapshot is not None:
            tracker = restore_tracker(snapshot, pool=self.pool)
        else:
            tracker = self._checkout_tracker(
                build_config(config),
                interval_instructions or DEFAULT_INTERVAL_INSTRUCTIONS,
            )
        session = Session(
            name, tracker, self.clock(), recyclable=snapshot is None
        )
        self._sessions[name] = session
        self.sessions_opened += 1
        self._emit(
            "session_opened", session, restored=snapshot is not None
        )
        return session

    def get(self, name: str) -> Session:
        """Look up a session, refreshing its activity/LRU position.

        A miss consults the ``resolver`` hook first, so an
        evicted-to-disk session hydrates back transparently (counted
        and emitted as ``session_hydrated``).
        """
        session = self._sessions.get(name)
        if session is None:
            session = self._hydrate(name)
        if session is None:
            raise SessionNotFoundError(
                f"session {name!r} does not exist (never opened, closed, "
                "or reclaimed by the LRU cap / idle TTL)"
            )
        session.last_active = self.clock()
        self._sessions.move_to_end(name)
        return session

    def adopt(self, session: Session) -> Session:
        """Install an externally constructed session (crash recovery).

        Takes the normal admission path — idle sweep, then LRU
        eviction or :class:`ServiceOverloadedError` when full — but
        counts separately from :meth:`open`, since nothing new was
        created.
        """
        if session.name in self._sessions:
            raise SessionExistsError(
                f"session {session.name!r} is already open"
            )
        self._make_room()
        self._sessions[session.name] = session
        self.sessions_adopted += 1
        self._emit("session_adopted", session)
        return session

    def close(self, name: str) -> Session:
        """Close a session, recycling its tracker into the free pool.

        Closing an evicted-to-disk session works too: the ``resolver``
        hook materializes it just long enough to account for it.
        """
        session = self._sessions.pop(name, None)
        if session is None and self.resolver is not None:
            session = self.resolver(name)
        if session is None:
            raise SessionNotFoundError(f"session {name!r} does not exist")
        self.sessions_closed += 1
        # Emit while the tracker is still live: recycling releases a
        # pooled tracker's slot, after which its stats are unreadable.
        self._emit("session_closed", session)
        self._recycle(session)
        return session

    def close_all(self) -> int:
        """Close every session (service shutdown); returns the count."""
        count = 0
        for name in list(self._sessions):
            self.close(name)
            count += 1
        return count

    def expire_idle(self) -> List[str]:
        """Drop sessions idle past the TTL; returns the expired names."""
        if self.idle_ttl is None or not self._sessions:
            return []
        now = self.clock()
        expired = [
            name
            for name, session in self._sessions.items()
            if session.idle_seconds(now) > self.idle_ttl
        ]
        for name in expired:
            session = self._sessions.pop(name)
            self.sessions_expired += 1
            saved = self._pre_drop(session, "expired")
            self._emit(
                "session_expired", session, saved=saved,
                idle_seconds=round(session.idle_seconds(now), 3),
            )
            self._recycle(session)
        return expired

    # -- internals ------------------------------------------------------------

    def _generate_name(self) -> str:
        while True:
            name = f"session-{next(self._name_counter)}"
            if name in self._sessions:
                continue
            if self.name_reserved is not None and self.name_reserved(name):
                continue
            return name

    def _make_room(self) -> None:
        """Idle-sweep, then free one slot (evict or refuse) when full."""
        self.expire_idle()
        if len(self._sessions) >= self.max_sessions:
            if not self.evict_lru:
                raise ServiceOverloadedError(
                    f"session table is full ({self.max_sessions}); close "
                    "a session or retry later"
                )
            self._evict_lru()

    def _evict_lru(self) -> None:
        name, session = self._sessions.popitem(last=False)
        self.sessions_evicted += 1
        saved = self._pre_drop(session, "evicted")
        self._emit("session_evicted", session, saved=saved)
        self._recycle(session)

    def _pre_drop(self, session: Session, reason: str) -> bool:
        """Run the ``on_evict`` hook and bucket the drop as saved /
        lost / recycled; returns whether state was saved."""
        saved = False
        if self.on_evict is not None:
            try:
                self.on_evict(session, reason)
                saved = True
            except Exception as error:
                if self._telemetry is not None:
                    self._telemetry.emit(
                        "session_evict_hook_failed",
                        session=session.name, reason=reason,
                        error=f"{type(error).__name__}: {error}",
                    )
        if saved:
            self.sessions_evicted_saved += 1
        elif (
            session.branches_ingested > 0
            or session.tracker.intervals_observed > 0
        ):
            # Observed state destroyed with nowhere to go: this is the
            # durability loss the counter split exists to expose.
            self.sessions_evicted_lost += 1
        else:
            self.sessions_evicted_recycled += 1
        return saved

    def _hydrate(self, name: str) -> Optional[Session]:
        """Ask the resolver for an evicted-to-disk session and
        re-install it under the normal admission path."""
        if self.resolver is None:
            return None
        session = self.resolver(name)
        if session is None:
            return None
        try:
            self._make_room()
        except Exception:
            # Resolving consumed the durable tier's cold copy; with the
            # table full and eviction disabled, hand the session
            # straight back to disk before surfacing the refusal, or
            # its state (and name reservation) would be silently lost.
            if self.on_evict is not None:
                try:
                    self.on_evict(session, "hydrate_refused")
                except Exception as error:
                    if self._telemetry is not None:
                        self._telemetry.emit(
                            "session_evict_hook_failed",
                            session=session.name, reason="hydrate_refused",
                            error=f"{type(error).__name__}: {error}",
                        )
            raise
        self._sessions[name] = session
        self.sessions_hydrated += 1
        self._emit("session_hydrated", session)
        return session

    def _checkout_tracker(
        self, config: ClassifierConfig, interval_instructions: int
    ) -> PhaseTracker:
        """Claim a pool slot when the configuration matches; otherwise
        reuse a freed scalar tracker of the right shape, else build."""
        if self.pool is not None and self.pool.compatible(config):
            try:
                return self.pool.acquire(
                    interval_instructions=interval_instructions
                )
            except PoolError:
                # Full pool with growth disabled: soft signal, the
                # scalar path below carries the session instead.
                pass
        for index, tracker in enumerate(self._free_trackers):
            if tracker.classifier.config == config:
                del self._free_trackers[index]
                tracker.reset()
                tracker.interval_instructions = interval_instructions
                return tracker
        return PhaseTracker(
            config, interval_instructions=interval_instructions
        )

    def _recycle(self, session: Session) -> None:
        tracker = session.tracker
        if isinstance(tracker, PooledTracker):
            # Pool slots go back to the pool — never into the scalar
            # free list (their state lives in the pool's arrays).
            try:
                tracker.release()
            except PoolError:  # pragma: no cover - already released
                pass
            return
        # Cap the pool at the session cap; beyond that, drop trackers.
        if session.recyclable and (
            len(self._free_trackers) < self.max_sessions
        ):
            self._free_trackers.append(session.tracker)

    def pool_slot(self, session: Session) -> Optional[int]:
        """The pool slot backing ``session``, or ``None``.

        ``None`` means the scalar fallback path owns the session: no
        pool, a foreign-config scalar tracker, or a stale handle (the
        slot was released under the facade, e.g. by a mid-round
        eviction). The ingest coalescer uses this to decide which
        sessions join the fused structure-of-arrays pass.
        """
        tracker = session.tracker
        if self.pool is None or not isinstance(tracker, PooledTracker):
            return None
        if tracker.pool is not self.pool:
            return None
        try:
            tracker._check()
        except PoolError:
            return None
        return tracker.slot

    # -- inspection -----------------------------------------------------------

    def sessions(self) -> List[Session]:
        """Live sessions, least recently active first."""
        return list(self._sessions.values())

    def stats(self) -> Dict[str, int]:
        """Lifecycle counters plus the live-session count."""
        return {
            "live": len(self._sessions),
            "opened": self.sessions_opened,
            "closed": self.sessions_closed,
            "evicted": self.sessions_evicted,
            "expired": self.sessions_expired,
            "evicted_saved": self.sessions_evicted_saved,
            "evicted_lost": self.sessions_evicted_lost,
            "evicted_recycled": self.sessions_evicted_recycled,
            "hydrated": self.sessions_hydrated,
            "adopted": self.sessions_adopted,
        }
