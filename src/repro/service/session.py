"""Session registry: many named trackers behind one service.

A :class:`Session` owns one :class:`~repro.core.online.PhaseTracker`
plus activity bookkeeping; the :class:`SessionRegistry` maps names to
sessions with three protection mechanisms a long-lived service needs:

- **capacity cap** — at most ``max_sessions`` live trackers. When the
  cap is hit, opening another session either evicts the
  least-recently-active one (``evict_lru=True``, the default — the
  same policy the paper's signature table uses) or is refused with
  :class:`~repro.errors.ServiceOverloadedError` for deployments that
  prefer explicit admission control.
- **idle TTL** — :meth:`SessionRegistry.expire_idle` drops sessions
  untouched for ``idle_ttl`` seconds; the server sweeps periodically.
- **recycling** — closed/evicted trackers return to a free pool and are
  :meth:`~repro.core.online.PhaseTracker.reset` on reuse instead of
  reconstructed, keeping session churn off the allocation path.

The registry is not thread-safe by itself; the asyncio server drives
it from one event loop, and the synchronous tests drive it from one
thread.
"""

from __future__ import annotations

import itertools
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.core.config import ClassifierConfig
from repro.core.online import PhaseTracker
from repro.errors import (
    ConfigurationError,
    ServiceOverloadedError,
    SessionExistsError,
    SessionNotFoundError,
)
from repro.service.snapshot import restore_tracker
from repro.workloads.trace import DEFAULT_INTERVAL_INSTRUCTIONS

if TYPE_CHECKING:  # pragma: no cover - import-time typing only
    from repro.telemetry import Telemetry


class Session:
    """One client-visible tracking session."""

    __slots__ = (
        "name", "tracker", "created_at", "last_active",
        "intervals_pushed", "branches_ingested", "recyclable",
    )

    def __init__(
        self, name: str, tracker: PhaseTracker, now: float,
        recyclable: bool = True,
    ) -> None:
        self.name = name
        self.tracker = tracker
        self.created_at = now
        self.last_active = now
        self.intervals_pushed = 0
        self.branches_ingested = 0
        # Restored trackers may carry a non-default predictor setup, so
        # they never enter the homogeneous free pool.
        self.recyclable = recyclable

    def idle_seconds(self, now: float) -> float:
        return now - self.last_active


def _build_config(overrides: Optional[dict]) -> ClassifierConfig:
    """A ClassifierConfig from wire-supplied field overrides."""
    if not overrides:
        return ClassifierConfig.paper_default()
    try:
        return ClassifierConfig(**overrides)
    except TypeError as error:
        # Unknown field names reach the dataclass constructor as
        # unexpected kwargs; surface them as configuration errors.
        raise ConfigurationError(str(error)) from None


class SessionRegistry:
    """Named tracker sessions with LRU capping and idle-TTL expiry.

    Parameters
    ----------
    max_sessions:
        Live-session cap.
    idle_ttl:
        Seconds of inactivity after which :meth:`expire_idle` drops a
        session; ``None`` disables expiry.
    evict_lru:
        When full, evict the least-recently-active session instead of
        refusing the open.
    telemetry:
        Optional hub: a live-sessions gauge plus one event per session
        lifecycle transition (opened / closed / evicted / expired).
    clock:
        Monotonic time source (overridable in tests).
    """

    def __init__(
        self,
        max_sessions: int = 64,
        idle_ttl: Optional[float] = None,
        evict_lru: bool = True,
        telemetry: "Optional[Telemetry]" = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_sessions <= 0:
            raise ConfigurationError(
                f"max_sessions must be positive, got {max_sessions}"
            )
        if idle_ttl is not None and idle_ttl <= 0:
            raise ConfigurationError(
                f"idle_ttl must be positive or None, got {idle_ttl}"
            )
        self.max_sessions = max_sessions
        self.idle_ttl = idle_ttl
        self.evict_lru = evict_lru
        self.clock = clock
        # Most recently active last; OrderedDict gives O(1) LRU updates.
        self._sessions: "OrderedDict[str, Session]" = OrderedDict()
        self._free_trackers: List[PhaseTracker] = []
        self._name_counter = itertools.count(1)
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.sessions_evicted = 0
        self.sessions_expired = 0
        self._telemetry = telemetry
        if telemetry is not None:
            self._g_sessions = telemetry.gauge(
                "repro_service_sessions",
                "Live tracker sessions in the registry",
            )

    # -- bookkeeping ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, name: str) -> bool:
        return name in self._sessions

    def names(self) -> List[str]:
        """Session names, least recently active first."""
        return list(self._sessions)

    def _emit(self, event: str, session: Session, **fields: object) -> None:
        if self._telemetry is not None:
            self._g_sessions.set(len(self._sessions))
            self._telemetry.emit(
                event,
                session=session.name,
                intervals=session.tracker.intervals_observed,
                **fields,
            )

    # -- lifecycle ------------------------------------------------------------

    def open(
        self,
        name: Optional[str] = None,
        config: Optional[dict] = None,
        interval_instructions: Optional[int] = None,
        snapshot: Optional[dict] = None,
    ) -> Session:
        """Create (or restore) a session.

        Raises :class:`SessionExistsError` for a duplicate name,
        :class:`~repro.errors.ConfigurationError` for bad config
        overrides, :class:`~repro.errors.SnapshotError` for a bad
        snapshot, and :class:`ServiceOverloadedError` when the registry
        is full and LRU eviction is disabled.
        """
        if name is None:
            name = self._generate_name()
        elif name in self._sessions:
            raise SessionExistsError(f"session {name!r} is already open")

        self.expire_idle()
        if len(self._sessions) >= self.max_sessions:
            if not self.evict_lru:
                raise ServiceOverloadedError(
                    f"session table is full ({self.max_sessions}); close "
                    "a session or retry later"
                )
            self._evict_lru()

        if snapshot is not None:
            tracker = restore_tracker(snapshot)
        else:
            tracker = self._checkout_tracker(
                _build_config(config),
                interval_instructions or DEFAULT_INTERVAL_INSTRUCTIONS,
            )
        session = Session(
            name, tracker, self.clock(), recyclable=snapshot is None
        )
        self._sessions[name] = session
        self.sessions_opened += 1
        self._emit(
            "session_opened", session, restored=snapshot is not None
        )
        return session

    def get(self, name: str) -> Session:
        """Look up a session, refreshing its activity/LRU position."""
        session = self._sessions.get(name)
        if session is None:
            raise SessionNotFoundError(
                f"session {name!r} does not exist (never opened, closed, "
                "or reclaimed by the LRU cap / idle TTL)"
            )
        session.last_active = self.clock()
        self._sessions.move_to_end(name)
        return session

    def close(self, name: str) -> Session:
        """Close a session, recycling its tracker into the free pool."""
        session = self._sessions.pop(name, None)
        if session is None:
            raise SessionNotFoundError(f"session {name!r} does not exist")
        self.sessions_closed += 1
        self._recycle(session)
        self._emit("session_closed", session)
        return session

    def close_all(self) -> int:
        """Close every session (service shutdown); returns the count."""
        count = 0
        for name in list(self._sessions):
            self.close(name)
            count += 1
        return count

    def expire_idle(self) -> List[str]:
        """Drop sessions idle past the TTL; returns the expired names."""
        if self.idle_ttl is None or not self._sessions:
            return []
        now = self.clock()
        expired = [
            name
            for name, session in self._sessions.items()
            if session.idle_seconds(now) > self.idle_ttl
        ]
        for name in expired:
            session = self._sessions.pop(name)
            self.sessions_expired += 1
            self._recycle(session)
            self._emit(
                "session_expired", session,
                idle_seconds=round(session.idle_seconds(now), 3),
            )
        return expired

    # -- internals ------------------------------------------------------------

    def _generate_name(self) -> str:
        while True:
            name = f"session-{next(self._name_counter)}"
            if name not in self._sessions:
                return name

    def _evict_lru(self) -> None:
        name, session = self._sessions.popitem(last=False)
        self.sessions_evicted += 1
        self._recycle(session)
        self._emit("session_evicted", session)

    def _checkout_tracker(
        self, config: ClassifierConfig, interval_instructions: int
    ) -> PhaseTracker:
        """Reuse a pooled tracker when its construction-time shape
        matches; otherwise build a fresh one."""
        for index, tracker in enumerate(self._free_trackers):
            if tracker.classifier.config == config:
                del self._free_trackers[index]
                tracker.reset()
                tracker.interval_instructions = interval_instructions
                return tracker
        return PhaseTracker(
            config, interval_instructions=interval_instructions
        )

    def _recycle(self, session: Session) -> None:
        # Cap the pool at the session cap; beyond that, drop trackers.
        if session.recyclable and (
            len(self._free_trackers) < self.max_sessions
        ):
            self._free_trackers.append(session.tracker)

    # -- inspection -----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Lifecycle counters plus the live-session count."""
        return {
            "live": len(self._sessions),
            "opened": self.sessions_opened,
            "closed": self.sessions_closed,
            "evicted": self.sessions_evicted,
            "expired": self.sessions_expired,
        }
