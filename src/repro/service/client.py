"""Synchronous client SDK for the phase-classification service.

:class:`PhaseServiceClient` speaks the NDJSON protocol over one TCP
connection. Interval pushes that arrive while waiting for a response
are buffered and returned by :meth:`observe` (or drained explicitly via
:meth:`drain_reports`), so callers see a simple request/response API
while the server streams boundaries as they happen.

Failure semantics — the part worth reading twice:

- **Application errors** (the server answered, refusing the request)
  are raised as the typed exceptions of :mod:`repro.errors` —
  :class:`~repro.errors.SessionNotFoundError`,
  :class:`~repro.errors.ServiceOverloadedError`, and friends — exactly
  as mapped by the wire error code. The connection stays usable.
- **Transport failures** (connect refused, socket closed mid-request,
  timeout) raise :class:`~repro.errors.ServiceTransportError`: the
  request's fate is unknown. The client reconnects lazily on the next
  call. Requests that are *safe to repeat* (ping, stats, predict,
  snapshot — they mutate nothing) are retried automatically with
  exponential backoff; mutating requests (open, observe, close) are
  never retried, because replaying an observe would double-classify
  its intervals.
- **Connection resets** (``ECONNRESET``/``EPIPE``/EOF mid-read) on a
  *read-only* request additionally get one transparent, immediate
  reconnect attempt on top of the configured ``retries`` — a cluster
  dispatcher failing over or a supervised worker restarting looks like
  exactly one reset, and a well-behaved client should ride through it
  without surfacing :class:`ServiceTransportError`. Timeouts do NOT
  qualify: a slow server is not a failover.
"""

from __future__ import annotations

import errno
import socket
import time
from typing import List, Optional

from repro.errors import ConfigurationError, ServiceTransportError
from repro.service import protocol

#: ``errno`` values that mean the peer went away abruptly — the
#: signature of a server restart or failover, as opposed to a timeout
#: (slow server, request possibly still executing).
_RESET_ERRNOS = frozenset(
    {errno.ECONNRESET, errno.EPIPE, errno.ECONNABORTED, errno.ESHUTDOWN}
)


def _transport_error(message: str, *, reset: bool) -> ServiceTransportError:
    error = ServiceTransportError(message)
    error.connection_reset = reset
    return error


class PhaseServiceClient:
    """A blocking NDJSON client for :class:`~repro.service.server.PhaseService`.

    Parameters
    ----------
    host, port:
        Server address.
    timeout:
        Per-socket-operation timeout in seconds (connect, read, write).
    retries:
        How many times a *read-only* request is retried after a
        transport failure before :class:`ServiceTransportError`
        propagates. Mutating requests never retry.
    backoff:
        Initial retry delay in seconds; doubles per attempt.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 10.0,
        retries: int = 2,
        backoff: float = 0.05,
    ) -> None:
        if timeout <= 0:
            raise ConfigurationError(
                f"timeout must be positive, got {timeout}"
            )
        if retries < 0:
            raise ConfigurationError(
                f"retries must be non-negative, got {retries}"
            )
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._next_id = 0
        self._pushes: List[protocol.IntervalPush] = []

    # -- connection management -------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def connect(self) -> "PhaseServiceClient":
        """Open the connection now (otherwise it opens lazily)."""
        if self._sock is None:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            except OSError as error:
                # A refused/unreachable connect is not a *reset*: no
                # request was ever in flight, so it earns no bonus.
                raise _transport_error(
                    f"cannot connect to {self.host}:{self.port}: "
                    f"{error}",
                    reset=False,
                ) from None
            self._sock = sock
            self._reader = sock.makefile("rb")
        return self

    def close(self) -> None:
        """Close the connection; buffered interval reports survive."""
        reader, self._reader = self._reader, None
        sock, self._sock = self._sock, None
        for closable in (reader, sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:
                    pass

    def _disconnect(self) -> None:
        self.close()

    def __enter__(self) -> "PhaseServiceClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the request engine ----------------------------------------------------

    def _request_once(self, payload: dict) -> protocol.Response:
        self.connect()
        assert self._sock is not None and self._reader is not None
        data = protocol.encode(payload)
        try:
            self._sock.sendall(data)
            while True:
                line = self._reader.readline()
                if not line:
                    raise _transport_error(
                        "connection closed while awaiting a response "
                        "(the request's fate is unknown)",
                        reset=True,
                    )
                message = protocol.parse_server_message(line)
                if isinstance(message, protocol.IntervalPush):
                    self._pushes.append(message)
                    continue
                if message.id != payload["id"]:
                    # A response to a request this client never sent —
                    # the stream is out of sync; fail the transport.
                    raise ServiceTransportError(
                        f"response id {message.id} does not match "
                        f"request id {payload['id']}"
                    )
                return message
        except ServiceTransportError:
            self._disconnect()
            raise
        except (OSError, ValueError) as error:
            # socket.timeout is an OSError; ValueError covers reads
            # from a half-closed file object. Only abrupt peer
            # disconnects count as resets — a timeout leaves the
            # request possibly still executing server-side.
            reset = (
                isinstance(error, (ConnectionResetError, BrokenPipeError))
                or getattr(error, "errno", None) in _RESET_ERRNOS
            )
            self._disconnect()
            raise _transport_error(
                f"transport failure talking to {self.host}:{self.port}: "
                f"{error}",
                reset=reset,
            ) from None

    def _request(self, payload: dict, retryable: bool = False) -> dict:
        """Send one request; returns the ``result`` object.

        Application refusals raise their typed exception (see
        :meth:`~repro.service.protocol.Response.raise_for_error`).
        Transport failures raise :class:`ServiceTransportError`, after
        ``self.retries`` reconnect-and-retry attempts when ``retryable``.
        """
        attempts = self.retries + 1 if retryable else 1
        delay = self.backoff
        last_error: Optional[ServiceTransportError] = None
        reset_bonus_spent = False
        attempt = 0
        while attempt < attempts:
            if attempt:
                time.sleep(delay)
                delay *= 2
            attempt += 1
            try:
                response = self._request_once(payload)
            except ServiceTransportError as error:
                last_error = error
                if (
                    retryable
                    and attempt >= attempts
                    and not reset_bonus_spent
                    and getattr(error, "connection_reset", False)
                ):
                    # One transparent, immediate reconnect beyond the
                    # configured retries: a dispatcher failover or a
                    # supervised worker restart presents as exactly one
                    # reset, and read-only ops are safe to repeat. The
                    # bonus is spent whether or not it succeeds, so a
                    # dead server still fails after retries+1 tries.
                    reset_bonus_spent = True
                    attempts += 1
                    delay = max(delay, self.backoff)
                continue
            response.raise_for_error()
            return response.result
        assert last_error is not None
        raise last_error

    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    # -- operations ------------------------------------------------------------

    def ping(self) -> dict:
        """Liveness probe; returns the protocol version and drain flag."""
        return self._request(
            {"op": "ping", "id": self._new_id()}, retryable=True
        )

    def stats(self) -> dict:
        """Service statistics: sessions, requests, connections."""
        return self._request(
            {"op": "stats", "id": self._new_id()}, retryable=True
        )

    def open_session(
        self,
        session: Optional[str] = None,
        config: Optional[dict] = None,
        interval_instructions: Optional[int] = None,
        snapshot: Optional[dict] = None,
    ) -> str:
        """Open (or restore, with ``snapshot``) a session; returns its
        name — server-assigned when ``session`` is omitted."""
        request = protocol.OpenRequest(
            id=self._new_id(),
            session=session,
            config=config,
            interval_instructions=interval_instructions,
            snapshot=snapshot,
        )
        result = self._request(protocol.request_payload(request))
        return result["session"]

    def close_session(self, session: str) -> dict:
        """Close a session; returns its final interval/branch totals."""
        request = protocol.CloseRequest(id=self._new_id(), session=session)
        return self._request(protocol.request_payload(request))

    def observe(
        self,
        session: str,
        pcs: List[int],
        counts: List[int],
        cpi: float = 1.0,
    ) -> List[dict]:
        """Ingest a batch of (pc, instructions) pairs; returns the
        interval reports (``TrackerReport.to_dict()`` payloads) for
        every boundary the batch crossed, plus any reports buffered
        from earlier requests.

        Never retried on transport failure: the server may or may not
        have ingested the batch, and replaying it would double-count.
        """
        request = protocol.ObserveRequest(
            id=self._new_id(),
            session=session,
            pcs=list(pcs),
            counts=list(counts),
            cpi=cpi,
        )
        self._request(protocol.request_payload(request))
        return self.drain_reports(session)

    def predict(self, session: str) -> dict:
        """Current phase plus pending next-phase/length predictions."""
        request = protocol.PredictRequest(id=self._new_id(), session=session)
        return self._request(
            protocol.request_payload(request), retryable=True
        )

    def snapshot(self, session: str) -> dict:
        """The session's full tracker state as a snapshot document."""
        request = protocol.SnapshotRequest(
            id=self._new_id(), session=session
        )
        result = self._request(
            protocol.request_payload(request), retryable=True
        )
        return result["snapshot"]

    #: ``cluster`` actions that only read topology/diagnostics state —
    #: safe to repeat after a transport failure. Mutating actions
    #: (migrate, drain-worker, rebalance, grow) are never retried.
    _READONLY_CLUSTER_ACTIONS = frozenset({"status", "diagnostics"})

    def cluster(self, action: str, **params: object) -> dict:
        """Run a cluster control-plane action against a dispatcher
        (``status``, ``migrate``, ``drain-worker``, ``rebalance``,
        ``grow``) or the ``diagnostics`` action against any service.

        Against a plain single-process service, anything other than
        ``diagnostics`` raises :class:`~repro.errors.ClusterError`.
        """
        request = protocol.ClusterRequest(
            id=self._new_id(), action=action, params=dict(params)
        )
        return self._request(
            protocol.request_payload(request),
            retryable=action in self._READONLY_CLUSTER_ACTIONS,
        )

    def drain_reports(self, session: Optional[str] = None) -> List[dict]:
        """Pop buffered interval reports (for ``session``, or all)."""
        if session is None:
            drained = [push.report for push in self._pushes]
            self._pushes = []
            return drained
        drained = [
            push.report
            for push in self._pushes
            if push.session == session
        ]
        self._pushes = [
            push for push in self._pushes if push.session != session
        ]
        return drained
