"""A minimal asyncio HTTP/1.1 server for the operations gateway.

The same dependency posture as the NDJSON service: stdlib only, one
``asyncio.start_server`` per listener, strict input caps so a confused
or hostile client cannot balloon memory. Only what the gateway needs is
implemented — ``GET``/``POST``/``DELETE``, ``Content-Length`` bodies,
keep-alive with an idle timeout, and chunkless streaming responses
(``Connection: close``) for Server-Sent Events.

Deliberately *not* implemented: chunked request bodies, pipelining
beyond sequential keep-alive, TLS, compression. A real deployment puts
this behind a reverse proxy; the gateway's job is to be a correct,
boring origin.
"""

from __future__ import annotations

import asyncio
import json
from typing import (
    AsyncIterator, Awaitable, Callable, Dict, List, Optional, Tuple,
)
from urllib.parse import parse_qs, unquote, urlsplit

#: Input caps. The request line and each header line share the line
#: cap; bodies are bounded separately (observe batches dominate).
MAX_REQUEST_LINE_BYTES = 8 * 1024
MAX_HEADER_LINES = 64
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Seconds a kept-alive connection may sit idle between requests.
KEEPALIVE_TIMEOUT = 30.0

_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

_ALLOWED_METHODS = ("GET", "POST", "DELETE", "HEAD")


class HttpError(Exception):
    """A request that must be answered with an HTTP error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class HttpRequest:
    """One parsed request: method, split target, headers, raw body."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, List[str]],
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def query_first(self, name: str) -> Optional[str]:
        values = self.query.get(name)
        return values[0] if values else None

    def json(self) -> object:
        """The body decoded as JSON; raises :class:`HttpError` (400)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"invalid JSON body: {error}") from None


class HttpResponse:
    """A buffered response. Use the classmethods for common shapes."""

    __slots__ = ("status", "headers", "body")

    def __init__(
        self,
        status: int = 200,
        body: bytes = b"",
        content_type: str = "text/plain; charset=utf-8",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.status = status
        self.headers = dict(headers or {})
        self.headers.setdefault("Content-Type", content_type)
        self.body = body

    @classmethod
    def json(cls, payload: object, status: int = 200) -> "HttpResponse":
        body = (json.dumps(payload, default=float) + "\n").encode("utf-8")
        return cls(status, body, "application/json; charset=utf-8")

    @classmethod
    def text(cls, content: str, status: int = 200,
             content_type: str = "text/plain; charset=utf-8") -> "HttpResponse":
        return cls(status, content.encode("utf-8"), content_type)

    @classmethod
    def html(cls, content: str, status: int = 200) -> "HttpResponse":
        return cls(status, content.encode("utf-8"),
                   "text/html; charset=utf-8")

    @classmethod
    def error(cls, status: int, message: str,
              code: Optional[str] = None) -> "HttpResponse":
        payload: Dict[str, object] = {"error": {"message": message}}
        if code is not None:
            payload["error"]["code"] = code  # type: ignore[index]
        return cls.json(payload, status=status)


class StreamingResponse:
    """A response whose body is produced incrementally (SSE).

    The connection is always closed afterwards (``Connection: close``) —
    an event stream has no defined end for keep-alive to resume from.
    """

    __slots__ = ("status", "headers", "chunks")

    def __init__(
        self,
        chunks: AsyncIterator[bytes],
        status: int = 200,
        content_type: str = "text/event-stream",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.status = status
        self.headers = dict(headers or {})
        self.headers.setdefault("Content-Type", content_type)
        self.headers.setdefault("Cache-Control", "no-cache")
        self.chunks = chunks


Handler = Callable[[HttpRequest], "Awaitable[object]"]


def _status_line(status: int) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    return f"HTTP/1.1 {status} {reason}\r\n".encode("ascii")


def _render_head(
    status: int, headers: Dict[str, str], close: bool,
    content_length: Optional[int],
) -> bytes:
    lines = [_status_line(status)]
    for name, value in headers.items():
        lines.append(f"{name}: {value}\r\n".encode("latin-1"))
    if content_length is not None:
        lines.append(f"Content-Length: {content_length}\r\n".encode("ascii"))
    lines.append(
        b"Connection: close\r\n" if close else b"Connection: keep-alive\r\n"
    )
    lines.append(b"\r\n")
    return b"".join(lines)


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[HttpRequest]:
    """Parse one request off the stream; ``None`` on a clean EOF before
    any bytes. Raises :class:`HttpError` on malformed or oversized
    input and ``asyncio.TimeoutError`` on keep-alive idle expiry."""
    try:
        line = await asyncio.wait_for(
            reader.readline(), KEEPALIVE_TIMEOUT
        )
    except (asyncio.LimitOverrunError, ValueError):
        raise HttpError(400, "request line too long") from None
    if not line:
        return None
    if len(line) > MAX_REQUEST_LINE_BYTES:
        raise HttpError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {line[:80]!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol version {version!r}")
    if method not in _ALLOWED_METHODS:
        raise HttpError(501, f"method {method} not implemented")

    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADER_LINES + 1):
        try:
            raw = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise HttpError(400, "header line too long") from None
        if raw in (b"\r\n", b"\n", b""):
            break
        if len(raw) > MAX_REQUEST_LINE_BYTES:
            raise HttpError(400, "header line too long")
        if len(headers) >= MAX_HEADER_LINES:
            raise HttpError(400, "too many header lines")
        try:
            name, _, value = raw.decode("latin-1").partition(":")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 total
            raise HttpError(400, "undecodable header") from None
        if not _:
            raise HttpError(400, f"malformed header line: {raw[:80]!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(
                413, f"body exceeds the {MAX_BODY_BYTES}-byte limit"
            )
        body = await reader.readexactly(length)
    elif headers.get("transfer-encoding"):
        raise HttpError(501, "chunked request bodies are not supported")

    split = urlsplit(target)
    return HttpRequest(
        method=method,
        path=unquote(split.path) or "/",
        query=parse_qs(split.query),
        headers=headers,
        body=body,
    )


class HttpServer:
    """Serve ``handler`` over HTTP/1.1 on one asyncio listener.

    ``handler`` receives an :class:`HttpRequest` and returns either an
    :class:`HttpResponse` or a :class:`StreamingResponse`; exceptions
    other than :class:`HttpError` become opaque 500s.
    """

    def __init__(
        self,
        handler: Handler,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Dict[int, asyncio.StreamWriter] = {}
        self._tasks: "set" = set()

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("HTTP server is already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_BODY_BYTES,
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def shutdown(self) -> None:
        """Stop listening and close every open connection (SSE streams
        end mid-flight — subscribers reconnect, they do not drain)."""
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        await server.wait_closed()
        for writer in list(self._connections.values()):
            try:
                writer.close()
            except Exception:
                pass
        self._connections.clear()
        tasks = list(self._tasks)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._tasks.clear()

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._connections[id(writer)] = writer
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        try:
            while True:
                close = True
                try:
                    request = await _read_request(reader)
                except asyncio.TimeoutError:
                    break
                except asyncio.IncompleteReadError:
                    break
                except HttpError as error:
                    response = HttpResponse.error(
                        error.status, error.message
                    )
                    writer.write(_render_head(
                        response.status, response.headers, True,
                        len(response.body),
                    ))
                    writer.write(response.body)
                    await writer.drain()
                    break
                if request is None:
                    break  # clean EOF between requests

                keep_alive = (
                    request.headers.get("connection", "").lower()
                    != "close"
                )
                try:
                    result = await self.handler(request)
                except HttpError as error:
                    result = HttpResponse.error(error.status, error.message)
                except Exception as error:  # noqa: BLE001 - boundary
                    result = HttpResponse.error(
                        500, f"{type(error).__name__}: {error}"
                    )

                try:
                    if isinstance(result, StreamingResponse):
                        await self._write_stream(
                            reader, writer, request, result
                        )
                        break  # streams always close the connection
                    assert isinstance(result, HttpResponse), result
                    close = not keep_alive
                    writer.write(_render_head(
                        result.status, result.headers, close,
                        len(result.body),
                    ))
                    if request.method != "HEAD":
                        writer.write(result.body)
                    await writer.drain()
                except (ConnectionError, RuntimeError):
                    break
                if close:
                    break
        except asyncio.CancelledError:  # pragma: no cover - teardown
            pass
        finally:
            self._connections.pop(id(writer), None)
            if task is not None:
                self._tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    @staticmethod
    async def _write_stream(
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request: HttpRequest,
        response: StreamingResponse,
    ) -> None:
        writer.write(_render_head(
            response.status, response.headers, True, None,
        ))
        await writer.drain()
        try:
            if request.method == "HEAD":
                return

            async def pump() -> None:
                async for chunk in response.chunks:
                    writer.write(chunk)
                    await writer.drain()

            # A quiet stream only touches the socket at the next event
            # or heartbeat, which can be seconds away — too late to
            # notice the client hung up. Watching the read side for EOF
            # in parallel ends the stream (and runs its cleanup: the
            # unsubscribe, the gauges) the moment the peer disconnects.
            pump_task = asyncio.ensure_future(pump())
            eof_task = asyncio.ensure_future(reader.read())
            try:
                await asyncio.wait(
                    {pump_task, eof_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
            finally:
                pump_task.cancel()
                eof_task.cancel()
                await asyncio.gather(
                    pump_task, eof_task, return_exceptions=True
                )
        finally:
            # Finalize generator-backed streams deterministically so
            # their cleanup (unsubscribing, gauges) runs now, not at GC.
            aclose = getattr(response.chunks, "aclose", None)
            if aclose is not None:
                try:
                    await aclose()
                except Exception:
                    pass


def route_pattern_match(
    pattern: str, path: str
) -> Optional[Tuple[str, ...]]:
    """Match ``path`` against ``pattern`` where ``{...}`` segments are
    wildcards; returns the captured segments or ``None``.

    ``route_pattern_match("/v1/sessions/{id}", "/v1/sessions/s1")``
    captures ``("s1",)``. Captures never span a ``/``.
    """
    pattern_parts = pattern.strip("/").split("/")
    path_parts = path.strip("/").split("/")
    if len(pattern_parts) != len(path_parts):
        return None
    captured: List[str] = []
    for expected, actual in zip(pattern_parts, path_parts):
        if expected.startswith("{") and expected.endswith("}"):
            if not actual:
                return None
            captured.append(actual)
        elif expected != actual:
            return None
    return tuple(captured)
