"""The HTTP operations gateway over a running :class:`PhaseService`.

Routes
------
``GET  /``                                  the built-in live dashboard
``GET  /healthz``                           liveness (always 200 while up)
``GET  /readyz``                            readiness (503 once draining)
``GET  /metrics``                           Prometheus text exposition
``GET  /v1/sessions``                       list live sessions
``POST /v1/sessions``                       open a session
``GET  /v1/sessions/{id}``                  phase + predictions
``DELETE /v1/sessions/{id}``                close a session
``POST /v1/sessions/{id}/observe-batch``    ingest branches
``GET  /v1/sessions/{id}/snapshot``         full tracker snapshot
``GET  /v1/diagnostics``                    operational state (dashboard)
``GET  /v1/events``                         live SSE event stream
``POST /v1/drain``                          begin a graceful drain

The session routes do **not** reimplement the service: each JSON body
is mapped onto the same :mod:`repro.service.protocol` request objects
the NDJSON listener parses, and executed through
``PhaseService._execute`` — so an observe-batch over HTTP produces
byte-for-byte the interval reports the TCP path would have pushed, and
every service-side guarantee (journaling before ack, admission
control, error taxonomy) holds identically. Wire error codes map onto
HTTP statuses (``session_not_found`` -> 404, ``overloaded`` -> 429,
``shutting_down`` -> 503, ...).

The gateway instruments itself on the shared telemetry hub: per-route
request counters and latency histograms, an in-flight gauge, an SSE
subscriber gauge, and a dropped-events counter — all visible on its
own ``/metrics``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Tuple

from repro.obs.http import (
    HttpError,
    HttpRequest,
    HttpResponse,
    HttpServer,
    StreamingResponse,
    route_pattern_match,
)
from repro.service import protocol

#: Wire error code -> HTTP status.
ERROR_STATUS: Dict[str, int] = {
    "protocol": 400,
    "session_not_found": 404,
    "session_exists": 409,
    "overloaded": 429,
    "shutting_down": 503,
    "snapshot": 400,
    "cluster": 503,
    "internal": 500,
}

#: Seconds between SSE heartbeat comments when no events flow.
SSE_HEARTBEAT_SECONDS = 15.0
#: Poll cadence for draining a subscriber's buffer.
SSE_POLL_SECONDS = 0.25
#: Per-subscriber buffered-event bound (drop-oldest beyond this).
SSE_QUEUE_MAXLEN = 256


class HttpGateway:
    """Serve the operations surface for one :class:`PhaseService`."""

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self._http = HttpServer(self._dispatch, host=host, port=port)
        # (method, pattern, route-label, handler, mutating)
        self._routes: List[Tuple[str, str, str, object, bool]] = [
            ("GET", "/", "/", self._route_dashboard, False),
            ("GET", "/healthz", "/healthz", self._route_healthz, False),
            ("GET", "/readyz", "/readyz", self._route_readyz, False),
            ("GET", "/metrics", "/metrics", self._route_metrics, False),
            ("GET", "/v1/sessions", "/v1/sessions",
             self._route_list_sessions, False),
            ("POST", "/v1/sessions", "/v1/sessions",
             self._route_open_session, True),
            ("GET", "/v1/sessions/{id}", "/v1/sessions/{id}",
             self._route_get_session, False),
            ("DELETE", "/v1/sessions/{id}", "/v1/sessions/{id}",
             self._route_close_session, True),
            ("POST", "/v1/sessions/{id}/observe-batch",
             "/v1/sessions/{id}/observe-batch",
             self._route_observe_batch, True),
            ("GET", "/v1/sessions/{id}/snapshot",
             "/v1/sessions/{id}/snapshot", self._route_snapshot, False),
            ("GET", "/v1/diagnostics", "/v1/diagnostics",
             self._route_diagnostics, False),
            ("GET", "/v1/events", "/v1/events", self._route_events, False),
            ("POST", "/v1/drain", "/v1/drain", self._route_drain, True),
        ]
        telemetry = service.telemetry
        self._telemetry = telemetry
        if telemetry is not None:
            self._g_in_flight = telemetry.gauge(
                "repro_http_in_flight",
                "HTTP requests currently being handled",
            )
            self._g_subscribers = telemetry.gauge(
                "repro_http_sse_subscribers",
                "Open SSE event-stream subscriptions",
            )
            self._m_sse_events = telemetry.counter(
                "repro_http_sse_events_total",
                "Events delivered over SSE streams",
            )
            self._m_sse_dropped = telemetry.counter(
                "repro_http_sse_dropped_total",
                "Events dropped from saturated SSE subscriber queues",
            )
        self._sse_tasks = 0

    # -- lifecycle ------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._http.host

    @property
    def port(self) -> int:
        return self._http.port

    async def start(self) -> None:
        await self._http.start()

    async def shutdown(self) -> None:
        await self._http.shutdown()

    # -- dispatch -------------------------------------------------------------

    async def _dispatch(self, request: HttpRequest):
        matched_path = False
        for method, pattern, label, handler, mutating in self._routes:
            captured = route_pattern_match(pattern, request.path)
            if captured is None:
                continue
            matched_path = True
            if request.method != method and not (
                request.method == "HEAD" and method == "GET"
            ):
                continue
            if mutating and self.service.draining:
                # Mirror the NDJSON read loop: once a drain begins no
                # new work is accepted, with a typed refusal.
                return self._instrumented_error(
                    label, request.method, 503,
                    "service is draining; no new work is accepted",
                    code="shutting_down",
                )
            return await self._run_route(
                label, handler, request, captured
            )
        if matched_path:
            return self._instrumented_error(
                request.path, request.method, 405,
                f"method {request.method} not allowed for {request.path}",
            )
        return self._instrumented_error(
            "unmatched", request.method, 404,
            f"no route for {request.path}",
        )

    async def _run_route(self, label, handler, request, captured):
        import time

        telemetry = self._telemetry
        counter = histogram = None
        if telemetry is not None:
            counter = telemetry.counter(
                "repro_http_requests_total",
                "HTTP requests handled, by route and method",
                labels={"route": label, "method": request.method},
            )
            histogram = telemetry.histogram(
                "repro_http_request_seconds",
                "Wall time to handle one HTTP request",
                labels={"route": label},
            )
            self._g_in_flight.inc()
        started = time.perf_counter()
        try:
            return await handler(request, *captured)
        finally:
            if telemetry is not None:
                counter.inc()
                histogram.observe(time.perf_counter() - started)
                self._g_in_flight.dec()

    def _instrumented_error(
        self, label: str, method: str, status: int, message: str,
        code: Optional[str] = None,
    ) -> HttpResponse:
        if self._telemetry is not None:
            self._telemetry.counter(
                "repro_http_requests_total",
                "HTTP requests handled, by route and method",
                labels={"route": label, "method": method},
            ).inc()
        return HttpResponse.error(status, message, code=code)

    # -- protocol bridge ------------------------------------------------------

    def _execute(
        self, request: "protocol.Request"
    ) -> Tuple[dict, List[dict]]:
        """Run a protocol request through the service; returns
        ``(result, interval_reports)``. Error responses raise
        :class:`HttpError` with the mapped status."""
        return self._unwrap(self.service._execute(request))

    def _unwrap(
        self, payloads: List[dict]
    ) -> Tuple[dict, List[dict]]:
        response = payloads[-1]
        reports = [
            payload["report"] for payload in payloads[:-1]
            if payload.get("push") == "interval"
        ]
        if not response.get("ok", False):
            error = response.get("error", {})
            code = error.get("code", "internal")
            raise HttpError(
                ERROR_STATUS.get(code, 500),
                error.get("message", "request failed"),
            )
        return response["result"], reports

    # -- routes ---------------------------------------------------------------

    async def _route_dashboard(self, request: HttpRequest) -> HttpResponse:
        from repro.obs.dashboard import DASHBOARD_HTML

        return HttpResponse.html(DASHBOARD_HTML)

    async def _route_healthz(self, request: HttpRequest) -> HttpResponse:
        from repro import __version__
        import os

        return HttpResponse.json({
            "status": "ok",
            "draining": self.service.draining,
            "version": __version__,
            "pid": os.getpid(),
            "uptime_seconds": self.service.uptime_seconds,
            "sessions": len(self.service.registry.sessions()),
        })

    async def _route_readyz(self, request: HttpRequest) -> HttpResponse:
        if self.service.draining:
            return HttpResponse.json(
                {"ready": False, "reason": "draining"}, status=503
            )
        return HttpResponse.json({"ready": True})

    async def _route_metrics(self, request: HttpRequest) -> HttpResponse:
        telemetry = self.service.telemetry
        if telemetry is None:
            raise HttpError(404, "service has no telemetry hub")
        self.service.touch_uptime()
        return HttpResponse.text(
            telemetry.render_metrics("prometheus"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    async def _route_list_sessions(
        self, request: HttpRequest
    ) -> HttpResponse:
        sessions = [
            {
                "session": session.name,
                "intervals": session.tracker.intervals_observed,
                "branches": session.branches_ingested,
                "current_phase": session.tracker.current_phase,
                "idle_seconds": session.idle_seconds(
                    self.service.registry.clock()
                ),
            }
            for session in self.service.registry.sessions()
        ]
        return HttpResponse.json({"sessions": sessions})

    async def _route_open_session(
        self, request: HttpRequest
    ) -> HttpResponse:
        body = _require_object(request.json())
        session = body.get("session")
        if session is not None and not isinstance(session, str):
            raise HttpError(400, "'session' must be a string")
        config = body.get("config")
        if config is not None and not isinstance(config, dict):
            raise HttpError(400, "'config' must be an object")
        interval = body.get("interval_instructions")
        if interval is not None and not isinstance(interval, int):
            raise HttpError(400, "'interval_instructions' must be an int")
        snapshot = body.get("snapshot")
        if snapshot is not None and not isinstance(snapshot, dict):
            raise HttpError(400, "'snapshot' must be an object")
        result, _ = self._execute(protocol.OpenRequest(
            id=0, session=session, config=config,
            interval_instructions=interval, snapshot=snapshot,
        ))
        return HttpResponse.json(result, status=201)

    async def _route_get_session(
        self, request: HttpRequest, session: str
    ) -> HttpResponse:
        result, _ = self._execute(
            protocol.PredictRequest(id=0, session=session)
        )
        return HttpResponse.json(result)

    async def _route_close_session(
        self, request: HttpRequest, session: str
    ) -> HttpResponse:
        result, _ = self._execute(
            protocol.CloseRequest(id=0, session=session)
        )
        return HttpResponse.json(result)

    async def _route_observe_batch(
        self, request: HttpRequest, session: str
    ) -> HttpResponse:
        body = _require_object(request.json())
        pcs = _require_int_list(body, "pcs")
        counts = _require_int_list(body, "counts")
        if len(pcs) != len(counts):
            raise HttpError(
                400,
                f"'pcs' and 'counts' must be the same length "
                f"({len(pcs)} != {len(counts)})",
            )
        cpi = body.get("cpi", 1.0)
        if not isinstance(cpi, (int, float)) or isinstance(cpi, bool):
            raise HttpError(400, "'cpi' must be a number")
        # Observes join the service's coalescing rounds (when enabled)
        # so the gateway's ingest shares the fused pool pass with the
        # NDJSON wire path.
        result, reports = self._unwrap(await self.service.execute_observe(
            protocol.ObserveRequest(
                id=0, session=session, pcs=pcs, counts=counts,
                cpi=float(cpi),
            )
        ))
        payload = dict(result)
        payload["reports"] = reports
        return HttpResponse.json(payload)

    async def _route_snapshot(
        self, request: HttpRequest, session: str
    ) -> HttpResponse:
        result, _ = self._execute(
            protocol.SnapshotRequest(id=0, session=session)
        )
        return HttpResponse.json(result)

    async def _route_diagnostics(
        self, request: HttpRequest
    ) -> HttpResponse:
        return HttpResponse.json(self.service.diagnostics())

    async def _route_drain(self, request: HttpRequest) -> HttpResponse:
        body = _require_object(request.json())
        grace = body.get("grace", 0.5)
        if not isinstance(grace, (int, float)) or isinstance(grace, bool):
            raise HttpError(400, "'grace' must be a number")
        self.service.begin_drain(grace=float(grace))
        return HttpResponse.json({"draining": True, "grace": float(grace)})

    # -- SSE ------------------------------------------------------------------

    async def _route_events(self, request: HttpRequest):
        telemetry = self.service.telemetry
        if telemetry is None:
            raise HttpError(404, "service has no telemetry hub")
        types_param = request.query_first("types")
        types = (
            frozenset(t for t in types_param.split(",") if t)
            if types_param else None
        )
        return StreamingResponse(self._event_stream(telemetry, types))

    async def _event_stream(self, telemetry, types):
        subscription = telemetry.subscribe(maxlen=SSE_QUEUE_MAXLEN)
        if self._telemetry is not None:
            self._g_subscribers.inc()
        dropped_seen = 0
        idle = 0.0
        try:
            yield b": connected\nretry: 2000\n\n"
            while True:
                records = subscription.drain()
                dropped = subscription.dropped
                if dropped > dropped_seen:
                    if self._telemetry is not None:
                        self._m_sse_dropped.inc(dropped - dropped_seen)
                    dropped_seen = dropped
                if records:
                    idle = 0.0
                    chunks = []
                    for record in records:
                        name = record.get("event", "event")
                        if types is not None and name not in types:
                            continue
                        data = json.dumps(record, default=float)
                        chunks.append(
                            f"event: {name}\ndata: {data}\n\n"
                            .encode("utf-8")
                        )
                    if chunks:
                        if self._telemetry is not None:
                            self._m_sse_events.inc(len(chunks))
                        yield b"".join(chunks)
                        continue
                await asyncio.sleep(SSE_POLL_SECONDS)
                idle += SSE_POLL_SECONDS
                if idle >= SSE_HEARTBEAT_SECONDS:
                    idle = 0.0
                    yield b": heartbeat\n\n"
        finally:
            subscription.close()
            if self._telemetry is not None:
                self._g_subscribers.dec()


class ClusterGateway(HttpGateway):
    """The operations surface for a
    :class:`~repro.cluster.dispatcher.ClusterDispatcher`.

    Same shell as :class:`HttpGateway` — dashboard, probes,
    ``/metrics``, SSE events, drain — but the data plane differs:

    - ``/v1/diagnostics`` aggregates every worker's diagnostics into
      the single-service shape (so the dashboard renders unchanged)
      plus a ``cluster`` section with per-worker health and shard
      occupancy;
    - ``GET /v1/cluster`` returns the topology (worker states, shard
      map, session placement, migration counters) without touching the
      workers; ``POST /v1/cluster`` runs a control-plane action
      (``migrate``, ``drain-worker``, ``rebalance``, ``grow``);
    - the per-session CRUD routes are not served — sessions live on
      the workers and the NDJSON endpoint is the data plane;
    - ``/metrics`` refreshes the ``repro_cluster_*`` labeled gauges
      before rendering, so scrapes always see current per-worker
      health, session counts, and shard occupancy.
    """

    def __init__(
        self,
        dispatcher,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        super().__init__(dispatcher, host=host, port=port)
        self._routes = [
            ("GET", "/", "/", self._route_dashboard, False),
            ("GET", "/healthz", "/healthz", self._route_healthz, False),
            ("GET", "/readyz", "/readyz", self._route_readyz, False),
            ("GET", "/metrics", "/metrics", self._route_metrics, False),
            ("GET", "/v1/cluster", "/v1/cluster",
             self._route_cluster, False),
            ("POST", "/v1/cluster", "/v1/cluster",
             self._route_cluster_action, True),
            ("GET", "/v1/diagnostics", "/v1/diagnostics",
             self._route_diagnostics, False),
            ("GET", "/v1/events", "/v1/events", self._route_events, False),
            ("POST", "/v1/drain", "/v1/drain", self._route_drain, True),
        ]

    async def _route_healthz(self, request: HttpRequest) -> HttpResponse:
        from repro import __version__
        import os

        dispatcher = self.service
        workers = {
            worker_id: handle.state
            for worker_id, handle in sorted(
                dispatcher.supervisor.workers.items()
            )
        }
        return HttpResponse.json({
            "status": "ok",
            "draining": dispatcher.draining,
            "version": __version__,
            "pid": os.getpid(),
            "uptime_seconds": dispatcher.uptime_seconds,
            "sessions": len(dispatcher._sessions),
            "workers": workers,
        })

    async def _route_metrics(self, request: HttpRequest) -> HttpResponse:
        self.service.refresh_cluster_metrics()
        return await super()._route_metrics(request)

    async def _route_diagnostics(
        self, request: HttpRequest
    ) -> HttpResponse:
        return HttpResponse.json(
            await self.service.aggregate_diagnostics()
        )

    async def _route_cluster(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.json(self.service.cluster_status())

    async def _route_cluster_action(
        self, request: HttpRequest
    ) -> HttpResponse:
        from repro.errors import ReproError

        body = _require_object(request.json())
        action = body.get("action")
        if not isinstance(action, str) or not action:
            raise HttpError(400, "'action' must be a non-empty string")
        params = body.get("params", {})
        if not isinstance(params, dict):
            raise HttpError(400, "'params' must be an object")
        try:
            result = await self.service._execute_cluster(
                protocol.ClusterRequest(id=0, action=action, params=params)
            )
        except ReproError as error:
            code = protocol.error_code_for(error)
            raise HttpError(
                ERROR_STATUS.get(code, 500), str(error)
            ) from None
        return HttpResponse.json(result)


def _require_object(body: object) -> dict:
    if not isinstance(body, dict):
        raise HttpError(400, "request body must be a JSON object")
    return body


def _require_int_list(body: dict, key: str) -> List[int]:
    values = body.get(key)
    if not isinstance(values, list) or any(
        not isinstance(value, int) or isinstance(value, bool)
        for value in values
    ):
        raise HttpError(400, f"'{key}' must be a list of integers")
    return values
