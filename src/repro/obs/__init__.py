"""repro.obs — the HTTP operations gateway and live dashboard.

The NDJSON-TCP protocol (:mod:`repro.service`) is the ingest plane;
this package is the *operations* plane: health and readiness probes, a
Prometheus ``/metrics`` scrape target, a JSON session API that executes
through the same code path as the TCP protocol (byte-identical interval
reports), a live Server-Sent-Events feed off the telemetry hub, and a
zero-dependency dashboard served at ``/``.

Run it with ``repro-phases serve --http-port 8080`` or construct a
:class:`~repro.service.server.PhaseService` with ``http_port=...``.
Stdlib only, like everything else in the repo.
"""

from repro.obs.gateway import ClusterGateway, ERROR_STATUS, HttpGateway
from repro.obs.http import (
    HttpError,
    HttpRequest,
    HttpResponse,
    HttpServer,
    StreamingResponse,
    route_pattern_match,
)

__all__ = [
    "ClusterGateway",
    "ERROR_STATUS",
    "HttpError",
    "HttpGateway",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "StreamingResponse",
    "route_pattern_match",
]
