"""The built-in live dashboard served at ``/`` by the gateway.

One self-contained HTML page, zero external dependencies (no CDN, no
fonts, no frameworks): inline CSS + vanilla JS + SVG. It polls
``/v1/diagnostics`` (2s) and ``/metrics`` (5s), subscribes to
``/v1/events`` over SSE, and renders:

- stat tiles (sessions, request rate, ingest queue depth, pool
  utilization, predictor accuracy),
- a per-phase occupancy bar chart,
- predictor-accuracy and ingest-backpressure time-series built from a
  client-side ring buffer of samples,
- the live event feed.

Charts follow the repo's dataviz conventions: single y-axis per chart,
categorical hues in fixed order (blue, orange), value labels in ink —
never in the series color — and light/dark palettes that were validated
for colorblind separation and surface contrast.
"""

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro-phases · operations</title>
<style>
  :root {
    color-scheme: light;
    --page: #f9f9f7; --surface: #fcfcfb;
    --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
    --grid: #e1e0d9; --axis: #c3c2b7;
    --border: rgba(11,11,11,0.10);
    --series-1: #2a78d6; --series-2: #eb6834;
    --good: #0ca30c; --critical: #d03b3b; --warning: #fab219;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --page: #0d0d0d; --surface: #1a1a19;
      --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
      --grid: #2c2c2a; --axis: #383835;
      --border: rgba(255,255,255,0.10);
      --series-1: #3987e5; --series-2: #d95926;
    }
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; background: var(--page); color: var(--ink);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  header {
    display: flex; align-items: baseline; gap: 12px;
    padding: 14px 20px 10px;
  }
  header h1 { font-size: 17px; margin: 0; font-weight: 650; }
  header .meta { color: var(--ink-2); font-size: 12.5px; }
  .badge {
    font-size: 12px; font-weight: 600; border-radius: 10px;
    padding: 2px 9px; border: 1px solid var(--border);
  }
  .badge.ok { color: var(--good); }
  .badge.drain { color: var(--critical); }
  main { padding: 0 20px 28px; max-width: 1180px; margin: 0 auto; }
  .tiles {
    display: grid; gap: 10px;
    grid-template-columns: repeat(auto-fit, minmax(150px, 1fr));
    margin-bottom: 12px;
  }
  .tile {
    background: var(--surface); border: 1px solid var(--border);
    border-radius: 8px; padding: 10px 12px;
  }
  .tile .k { color: var(--muted); font-size: 11.5px;
             text-transform: uppercase; letter-spacing: .04em; }
  .tile .v { font-size: 24px; font-weight: 650; margin-top: 2px; }
  .tile .s { color: var(--ink-2); font-size: 12px; }
  .grid2 {
    display: grid; gap: 12px;
    grid-template-columns: repeat(auto-fit, minmax(340px, 1fr));
  }
  .panel {
    background: var(--surface); border: 1px solid var(--border);
    border-radius: 8px; padding: 12px 14px; margin-bottom: 12px;
  }
  .panel h2 {
    margin: 0 0 2px; font-size: 13px; font-weight: 650;
  }
  .panel .sub { color: var(--muted); font-size: 12px; margin: 0 0 8px; }
  .legend {
    display: flex; gap: 14px; font-size: 12px; color: var(--ink-2);
    margin: 2px 0 4px;
  }
  .legend .sw {
    display: inline-block; width: 10px; height: 10px;
    border-radius: 3px; margin-right: 5px; vertical-align: -1px;
  }
  svg { display: block; width: 100%; }
  svg text { font: 11px system-ui, sans-serif; fill: var(--muted); }
  svg text.val { fill: var(--ink-2); font-variant-numeric: tabular-nums; }
  .gridline { stroke: var(--grid); stroke-width: 1; }
  .axisline { stroke: var(--axis); stroke-width: 1; }
  #events {
    max-height: 300px; overflow-y: auto; font-size: 12.5px;
    font-variant-numeric: tabular-nums;
  }
  #events .row {
    display: flex; gap: 10px; padding: 3px 0;
    border-bottom: 1px solid var(--grid);
  }
  #events .t { color: var(--muted); flex: 0 0 62px; }
  #events .e { font-weight: 600; flex: 0 0 120px; }
  #events .d { color: var(--ink-2); overflow: hidden;
               text-overflow: ellipsis; white-space: nowrap; }
  #workers { font-size: 12.5px; font-variant-numeric: tabular-nums; }
  #workers .row {
    display: flex; gap: 10px; padding: 4px 0;
    border-bottom: 1px solid var(--grid);
  }
  #workers .w { font-weight: 600; flex: 0 0 56px; }
  #workers .st { flex: 0 0 84px; }
  #workers .st.up { color: var(--good); }
  #workers .st.down { color: var(--critical); }
  #workers .d { color: var(--ink-2); }
  #tip {
    position: fixed; pointer-events: none; display: none;
    background: var(--surface); color: var(--ink);
    border: 1px solid var(--border); border-radius: 6px;
    padding: 5px 8px; font-size: 12px;
    box-shadow: 0 2px 8px rgba(0,0,0,.18); z-index: 10;
  }
  #conn { color: var(--muted); font-size: 12px; margin-left: auto; }
</style>
</head>
<body>
<header>
  <h1>repro-phases</h1>
  <span class="badge ok" id="state">● serving</span>
  <span class="meta" id="ident">—</span>
  <span id="conn">connecting…</span>
</header>
<main>
  <div class="tiles">
    <div class="tile"><div class="k">Live sessions</div>
      <div class="v" id="t-sessions">—</div>
      <div class="s" id="t-sessions-s"></div></div>
    <div class="tile"><div class="k">Requests / s</div>
      <div class="v" id="t-rps">—</div>
      <div class="s" id="t-rps-s"></div></div>
    <div class="tile"><div class="k">Ingest queue</div>
      <div class="v" id="t-queue">—</div>
      <div class="s">buffered requests</div></div>
    <div class="tile"><div class="k">Pool slots</div>
      <div class="v" id="t-pool">—</div>
      <div class="s" id="t-pool-s"></div></div>
    <div class="tile"><div class="k">Prediction accuracy</div>
      <div class="v" id="t-acc">—</div>
      <div class="s" id="t-acc-s"></div></div>
    <div class="tile"><div class="k">SSE dropped</div>
      <div class="v" id="t-dropped">0</div>
      <div class="s">events, all subscribers</div></div>
  </div>

  <div class="grid2">
    <div class="panel">
      <h2>Phase occupancy</h2>
      <p class="sub">live sessions per current phase</p>
      <svg id="occupancy" viewBox="0 0 520 190"
           preserveAspectRatio="none" aria-label="Phase occupancy"></svg>
    </div>
    <div class="panel">
      <h2>Predictor accuracy</h2>
      <p class="sub">cumulative, scored per interval boundary</p>
      <div class="legend">
        <span><span class="sw" style="background:var(--series-1)"></span>
          all predictions</span>
        <span><span class="sw" style="background:var(--series-2)"></span>
          confident only</span>
      </div>
      <svg id="accuracy" viewBox="0 0 520 170"
           preserveAspectRatio="none" aria-label="Prediction accuracy"></svg>
    </div>
    <div class="panel">
      <h2>Ingest backpressure</h2>
      <p class="sub">buffered requests across connection queues</p>
      <svg id="backpressure" viewBox="0 0 520 170"
           preserveAspectRatio="none" aria-label="Ingest queue depth"></svg>
    </div>
    <div class="panel">
      <h2>Live events</h2>
      <p class="sub" id="events-sub">via /v1/events (SSE)</p>
      <div id="events"></div>
    </div>
    <div class="panel" id="cluster-panel" style="display:none">
      <h2>Cluster workers</h2>
      <p class="sub" id="cluster-sub">per-worker health and shard
        occupancy</p>
      <div id="workers"></div>
    </div>
  </div>
</main>
<div id="tip"></div>
<script>
"use strict";
const $ = id => document.getElementById(id);
const tip = $("tip");
const MAXPTS = 120, history = [];
let lastDiag = null, lastReq = null, lastReqTime = null;
let eventCount = 0;

function fmt(value, digits) {
  if (value === null || value === undefined) return "—";
  return Number(value).toLocaleString("en-US",
    {maximumFractionDigits: digits === undefined ? 0 : digits});
}
function pct(value) {
  return value === null || value === undefined ? "—"
    : (100 * value).toFixed(1) + "%";
}
function css(name) {
  return getComputedStyle(document.documentElement)
    .getPropertyValue(name).trim();
}
function showTip(evt, html) {
  tip.innerHTML = html; tip.style.display = "block";
  tip.style.left = (evt.clientX + 12) + "px";
  tip.style.top = (evt.clientY + 12) + "px";
}
function hideTip() { tip.style.display = "none"; }

// -- occupancy bar chart ----------------------------------------------------
function drawOccupancy(occ) {
  const svg = $("occupancy");
  const entries = Object.entries(occ)
    .sort((a, b) => (a[0] === "none") - (b[0] === "none")
                    || Number(a[0]) - Number(b[0]));
  const W = 520, H = 190, padL = 8, padB = 22, padT = 14;
  let html = "";
  const max = Math.max(1, ...entries.map(e => e[1]));
  const n = entries.length || 1;
  const span = (W - 2 * padL) / n;
  const bw = Math.min(44, span - 2);
  html += `<line class="axisline" x1="${padL}" y1="${H - padB}"` +
          ` x2="${W - padL}" y2="${H - padB}"/>`;
  entries.forEach(([phase, count], i) => {
    const h = Math.max(2, (H - padB - padT) * count / max);
    const x = padL + i * span + (span - bw) / 2;
    const y = H - padB - h;
    const label = phase === "none" ? "–" : phase;
    html += `<path d="M${x},${H - padB} V${y + 4}` +
      ` q0,-4 4,-4 h${bw - 8} q4,0 4,4 V${H - padB} Z"` +
      ` fill="${css("--series-1")}" data-tip="phase ${label}: ` +
      `${count} session${count === 1 ? "" : "s"}"/>`;
    html += `<text class="val" x="${x + bw / 2}" y="${y - 4}"` +
      ` text-anchor="middle">${count}</text>`;
    html += `<text x="${x + bw / 2}" y="${H - 7}"` +
      ` text-anchor="middle">${label}</text>`;
  });
  if (!entries.length)
    html += `<text x="${W / 2}" y="${H / 2}" text-anchor="middle">` +
            `no live sessions</text>`;
  svg.innerHTML = html;
}

// -- time-series line charts ------------------------------------------------
function linePath(points, x, y) {
  return points.map((p, i) =>
    (i ? "L" : "M") + x(i).toFixed(1) + "," + y(p).toFixed(1)).join(" ");
}
function drawSeries(svg, seriesList, yMax, yFmt) {
  const W = 520, H = Number(svg.viewBox.baseVal.height);
  const padL = 34, padR = 10, padT = 8, padB = 6;
  const n = Math.max(2, history.length);
  const x = i => padL + (W - padL - padR) * i / (n - 1);
  const y = v => H - padB - (H - padT - padB) * Math.min(v, yMax) / yMax;
  let html = "";
  [0, 0.5, 1].forEach(f => {
    const gy = y(yMax * f);
    html += `<line class="gridline" x1="${padL}" y1="${gy}"` +
            ` x2="${W - padR}" y2="${gy}"/>`;
    html += `<text class="val" x="${padL - 4}" y="${gy + 3.5}"` +
            ` text-anchor="end">${yFmt(yMax * f)}</text>`;
  });
  for (const series of seriesList) {
    const pts = series.points;
    if (!pts.length) continue;
    html += `<path d="${linePath(pts, x, y)}" fill="none"` +
      ` stroke="${series.color}" stroke-width="2"` +
      ` stroke-linejoin="round" stroke-linecap="round"/>`;
    const last = pts[pts.length - 1];
    html += `<circle cx="${x(pts.length - 1)}" cy="${y(last)}" r="3"` +
            ` fill="${series.color}"/>`;
    html += `<text class="val" x="${x(pts.length - 1) - 6}"` +
      ` y="${y(last) - 7}" text-anchor="end">${yFmt(last)}</text>`;
  }
  svg.innerHTML = html;
}

function redraw() {
  if (!lastDiag) return;
  drawOccupancy(lastDiag.phase_occupancy || {});
  const acc = history.map(s => s.accuracy ?? 0);
  const conf = history.map(s => s.confident ?? 0);
  drawSeries($("accuracy"), [
    {points: acc, color: css("--series-1")},
    {points: conf, color: css("--series-2")},
  ], 1, v => (100 * v).toFixed(0) + "%");
  const depth = history.map(s => s.queue);
  const dMax = Math.max(4, ...depth);
  drawSeries($("backpressure"),
    [{points: depth, color: css("--series-1")}], dMax, v => fmt(v));
}

// -- polling ----------------------------------------------------------------
async function poll() {
  try {
    const res = await fetch("/v1/diagnostics");
    const diag = await res.json();
    lastDiag = diag;
    const now = performance.now();
    if (lastReq !== null && now > lastReqTime) {
      const rps = 1000 * (diag.requests - lastReq) / (now - lastReqTime);
      $("t-rps").textContent = fmt(Math.max(0, rps), 1);
    }
    lastReq = diag.requests; lastReqTime = now;
    $("t-rps-s").textContent = fmt(diag.requests) + " total";
    $("t-sessions").textContent = fmt(diag.registry.live);
    $("t-sessions-s").textContent =
      fmt(diag.registry.opened) + " opened · " +
      fmt(diag.registry.evicted) + " evicted";
    $("t-queue").textContent = fmt(diag.ingest_queue_depth);
    if (diag.pool) {
      $("t-pool").textContent =
        fmt(diag.pool.active_slots) + "/" + fmt(diag.pool.capacity);
      $("t-pool-s").textContent = pct(diag.pool.utilization) + " utilized";
    } else {
      $("t-pool").textContent = "—";
      $("t-pool-s").textContent = "scalar trackers";
    }
    $("t-acc").textContent = pct(diag.prediction.accuracy);
    $("t-acc-s").textContent = fmt(diag.prediction.scored) + " scored · "
      + pct(diag.prediction.confident_accuracy) + " confident";
    $("state").textContent = diag.draining ? "◌ draining" : "● serving";
    $("state").className = "badge " + (diag.draining ? "drain" : "ok");
    drawCluster(diag.cluster);
    history.push({
      accuracy: diag.prediction.accuracy,
      confident: diag.prediction.confident_accuracy,
      queue: diag.ingest_queue_depth,
    });
    if (history.length > MAXPTS) history.shift();
    redraw();
    $("conn").textContent = "";
  } catch (err) {
    $("conn").textContent = "· diagnostics unreachable";
  }
}

// -- cluster worker panel ---------------------------------------------------
function drawCluster(cluster) {
  const panel = $("cluster-panel");
  if (!cluster || !cluster.workers) { panel.style.display = "none"; return; }
  panel.style.display = "";
  const mig = cluster.migrations || {};
  $("cluster-sub").textContent =
    fmt(cluster.sessions) + " sessions · " +
    fmt(mig.completed) + " migrations" +
    (mig.in_progress ? " · " + mig.in_progress + " in flight" : "");
  const box = $("workers");
  box.textContent = "";
  for (const [id, w] of Object.entries(cluster.workers)) {
    const row = document.createElement("div");
    row.className = "row";
    row.innerHTML = `<span class="w"></span><span class="st"></span>` +
                    `<span class="d"></span>`;
    row.children[0].textContent = id;
    row.children[1].textContent = w.state;
    row.children[1].className =
      "st " + (w.state === "up" ? "up"
               : w.state === "stopped" ? "" : "down");
    row.children[2].textContent =
      fmt(w.sessions) + " sessions · " + fmt(w.shards) + " shards" +
      (w.restarts ? " · " + w.restarts + " restart" +
        (w.restarts === 1 ? "" : "s") : "") +
      (w.pid ? " · pid " + w.pid : "");
    box.appendChild(row);
  }
}

async function pollMetrics() {
  try {
    const res = await fetch("/metrics");
    const text = await res.text();
    let dropped = 0, uptime = null, version = "", pid = "";
    for (const line of text.split("\\n")) {
      if (line.startsWith("repro_http_sse_dropped_total "))
        dropped = Number(line.split(" ").pop());
      else if (line.startsWith("repro_service_uptime_seconds "))
        uptime = Number(line.split(" ").pop());
      else if (line.startsWith("repro_service_info{")) {
        version = (line.match(/version="([^"]*)"/) || [])[1] || "";
        pid = (line.match(/pid="([^"]*)"/) || [])[1] || "";
      }
    }
    $("t-dropped").textContent = fmt(dropped);
    $("ident").textContent = "v" + version + " · pid " + pid +
      (uptime === null ? "" : " · up " + fmt(uptime) + "s");
  } catch (err) { /* tile keeps its last value */ }
}

// -- SSE event feed ---------------------------------------------------------
function startEvents() {
  const feed = $("events");
  const source = new EventSource("/v1/events");
  const push = evt => {
    let data = {};
    try { data = JSON.parse(evt.data); } catch (err) { return; }
    eventCount += 1;
    const row = document.createElement("div");
    row.className = "row";
    const ts = new Date().toTimeString().slice(0, 8);
    const detail = Object.entries(data)
      .filter(([k]) => !["event", "seq", "ts"].includes(k))
      .map(([k, v]) => k + "=" + JSON.stringify(v)).join(" ");
    row.innerHTML =
      `<span class="t">${ts}</span>` +
      `<span class="e"></span><span class="d"></span>`;
    row.children[1].textContent = data.event || evt.type;
    row.children[2].textContent = detail;
    feed.prepend(row);
    while (feed.children.length > 40) feed.lastChild.remove();
    $("events-sub").textContent =
      eventCount + " received via /v1/events (SSE)";
  };
  ["interval", "session_opened", "session_closed", "session_evicted",
   "session_expired", "session_hydrated", "session_adopted",
   "service_start", "service_stop", "checkpoint_sweep_failed",
   "cluster_start", "cluster_stop", "cluster_worker_started",
   "cluster_worker_ready", "cluster_worker_exited",
   "cluster_worker_restarted", "cluster_worker_drained",
   "cluster_migration_started", "cluster_migration_completed",
   "cluster_migration_failed", "cluster_grown",
  ].forEach(name => source.addEventListener(name, push));
  source.onmessage = push;
  source.onerror = () => {
    $("events-sub").textContent = "event stream reconnecting…";
  };
}

document.addEventListener("mouseover", evt => {
  const target = evt.target.closest("[data-tip]");
  if (target) showTip(evt, target.getAttribute("data-tip"));
});
document.addEventListener("mousemove", evt => {
  const target = evt.target.closest("[data-tip]");
  if (target) showTip(evt, target.getAttribute("data-tip"));
  else hideTip();
});

poll(); pollMetrics(); startEvents();
setInterval(poll, 2000);
setInterval(pollMetrics, 5000);
window.matchMedia("(prefers-color-scheme: dark)")
  .addEventListener("change", redraw);
</script>
</body>
</html>
"""
