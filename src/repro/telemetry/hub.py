"""The :class:`Telemetry` hub: one handle for metrics, spans, events.

Instrumented layers (:class:`~repro.core.online.PhaseTracker`, the
experiment harness, the harness caches) accept an optional
``telemetry=`` argument; passing one hub to all of them aggregates the
whole run in one place::

    from repro.telemetry import Telemetry

    telemetry = Telemetry.to_files(metrics_path="run.prom",
                                   events_path="run.jsonl")
    tracker = PhaseTracker(config, telemetry=telemetry)
    ...
    telemetry.close()        # writes run.prom, closes run.jsonl

A hub constructed with no arguments keeps everything in memory (no
event sink, no output files) — the cheapest way to instrument a
library embedding.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.telemetry.events import EventLog
from repro.telemetry.export import Exporter, exporter_for
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.tracing import Span, Tracer


class Telemetry:
    """Bundle of a metrics registry, a tracer, and an optional event log."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
        clock: Callable[[], float] = time.perf_counter,
        metrics_path: Optional[str] = None,
    ) -> None:
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.tracer = Tracer(registry=self.metrics, clock=clock)
        self.events = events
        self.metrics_path = metrics_path
        self._closed = False

    @classmethod
    def to_files(
        cls,
        metrics_path: Optional[str] = None,
        events_path: Optional[str] = None,
    ) -> "Telemetry":
        """A hub that streams events to ``events_path`` while running
        and writes a metrics snapshot to ``metrics_path`` on close.

        Both paths are opened eagerly so an unwritable destination fails
        here, before any instrumented work runs, rather than at close.
        """
        if metrics_path is not None:
            with open(metrics_path, "w", encoding="utf-8"):
                pass
        events = (
            EventLog(path=events_path) if events_path is not None else None
        )
        return cls(events=events, metrics_path=metrics_path)

    # -- metric shortcuts -------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return self.metrics.counter(name, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self.metrics.gauge(name, help=help)

    def histogram(self, name: str, help: str = "", **kwargs) -> Histogram:
        return self.metrics.histogram(name, help=help, **kwargs)

    # -- tracing / events -------------------------------------------------

    def span(self, name: str) -> Span:
        """A nested timing span (see :mod:`repro.telemetry.tracing`)."""
        return self.tracer.span(name)

    def emit(self, event: str, /, **fields: object) -> None:
        """Emit a structured event; a no-op without an event sink."""
        if self.events is not None and not self.events.closed:
            self.events.emit(event, **fields)

    # -- export -----------------------------------------------------------

    def render_metrics(self, format: str = "prometheus") -> str:
        """The current metrics snapshot as text."""
        return exporter_for(format=format).render(self.metrics)

    def write_metrics(
        self, path: str, exporter: Optional[Exporter] = None
    ) -> None:
        """Write a snapshot to ``path`` (format chosen by extension
        unless an explicit exporter is given)."""
        (exporter or exporter_for(path=path)).write(self.metrics, path)

    def span_timings(self) -> Dict[str, object]:
        """Convenience passthrough to :meth:`Tracer.timings`."""
        return self.tracer.timings()

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Flush outputs: write the configured metrics file (if any)
        and close the event log. Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self.metrics_path is not None:
            self.write_metrics(self.metrics_path)
        if self.events is not None:
            self.events.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
