"""The :class:`Telemetry` hub: one handle for metrics, spans, events.

Instrumented layers (:class:`~repro.core.online.PhaseTracker`, the
experiment harness, the harness caches) accept an optional
``telemetry=`` argument; passing one hub to all of them aggregates the
whole run in one place::

    from repro.telemetry import Telemetry

    telemetry = Telemetry.to_files(metrics_path="run.prom",
                                   events_path="run.jsonl")
    tracker = PhaseTracker(config, telemetry=telemetry)
    ...
    telemetry.close()        # writes run.prom, closes run.jsonl

A hub constructed with no arguments keeps everything in memory (no
event sink, no output files) — the cheapest way to instrument a
library embedding.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, List, Mapping, Optional

from repro.telemetry.events import EventLog
from repro.telemetry.export import Exporter, exporter_for
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.tracing import Span, Tracer


class EventSubscription:
    """A bounded live feed of the hub's event stream.

    Each subscriber owns a ``deque(maxlen=...)``: when the consumer
    falls behind, the *oldest* buffered records are silently replaced
    and :attr:`dropped` counts how many were lost — emitters are never
    blocked or slowed by a stuck reader. Thread-safe; designed for the
    SSE bridge in :mod:`repro.obs` but usable anywhere.
    """

    __slots__ = ("_hub", "_queue", "_lock", "_dropped", "_closed")

    def __init__(self, hub: "Telemetry", maxlen: int = 256) -> None:
        if maxlen < 1:
            raise ValueError(f"subscription maxlen must be >= 1, got {maxlen}")
        self._hub = hub
        self._queue: "deque" = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        self._dropped = 0
        self._closed = False

    @property
    def dropped(self) -> int:
        """Records lost to overflow since the subscription opened."""
        return self._dropped

    @property
    def closed(self) -> bool:
        return self._closed

    def _publish(self, record: Dict[str, object]) -> None:
        with self._lock:
            if self._closed:
                return
            if len(self._queue) == self._queue.maxlen:
                self._dropped += 1
            self._queue.append(record)

    def drain(self) -> List[Dict[str, object]]:
        """All buffered records, oldest first; empties the buffer."""
        with self._lock:
            records = list(self._queue)
            self._queue.clear()
        return records

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    def close(self) -> None:
        """Detach from the hub and discard the buffer. Idempotent."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            self._queue.clear()
        self._hub._unsubscribe(self)


class Telemetry:
    """Bundle of a metrics registry, a tracer, and an optional event log."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
        clock: Callable[[], float] = time.perf_counter,
        metrics_path: Optional[str] = None,
    ) -> None:
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.tracer = Tracer(registry=self.metrics, clock=clock)
        self.events = events
        self.metrics_path = metrics_path
        self._closed = False
        self._subscribers: List[EventSubscription] = []
        self._sub_lock = threading.Lock()
        self._seq = 0

    @classmethod
    def to_files(
        cls,
        metrics_path: Optional[str] = None,
        events_path: Optional[str] = None,
    ) -> "Telemetry":
        """A hub that streams events to ``events_path`` while running
        and writes a metrics snapshot to ``metrics_path`` on close.

        Both paths are opened eagerly so an unwritable destination fails
        here, before any instrumented work runs, rather than at close.
        """
        if metrics_path is not None:
            with open(metrics_path, "w", encoding="utf-8"):
                pass
        events = (
            EventLog(path=events_path) if events_path is not None else None
        )
        return cls(events=events, metrics_path=metrics_path)

    # -- metric shortcuts -------------------------------------------------

    def counter(
        self, name: str, help: str = "",
        labels: Optional[Mapping[str, object]] = None,
    ) -> Counter:
        return self.metrics.counter(name, help=help, labels=labels)

    def gauge(
        self, name: str, help: str = "",
        labels: Optional[Mapping[str, object]] = None,
    ) -> Gauge:
        return self.metrics.gauge(name, help=help, labels=labels)

    def histogram(self, name: str, help: str = "", **kwargs) -> Histogram:
        return self.metrics.histogram(name, help=help, **kwargs)

    # -- tracing / events -------------------------------------------------

    def span(self, name: str) -> Span:
        """A nested timing span (see :mod:`repro.telemetry.tracing`)."""
        return self.tracer.span(name)

    def subscribe(self, maxlen: int = 256) -> EventSubscription:
        """Open a live, bounded feed of every event this hub emits.

        Works with or without a JSONL sink: an in-memory hub still fans
        records out to subscribers. Call ``close()`` on the returned
        subscription to detach.
        """
        subscription = EventSubscription(self, maxlen=maxlen)
        with self._sub_lock:
            self._subscribers.append(subscription)
        return subscription

    def _unsubscribe(self, subscription: EventSubscription) -> None:
        with self._sub_lock:
            try:
                self._subscribers.remove(subscription)
            except ValueError:
                pass

    def emit(self, event: str, /, **fields: object) -> None:
        """Emit a structured event.

        A no-op (one attribute check) when there is neither an event
        sink nor any live subscriber, so unconditional ``emit`` calls
        on hot paths stay cheap.
        """
        subscribers = self._subscribers
        record: Optional[Dict[str, object]] = None
        if self.events is not None and not self.events.closed:
            record = self.events.emit(event, **fields)
        elif not subscribers:
            return
        if subscribers:
            if record is None:
                # Sinkless hub: build the same envelope the EventLog
                # would have, with a hub-local sequence number.
                with self._sub_lock:
                    self._seq += 1
                    seq = self._seq
                record = {"event": event, "seq": seq, "ts": time.time()}
                record.update(fields)
            with self._sub_lock:
                live = list(self._subscribers)
            for subscription in live:
                subscription._publish(record)

    # -- export -----------------------------------------------------------

    def render_metrics(self, format: str = "prometheus") -> str:
        """The current metrics snapshot as text."""
        return exporter_for(format=format).render(self.metrics)

    def write_metrics(
        self, path: str, exporter: Optional[Exporter] = None
    ) -> None:
        """Write a snapshot to ``path`` (format chosen by extension
        unless an explicit exporter is given)."""
        (exporter or exporter_for(path=path)).write(self.metrics, path)

    def span_timings(self) -> Dict[str, object]:
        """Convenience passthrough to :meth:`Tracer.timings`."""
        return self.tracer.timings()

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Flush outputs: write the configured metrics file (if any)
        and close the event log. Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self.metrics_path is not None:
            self.write_metrics(self.metrics_path)
        if self.events is not None:
            self.events.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
