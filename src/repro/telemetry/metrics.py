"""Metric primitives: counters, gauges, log-bucket histograms.

The hot path of a deployed phase tracker executes per committed branch,
so the primitives here are deliberately boring: a :class:`Counter` is
one float behind a lock, a :class:`Histogram` finds its bucket with a
binary search over a precomputed bound tuple. Nothing on the record
path allocates beyond what CPython needs for the call itself.

All metrics live in a :class:`MetricsRegistry`, which hands out
get-or-create references (two subsystems asking for the same counter
name share the instance) and produces the snapshots the exporters in
:mod:`repro.telemetry.export` render.

Naming follows Prometheus conventions: ``[a-zA-Z_:][a-zA-Z0-9_:]*``,
counters ending in ``_total``, durations in ``_seconds``.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

from repro.errors import TelemetryError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def validate_metric_name(name: str) -> str:
    """Check a metric name against the Prometheus grammar."""
    if not _NAME_RE.match(name):
        raise TelemetryError(
            f"invalid metric name {name!r}; expected "
            "[a-zA-Z_:][a-zA-Z0-9_:]*"
        )
    return name


def sanitize_metric_name(raw: str) -> str:
    """Coerce an arbitrary string (e.g. a span path) into a legal name.

    Colons are legal in the Prometheus grammar but conventionally
    reserved for recording rules, so they are replaced too.
    """
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", raw)
    if not cleaned or not _NAME_RE.match(cleaned[0]):
        cleaned = "_" + cleaned
    return cleaned


class Counter:
    """A monotonically increasing count (events, branches, hits)."""

    kind = "counter"

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = validate_metric_name(name)
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "value": self._value,
        }


class Gauge:
    """A value that can go up and down (occupancy, queue depth)."""

    kind = "gauge"

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = validate_metric_name(name)
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "value": self._value,
        }


#: Default histogram geometry: 1µs first bound, ×4 per bucket, 14
#: buckets -> top finite bound ~67s. Suits both per-branch latencies
#: (tens of ns land in the first bucket) and whole-experiment spans.
DEFAULT_HISTOGRAM_START = 1e-6
DEFAULT_HISTOGRAM_FACTOR = 4.0
DEFAULT_HISTOGRAM_BUCKETS = 14


class Histogram:
    """Fixed log-scale-bucket histogram of observed values.

    Bucket upper bounds are ``start * factor**i`` for ``i`` in
    ``range(count)``; values above the last bound land in the implicit
    overflow (``+Inf``) bucket. Bounds are precomputed so
    :meth:`observe` is a binary search plus three scalar updates.
    """

    kind = "histogram"

    __slots__ = (
        "name", "help", "bounds", "_counts", "_overflow",
        "_sum", "_observations", "_min", "_max", "_lock",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        start: float = DEFAULT_HISTOGRAM_START,
        factor: float = DEFAULT_HISTOGRAM_FACTOR,
        count: int = DEFAULT_HISTOGRAM_BUCKETS,
    ) -> None:
        if start <= 0:
            raise TelemetryError(f"histogram start must be > 0, got {start}")
        if factor <= 1.0:
            raise TelemetryError(
                f"histogram factor must be > 1, got {factor}"
            )
        if count < 1:
            raise TelemetryError(
                f"histogram bucket count must be >= 1, got {count}"
            )
        self.name = validate_metric_name(name)
        self.help = help
        self.bounds: Tuple[float, ...] = tuple(
            start * factor ** i for i in range(count)
        )
        self._counts = [0] * count
        self._overflow = 0
        self._sum = 0.0
        self._observations = 0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self.bounds, value)
        with self._lock:
            if index < len(self._counts):
                self._counts[index] += 1
            else:
                self._overflow += 1
            self._sum += value
            self._observations += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._observations

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._observations if self._observations else 0.0

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts; overflow appended last."""
        with self._lock:
            return list(self._counts) + [self._overflow]

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, ending
        with the ``+Inf`` bucket."""
        pairs: List[Tuple[float, int]] = []
        running = 0
        with self._lock:
            for bound, bucket in zip(self.bounds, self._counts):
                running += bucket
                pairs.append((bound, running))
            pairs.append((float("inf"), running + self._overflow))
        return pairs

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            counts = list(self._counts) + [self._overflow]
            observations = self._observations
            total = self._sum
            minimum = self._min if observations else None
            maximum = self._max if observations else None
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "count": observations,
            "sum": total,
            "min": minimum,
            "max": maximum,
            "bounds": list(self.bounds),
            "counts": counts,
        }


class MetricsRegistry:
    """Thread-safe, insertion-ordered collection of named metrics.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same object, and asking for an
    existing name as a different kind raises :class:`TelemetryError`.
    """

    def __init__(self) -> None:
        self._metrics: "Dict[str, object]" = {}
        self._lock = threading.Lock()

    def _get_or_create(self, kind: type, name: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise TelemetryError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, cannot re-register as "
                        f"{kind.kind}"
                    )
                return existing
            metric = kind(name, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        start: float = DEFAULT_HISTOGRAM_START,
        factor: float = DEFAULT_HISTOGRAM_FACTOR,
        count: int = DEFAULT_HISTOGRAM_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help=help, start=start, factor=factor,
            count=count,
        )

    def get(self, name: str) -> Optional[object]:
        """The metric registered under ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def names(self) -> List[str]:
        with self._lock:
            return list(self._metrics)

    def snapshot(self) -> List[Dict[str, object]]:
        """Point-in-time state of every metric, in registration order."""
        with self._lock:
            metrics = list(self._metrics.values())
        return [metric.snapshot() for metric in metrics]
