"""Metric primitives: counters, gauges, log-bucket histograms.

The hot path of a deployed phase tracker executes per committed branch,
so the primitives here are deliberately boring: a :class:`Counter` is
one float behind a lock, a :class:`Histogram` finds its bucket with a
binary search over a precomputed bound tuple. Nothing on the record
path allocates beyond what CPython needs for the call itself.

All metrics live in a :class:`MetricsRegistry`, which hands out
get-or-create references (two subsystems asking for the same counter
name share the instance) and produces the snapshots the exporters in
:mod:`repro.telemetry.export` render.

Naming follows Prometheus conventions: ``[a-zA-Z_:][a-zA-Z0-9_:]*``,
counters ending in ``_total``, durations in ``_seconds``.

Metrics may carry **labels** (``labels={"route": "/metrics"}``): each
distinct label set is its own series, registered and exported
independently under the shared metric name. Label names follow the
Prometheus label grammar; label values are arbitrary strings (the
exporter escapes quotes, backslashes and newlines). Re-registering one
name with different *kinds* is refused across all of its label sets.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import TelemetryError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def validate_metric_name(name: str) -> str:
    """Check a metric name against the Prometheus grammar."""
    if not _NAME_RE.match(name):
        raise TelemetryError(
            f"invalid metric name {name!r}; expected "
            "[a-zA-Z_:][a-zA-Z0-9_:]*"
        )
    return name


def sanitize_metric_name(raw: str) -> str:
    """Coerce an arbitrary string (e.g. a span path) into a legal name.

    Colons are legal in the Prometheus grammar but conventionally
    reserved for recording rules, so they are replaced too.
    """
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", raw)
    if not cleaned or not _NAME_RE.match(cleaned[0]):
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def validate_labels(
    labels: Optional[Mapping[str, object]],
) -> Dict[str, str]:
    """Normalize a label mapping: legal names, stringified values."""
    if not labels:
        return {}
    normalized: Dict[str, str] = {}
    for name in sorted(labels):
        if not _LABEL_RE.match(name):
            raise TelemetryError(
                f"invalid label name {name!r}; expected "
                "[a-zA-Z_][a-zA-Z0-9_]*"
            )
        if name == "le":
            raise TelemetryError(
                "label name 'le' is reserved for histogram buckets"
            )
        normalized[name] = str(labels[name])
    return normalized


def render_labels(labels: Mapping[str, str], extra: str = "") -> str:
    """The ``{name="value",...}`` suffix of one series (sorted names).

    ``extra`` is appended verbatim after the label pairs — the exporter
    uses it to merge the ``le`` bucket label into histogram series.
    """
    pairs = [
        f'{name}="{escape_label_value(value)}"'
        for name, value in sorted(labels.items())
    ]
    if extra:
        pairs.append(extra)
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


class Counter:
    """A monotonically increasing count (events, branches, hits)."""

    kind = "counter"

    __slots__ = ("name", "help", "labels", "_value", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.name = validate_metric_name(name)
        self.help = help
        self.labels = validate_labels(labels)
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labels": dict(self.labels),
            "value": self._value,
        }


class Gauge:
    """A value that can go up and down (occupancy, queue depth)."""

    kind = "gauge"

    __slots__ = ("name", "help", "labels", "_value", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.name = validate_metric_name(name)
        self.help = help
        self.labels = validate_labels(labels)
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labels": dict(self.labels),
            "value": self._value,
        }


#: Default histogram geometry: 1µs first bound, ×4 per bucket, 14
#: buckets -> top finite bound ~67s. Suits both per-branch latencies
#: (tens of ns land in the first bucket) and whole-experiment spans.
DEFAULT_HISTOGRAM_START = 1e-6
DEFAULT_HISTOGRAM_FACTOR = 4.0
DEFAULT_HISTOGRAM_BUCKETS = 14


class Histogram:
    """Fixed log-scale-bucket histogram of observed values.

    Bucket upper bounds are ``start * factor**i`` for ``i`` in
    ``range(count)``; values above the last bound land in the implicit
    overflow (``+Inf``) bucket. Bounds are precomputed so
    :meth:`observe` is a binary search plus three scalar updates.
    """

    kind = "histogram"

    __slots__ = (
        "name", "help", "labels", "bounds", "_counts", "_overflow",
        "_sum", "_observations", "_min", "_max", "_lock",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        start: float = DEFAULT_HISTOGRAM_START,
        factor: float = DEFAULT_HISTOGRAM_FACTOR,
        count: int = DEFAULT_HISTOGRAM_BUCKETS,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        if start <= 0:
            raise TelemetryError(f"histogram start must be > 0, got {start}")
        if factor <= 1.0:
            raise TelemetryError(
                f"histogram factor must be > 1, got {factor}"
            )
        if count < 1:
            raise TelemetryError(
                f"histogram bucket count must be >= 1, got {count}"
            )
        self.name = validate_metric_name(name)
        self.help = help
        self.labels = validate_labels(labels)
        self.bounds: Tuple[float, ...] = tuple(
            start * factor ** i for i in range(count)
        )
        self._counts = [0] * count
        self._overflow = 0
        self._sum = 0.0
        self._observations = 0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self.bounds, value)
        with self._lock:
            if index < len(self._counts):
                self._counts[index] += 1
            else:
                self._overflow += 1
            self._sum += value
            self._observations += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._observations

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._observations if self._observations else 0.0

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts; overflow appended last."""
        with self._lock:
            return list(self._counts) + [self._overflow]

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, ending
        with the ``+Inf`` bucket."""
        pairs: List[Tuple[float, int]] = []
        running = 0
        with self._lock:
            for bound, bucket in zip(self.bounds, self._counts):
                running += bucket
                pairs.append((bound, running))
            pairs.append((float("inf"), running + self._overflow))
        return pairs

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            counts = list(self._counts) + [self._overflow]
            observations = self._observations
            total = self._sum
            minimum = self._min if observations else None
            maximum = self._max if observations else None
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labels": dict(self.labels),
            "count": observations,
            "sum": total,
            "min": minimum,
            "max": maximum,
            "bounds": list(self.bounds),
            "counts": counts,
        }


class MetricsRegistry:
    """Thread-safe, insertion-ordered collection of named metrics.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name *and label set* returns the same object, and
    asking for an existing name as a different kind (under any label
    set) raises :class:`TelemetryError`. Each label set is its own
    series; :meth:`get` addresses a series by name plus labels.
    """

    def __init__(self) -> None:
        self._metrics: "Dict[str, object]" = {}
        self._kinds: Dict[str, str] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _series_key(
        name: str, labels: Optional[Mapping[str, object]]
    ) -> str:
        return name + render_labels(validate_labels(labels))

    def _get_or_create(
        self, kind: type, name: str,
        labels: Optional[Mapping[str, object]] = None, **kwargs,
    ):
        key = self._series_key(name, labels)
        with self._lock:
            registered = self._kinds.get(name)
            if registered is not None and registered != kind.kind:
                raise TelemetryError(
                    f"metric {name!r} already registered as "
                    f"{registered}, cannot re-register as {kind.kind}"
                )
            existing = self._metrics.get(key)
            if existing is not None:
                return existing
            metric = kind(name, labels=labels, **kwargs)
            self._metrics[key] = metric
            self._kinds[name] = kind.kind
            return metric

    def counter(
        self, name: str, help: str = "",
        labels: Optional[Mapping[str, object]] = None,
    ) -> Counter:
        return self._get_or_create(Counter, name, labels=labels, help=help)

    def gauge(
        self, name: str, help: str = "",
        labels: Optional[Mapping[str, object]] = None,
    ) -> Gauge:
        return self._get_or_create(Gauge, name, labels=labels, help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        start: float = DEFAULT_HISTOGRAM_START,
        factor: float = DEFAULT_HISTOGRAM_FACTOR,
        count: int = DEFAULT_HISTOGRAM_BUCKETS,
        labels: Optional[Mapping[str, object]] = None,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels=labels, help=help, start=start,
            factor=factor, count=count,
        )

    def get(
        self, name: str,
        labels: Optional[Mapping[str, object]] = None,
    ) -> Optional[object]:
        """The series registered under ``name`` (+ ``labels``), or
        ``None``."""
        with self._lock:
            return self._metrics.get(self._series_key(name, labels))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics or name in self._kinds

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def names(self) -> List[str]:
        """Series keys (name plus rendered labels), insertion-ordered."""
        with self._lock:
            return list(self._metrics)

    def snapshot(self) -> List[Dict[str, object]]:
        """Point-in-time state of every metric, in registration order."""
        with self._lock:
            metrics = list(self._metrics.values())
        return [metric.snapshot() for metric in metrics]
