"""repro.telemetry — metrics, structured events, and tracing.

The observability layer for the phase-tracking system. A deployed
:class:`~repro.core.online.PhaseTracker` is an always-on runtime
monitor; this package makes the monitor itself measurable:

- :mod:`repro.telemetry.metrics` — thread-safe :class:`Counter`,
  :class:`Gauge` and log-bucket :class:`Histogram` primitives in a
  :class:`MetricsRegistry`.
- :mod:`repro.telemetry.tracing` — :class:`Tracer`/:class:`Span`
  context-manager timing with parent/child nesting.
- :mod:`repro.telemetry.events` — an append-only JSONL
  :class:`EventLog` (one record per interval boundary plus lifecycle
  events) and :func:`read_events` to parse it back.
- :mod:`repro.telemetry.export` — the pluggable :class:`Exporter`
  interface with Prometheus text-format and JSON snapshot
  implementations.
- :mod:`repro.telemetry.hub` — :class:`Telemetry`, the one handle the
  instrumented layers (`PhaseTracker(telemetry=...)`, the experiment
  harness, the harness caches) share.

The package is dependency-free (stdlib only) and safe to import from
the hot path; every instrumentation point in the library is optional
and off by default.
"""

from repro.telemetry.events import EventLog, read_events
from repro.telemetry.export import (
    Exporter,
    JSONExporter,
    PrometheusExporter,
    exporter_for,
    parse_prometheus_text,
)
from repro.telemetry.hub import EventSubscription, Telemetry
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    render_labels,
    validate_labels,
)
from repro.telemetry.tracing import Span, SpanStats, Tracer

__all__ = [
    "Counter",
    "EventLog",
    "EventSubscription",
    "Exporter",
    "Gauge",
    "Histogram",
    "JSONExporter",
    "MetricsRegistry",
    "PrometheusExporter",
    "Span",
    "SpanStats",
    "Telemetry",
    "Tracer",
    "escape_label_value",
    "exporter_for",
    "parse_prometheus_text",
    "read_events",
    "render_labels",
    "validate_labels",
]
