"""Metric exporters: Prometheus text format and JSON snapshots.

An :class:`Exporter` turns a
:class:`~repro.telemetry.metrics.MetricsRegistry` snapshot into text.
Two implementations ship:

- :class:`PrometheusExporter` — the Prometheus text exposition format
  (``# HELP``/``# TYPE`` comments, ``_bucket{le="..."}`` cumulative
  histogram series), scrapeable by any Prometheus-compatible agent or
  diffable as plain text.
- :class:`JSONExporter` — the raw snapshot as one JSON object, for
  programmatic consumers.

:func:`exporter_for` picks an exporter from a format name or a file
extension (``.json`` selects JSON, anything else Prometheus), which is
how the CLI's ``--metrics PATH`` chooses.
"""

from __future__ import annotations

import json
import math
from abc import ABC, abstractmethod
from typing import Dict, List, Optional

from repro.errors import TelemetryError
from repro.telemetry.metrics import MetricsRegistry, render_labels


class Exporter(ABC):
    """Renders a metrics registry to text; pluggable."""

    #: Short format identifier (used by :func:`exporter_for`).
    format_name: str = ""

    @abstractmethod
    def render(self, registry: MetricsRegistry) -> str:
        """Serialize the registry's current state."""

    def write(self, registry: MetricsRegistry, path: str) -> None:
        """Render and write to ``path`` atomically enough for a CLI."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render(registry))


def _format_value(value: float) -> str:
    """Prometheus sample formatting: integers bare, +Inf spelled out."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class PrometheusExporter(Exporter):
    """Prometheus text exposition format (version 0.0.4)."""

    format_name = "prometheus"

    def render(self, registry: MetricsRegistry) -> str:
        lines: List[str] = []
        announced: set = set()
        for snap in registry.snapshot():
            name = snap["name"]
            if name not in announced:
                announced.add(name)
                if snap["help"]:
                    lines.append(f"# HELP {name} {snap['help']}")
                lines.append(f"# TYPE {name} {snap['type']}")
            labels = snap.get("labels") or {}
            suffix = render_labels(labels)
            if snap["type"] in ("counter", "gauge"):
                lines.append(
                    f"{name}{suffix} {_format_value(snap['value'])}"
                )
                continue
            # Histogram: cumulative buckets, then _sum and _count. The
            # le bucket label merges into any series labels.
            running = 0
            bounds = list(snap["bounds"]) + [math.inf]
            for bound, count in zip(bounds, snap["counts"]):
                running += count
                bucket = render_labels(
                    labels, extra=f'le="{_format_value(bound)}"'
                )
                lines.append(f"{name}_bucket{bucket} {running}")
            lines.append(
                f"{name}_sum{suffix} {_format_value(snap['sum'])}"
            )
            lines.append(f"{name}_count{suffix} {snap['count']}")
        return "\n".join(lines) + ("\n" if lines else "")


class JSONExporter(Exporter):
    """The registry snapshot as one indented JSON object."""

    format_name = "json"

    def render(self, registry: MetricsRegistry) -> str:
        payload = {
            "format": "repro.telemetry/v1",
            "metrics": registry.snapshot(),
        }
        return json.dumps(payload, indent=2, default=float) + "\n"


_EXPORTERS: Dict[str, type] = {
    PrometheusExporter.format_name: PrometheusExporter,
    JSONExporter.format_name: JSONExporter,
}


def exporter_for(
    format: Optional[str] = None, path: Optional[str] = None
) -> Exporter:
    """Build an exporter from an explicit format or a target path.

    An explicit ``format`` wins; otherwise a ``.json`` extension on
    ``path`` selects JSON and everything else gets Prometheus text.
    """
    if format is not None:
        try:
            return _EXPORTERS[format]()
        except KeyError:
            raise TelemetryError(
                f"unknown exporter format {format!r}; expected one of "
                f"{sorted(_EXPORTERS)}"
            ) from None
    if path is not None and path.lower().endswith(".json"):
        return JSONExporter()
    return PrometheusExporter()


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse exposition text back into ``{series_name: value}``.

    Intended for tests and the dashboard example: histogram bucket
    series keep their ``{le=...}`` suffix as part of the key.
    """
    samples: Dict[str, float] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            key, raw = line.rsplit(None, 1)
            samples[key] = float(raw.replace("+Inf", "inf"))
        except ValueError:
            raise TelemetryError(
                f"unparseable exposition line {number}: {line!r}"
            ) from None
    return samples
