"""Span-based timing with parent/child nesting.

A :class:`Tracer` hands out :class:`Span` context managers::

    with tracer.span("interval"):
        with tracer.span("classify"):
            ...

Nested spans get slash-joined paths (``interval/classify``), so the
per-stage aggregates distinguish the same stage name under different
parents. Aggregation is per-path — count, total, min, max — and, when
the tracer is wired to a :class:`~repro.telemetry.metrics.MetricsRegistry`,
each path also feeds a log-bucket duration histogram named
``repro_span_<path>_seconds`` so span timings ride along in every
metrics export.

Span stacks are thread-local; concurrent threads nest independently.
The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import TelemetryError
from repro.telemetry.metrics import (
    Histogram,
    MetricsRegistry,
    sanitize_metric_name,
)


@dataclass
class SpanStats:
    """Aggregate timing for one span path."""

    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = float("inf")
    max_seconds: float = float("-inf")

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        if seconds < self.min_seconds:
            self.min_seconds = seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


class Span:
    """One timed region; use only as a context manager."""

    __slots__ = ("tracer", "name", "path", "start_time", "_entered")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self.tracer = tracer
        self.name = name
        self.path: Optional[str] = None
        self.start_time: Optional[float] = None
        self._entered = False

    def __enter__(self) -> "Span":
        if self._entered:
            raise TelemetryError(
                f"span {self.name!r} entered twice; spans are single-use"
            )
        self._entered = True
        self.tracer._push(self)
        self.start_time = self.tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = self.tracer.clock() - self.start_time
        self.tracer._pop(self, elapsed)


class Tracer:
    """Factory and aggregator for nested timing spans."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.registry = registry
        self.clock = clock
        self._stats: Dict[str, SpanStats] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()
        self._local = threading.local()

    def span(self, name: str) -> Span:
        """A new span named ``name``, nested under the active span."""
        if not name:
            raise TelemetryError("span name must be non-empty")
        return Span(self, name)

    # -- span stack (thread-local) ---------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        parent_path = stack[-1].path if stack else None
        span.path = (
            f"{parent_path}/{span.name}" if parent_path else span.name
        )
        stack.append(span)

    def _pop(self, span: Span, elapsed: float) -> None:
        stack = self._stack()
        if not stack or stack[-1] is not span:
            raise TelemetryError(
                f"span {span.name!r} exited out of order"
            )
        stack.pop()
        self._record(span.path, elapsed)

    # -- aggregation -----------------------------------------------------

    def _record(self, path: str, elapsed: float) -> None:
        with self._lock:
            stats = self._stats.get(path)
            if stats is None:
                stats = SpanStats()
                self._stats[path] = stats
            stats.record(elapsed)
            histogram = self._histograms.get(path)
        if histogram is None and self.registry is not None:
            histogram = self.registry.histogram(
                f"repro_span_{sanitize_metric_name(path)}_seconds",
                help=f"Duration of the {path!r} span",
            )
            with self._lock:
                self._histograms[path] = histogram
        if histogram is not None:
            histogram.observe(elapsed)

    @property
    def active_depth(self) -> int:
        """Nesting depth of the calling thread's open spans."""
        return len(self._stack())

    def timings(self) -> Dict[str, SpanStats]:
        """Per-path aggregate stats (a shallow copy; stats are live)."""
        with self._lock:
            return dict(self._stats)
