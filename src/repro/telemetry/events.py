"""Structured JSONL event stream.

Every record is one JSON object per line with three envelope fields —
``event`` (the record type), ``seq`` (a per-log monotonically
increasing sequence number) and ``ts`` (wall-clock seconds) — plus the
emitter's payload fields. The stream is append-only and flushed per
record, so a crashed run still leaves a parseable prefix.

Well-known record types emitted by the instrumented layers:

``tracker_start``
    One per :class:`~repro.core.online.PhaseTracker` construction;
    carries the classifier configuration and interval length.
``interval``
    One per completed interval: phase id, transition flag, phase-change
    flag, the outstanding next-phase prediction and its confidence, the
    predicted length class, signature-table occupancy, cumulative
    threshold halvings, CPI and branch count.
``listener_error``
    A phase-change listener raised; interval completion continued.
``experiment_start`` / ``experiment_end`` / ``experiment_error``
    Harness lifecycle, with the experiment name, scale and duration.
``run_start`` / ``run_end``
    One CLI invocation.

:func:`read_events` parses a stream back into dicts, validating the
envelope — the round-trip used by the test suite and any downstream
consumer.
"""

from __future__ import annotations

import io
import json
import threading
import time
from typing import Callable, Dict, IO, Iterable, List, Optional, Union

from repro.errors import TelemetryError

#: Envelope fields present on every record.
ENVELOPE_FIELDS = ("event", "seq", "ts")


def _jsonable(value: object) -> object:
    """Best-effort coercion for non-JSON scalars (numpy ints/floats)."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return repr(value)


class EventLog:
    """Append-only JSONL sink, thread-safe, one record per ``emit``.

    Parameters
    ----------
    path:
        File to create/truncate and stream records into.
    stream:
        An already-open text stream (e.g. ``io.StringIO``) used instead
        of ``path``. Exactly one of the two must be given.
    clock:
        Timestamp source; defaults to :func:`time.time`.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        stream: Optional[IO[str]] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if (path is None) == (stream is None):
            raise TelemetryError(
                "EventLog needs exactly one of path= or stream="
            )
        self._owns_stream = stream is None
        self._stream: Optional[IO[str]] = (
            stream if stream is not None
            else open(path, "w", encoding="utf-8")
        )
        self.path = path
        self.clock = clock
        self._seq = 0
        self._lock = threading.Lock()

    def emit(self, event: str, /, **fields: object) -> Dict[str, object]:
        """Write one record; returns the record as emitted."""
        if not event:
            raise TelemetryError("event type must be non-empty")
        for reserved in ENVELOPE_FIELDS:
            if reserved in fields:
                raise TelemetryError(
                    f"field {reserved!r} is part of the event envelope"
                )
        with self._lock:
            if self._stream is None:
                raise TelemetryError("EventLog is closed")
            record: Dict[str, object] = {
                "event": event,
                "seq": self._seq,
                "ts": round(self.clock(), 6),
            }
            record.update(fields)
            self._stream.write(
                json.dumps(
                    record, separators=(",", ":"), default=_jsonable
                )
            )
            self._stream.write("\n")
            self._stream.flush()
            self._seq += 1
        return record

    @property
    def records_emitted(self) -> int:
        return self._seq

    @property
    def closed(self) -> bool:
        return self._stream is None

    def close(self) -> None:
        """Close the sink (owned files only); further emits raise."""
        with self._lock:
            stream = self._stream
            self._stream = None
        if stream is not None and self._owns_stream:
            stream.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_events(
    source: Union[str, IO[str], Iterable[str]],
) -> List[Dict[str, object]]:
    """Parse a JSONL event stream back into records.

    ``source`` may be a path, an open text stream, or an iterable of
    lines. Each record's envelope is validated and ``seq`` is checked
    to be strictly increasing.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    elif isinstance(source, io.IOBase) or hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        lines = list(source)

    records: List[Dict[str, object]] = []
    last_seq = -1
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise TelemetryError(
                f"event stream line {number} is not valid JSON: {error}"
            ) from None
        if not isinstance(record, dict):
            raise TelemetryError(
                f"event stream line {number} is not an object"
            )
        for field in ENVELOPE_FIELDS:
            if field not in record:
                raise TelemetryError(
                    f"event stream line {number} lacks envelope field "
                    f"{field!r}"
                )
        if record["seq"] <= last_seq:
            raise TelemetryError(
                f"event stream line {number}: seq {record['seq']} not "
                f"increasing (previous {last_seq})"
            )
        last_seq = record["seq"]
        records.append(record)
    return records
