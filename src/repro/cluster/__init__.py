"""``repro.cluster`` — the sharded multi-process phase service.

A front :class:`~repro.cluster.dispatcher.ClusterDispatcher` owns the
public NDJSON TCP endpoint and proxies sessions to N supervised worker
processes (each a full :class:`~repro.service.server.PhaseService`)
over per-worker Unix sockets, routed by consistent hash over a fixed
shard space (:mod:`repro.cluster.routing`). Crashed workers restart
with persistence recovery (:mod:`repro.cluster.supervisor`); live
sessions move between workers byte-identically
(:mod:`repro.cluster.migration`).

Run one from the CLI::

    repro-phases serve --workers 4 --runtime-dir /run/repro \
        --data-dir /var/lib/repro --http-port 8080

or in-process (tests, benchmarks)::

    from repro.cluster import start_cluster_in_thread
    with start_cluster_in_thread(workers=2, runtime_dir=tmp) as cluster:
        client = PhaseServiceClient(port=cluster.port)
"""

from repro.cluster.dispatcher import (
    ClusterDispatcher,
    ClusterHandle,
    start_cluster_in_thread,
)
from repro.cluster.migration import SessionMigrator
from repro.cluster.routing import DEFAULT_SHARDS, ShardMap, shard_of
from repro.cluster.supervisor import (
    ClusterSupervisor,
    WorkerHandle,
    WorkerSpec,
    worker_data_dir,
)

__all__ = [
    "ClusterDispatcher",
    "ClusterHandle",
    "ClusterSupervisor",
    "DEFAULT_SHARDS",
    "SessionMigrator",
    "ShardMap",
    "WorkerHandle",
    "WorkerSpec",
    "shard_of",
    "start_cluster_in_thread",
    "worker_data_dir",
]
