"""Live session migration between cluster workers.

The whole point of migration is that it is *boring*: it reuses the
snapshot/restore path that PR 2 proved byte-identical and PR 4/7 made
durable, and it wraps that path in just enough sequencing that no frame
can slip through mid-handoff. The sequence for ``migrate(session, target)``:

1. **Gate.** An :class:`asyncio.Event` is registered for the session;
   every data-path request for that session blocks on it *before*
   routing, so nothing new reaches the source worker.
2. **Quiesce.** Wait until the session's in-flight count reaches zero —
   requests already past the gate finish and their pushes are flushed.
3. **Snapshot.** ``snapshot`` on the source over the dispatcher's
   control channel: the full tracker state, exactly what a client
   would get.
4. **Close the source.** The source worker journals the close, so a
   crash-recovered source will not resurrect a moved session.
5. **Open on the target** with the snapshot (same name). Restore is
   byte-identical, so the first report produced on the target is the
   one the source would have produced.
6. **Flip the route** (``table[session] = target``) and lift the gate.
   Queued frames — the client was never told anything happened — now
   flow to the target and classify exactly as they would have.

If step 5 fails, the snapshot is re-opened on the *source* (which
still has the journaled history) and the error propagates: the session
never exists in zero or two places.

Byte-identity across the handoff holds because no observe executes
anywhere between the snapshot and the route flip — the gate plus the
in-flight drain guarantee the snapshot captures the complete prefix of
the stream, and restore replays none of it.

:meth:`SessionMigrator.drain_worker` composes this into zero-downtime
worker removal: pull the worker from the shard map (new sessions stop
landing on it), migrate every live session it owns to its new natural
owner, then stop the process gracefully. :meth:`SessionMigrator.rebalance`
moves every session whose table entry disagrees with the current shard
map — the follow-up to ``grow``.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional

from repro.errors import ClusterError, ReproError
from repro.service import protocol
from repro.cluster.supervisor import UP


class SessionMigrator:
    """Moves live sessions between the dispatcher's workers."""

    def __init__(self, dispatcher) -> None:
        self._dispatcher = dispatcher

    # -- single-session migration ----------------------------------------------

    async def migrate(
        self, session: str, target: Optional[str] = None
    ) -> dict:
        """Move ``session`` to ``target`` (default: its natural shard
        owner). Returns a summary; ``migrated`` is ``False`` when the
        session is already where it belongs."""
        d = self._dispatcher
        source = d._sessions.get(session)
        if source is None:
            raise ClusterError(
                f"unknown session {session!r}: only live sessions "
                f"(open through this dispatcher) can migrate"
            )
        if session in d._gates:
            raise ClusterError(
                f"session {session!r} is already migrating"
            )
        if target is None:
            target = d.shard_map.owner_of(session)
        self._require_up(target)
        if target == source:
            return {
                "session": session, "worker": source, "migrated": False,
            }
        gate = asyncio.Event()
        d._gates[session] = gate
        d._emit("cluster_migration_started", session=session,
                source=source, target=target)
        try:
            await self._quiesce(session)
            source_channel = d.control_channel(source)
            target_channel = d.control_channel(target)
            result = await source_channel.request(
                protocol.SnapshotRequest(
                    id=source_channel.next_id(), session=session
                ),
                resendable=True,
            )
            snapshot = result["snapshot"]
            await source_channel.request(
                protocol.CloseRequest(
                    id=source_channel.next_id(), session=session
                )
            )
            try:
                await target_channel.request(
                    protocol.OpenRequest(
                        id=target_channel.next_id(),
                        session=session,
                        config=None,
                        interval_instructions=None,
                        snapshot=snapshot,
                    )
                )
            except (ClusterError, ReproError) as error:
                # The session must not vanish: put it back where it
                # was. The source still accepts the name (its close
                # freed it) and the snapshot restores byte-identically.
                await source_channel.request(
                    protocol.OpenRequest(
                        id=source_channel.next_id(),
                        session=session,
                        config=None,
                        interval_instructions=None,
                        snapshot=snapshot,
                    )
                )
                d.migrations_failed += 1
                if d._telemetry is not None:
                    d._m_migrations_failed.inc()
                d._emit("cluster_migration_failed", session=session,
                        source=source, target=target, error=str(error))
                raise ClusterError(
                    f"migration of {session!r} to {target} failed and "
                    f"was rolled back to {source}: {error}"
                ) from None
            d._sessions[session] = target
            d.migrations_completed += 1
            if d._telemetry is not None:
                d._m_migrations.inc()
            d._emit("cluster_migration_completed", session=session,
                    source=source, target=target)
            return {
                "session": session, "from": source, "to": target,
                "migrated": True,
            }
        finally:
            d._gates.pop(session, None)
            gate.set()

    async def _quiesce(self, session: str) -> None:
        """Wait for the session's in-flight requests to finish (new
        ones are already gated)."""
        d = self._dispatcher
        deadline = time.monotonic() + d.migration_timeout
        while d._inflight.get(session, 0):
            if time.monotonic() >= deadline:
                raise ClusterError(
                    f"session {session!r} did not quiesce within "
                    f"{d.migration_timeout:.0f}s"
                )
            await asyncio.sleep(0.005)

    # -- fleet-level operations ------------------------------------------------

    async def drain_worker(self, worker_id: str) -> dict:
        """Remove a worker with zero session downtime: stop routing new
        sessions to it, migrate its live sessions away, stop the
        process (graceful drain + final checkpoint). The worker stays
        ``stopped`` and is never restarted."""
        d = self._dispatcher
        if worker_id not in d.shard_map:
            raise ClusterError(
                f"worker {worker_id!r} is not in the shard map"
            )
        if len(d.shard_map) <= 1:
            raise ClusterError(
                "cannot drain the last live worker; grow first"
            )
        d.shard_map.remove_worker(worker_id)
        migrated: List[str] = []
        try:
            for session, owner in sorted(d._sessions.items()):
                if owner != worker_id:
                    continue
                await self.migrate(session)
                migrated.append(session)
        except ClusterError:
            # Leave the worker out of the map (it is being retired),
            # but surface which sessions made it across.
            d._emit("cluster_drain_failed", worker=worker_id,
                    migrated=migrated)
            raise
        await d.supervisor.stop_worker(worker_id, timeout=d.drain_timeout)
        channel = d._control.pop(worker_id, None)
        if channel is not None:
            await channel.close()
        d.refresh_cluster_metrics()
        d._emit("cluster_worker_drained", worker=worker_id,
                migrated=len(migrated))
        return {
            "worker": worker_id,
            "migrated": migrated,
            "stopped": True,
            "workers": list(d.shard_map.workers),
        }

    async def rebalance(self) -> dict:
        """Move every session whose current worker disagrees with the
        shard map — the follow-up to ``grow`` (and to an abandoned
        worker's removal)."""
        d = self._dispatcher
        moved: Dict[str, dict] = {}
        for session, owner in sorted(d._sessions.items()):
            natural = d.shard_map.owner_of(session)
            if owner == natural:
                continue
            handle = d.supervisor.workers.get(natural)
            if handle is None or handle.state != UP:
                continue
            summary = await self.migrate(session, natural)
            moved[session] = {
                "from": summary["from"], "to": summary["to"],
            }
        d.refresh_cluster_metrics()
        return {"migrated": moved, "count": len(moved)}

    # -- helpers ---------------------------------------------------------------

    def _require_up(self, worker_id: str) -> None:
        handle = self._dispatcher.supervisor.workers.get(worker_id)
        if handle is None:
            raise ClusterError(f"no such worker: {worker_id!r}")
        if handle.state != UP:
            raise ClusterError(
                f"worker {worker_id} is {handle.state}; migration "
                f"needs an up target"
            )
