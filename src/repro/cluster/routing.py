"""Consistent-hash session routing for the cluster dispatcher.

Two layers, deliberately separate:

1. **Session → shard**: ``shard_of(session)`` hashes the session name
   with CRC-32 into one of ``num_shards`` fixed buckets. CRC-32 is
   process-independent (unlike the salted built-in ``hash``), so every
   dispatcher incarnation — and every test — agrees on the placement.
2. **Shard → worker**: :class:`ShardMap` assigns each shard to one live
   worker by rendezvous (highest-random-weight) hashing. Every worker
   scores every shard with a keyed BLAKE2b digest; the highest score
   owns it. Rendezvous gives the two invariants the cluster needs
   without any token ring bookkeeping:

   - **exactly one owner**: the max over a fixed score table is
     deterministic (ties broken by worker id, though 64-bit digest ties
     are astronomically unlikely);
   - **minimal movement**: removing a worker reassigns *only its own*
     shards (every other shard's winning score is untouched), and
     adding one steals only the shards the newcomer now wins —
     ~``1/N`` of them in expectation.

The property tests in ``tests/cluster/test_routing.py`` pin both
invariants down with hypothesis.

The shard count is a fixed routing granularity, not a worker count:
64 shards over 4 workers means each worker owns ~16 shards, and a
rebalance moves whole shards. It only bounds how evenly load can
spread (you cannot use more workers than shards), so it is sized
comfortably above any worker count a single dispatcher box can host.
"""

from __future__ import annotations

import hashlib
import zlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ClusterError

#: Default number of fixed shards a session name hashes into.
DEFAULT_SHARDS = 64


def shard_of(session: str, num_shards: int = DEFAULT_SHARDS) -> int:
    """The fixed shard bucket for a session name.

    Stable across processes and Python versions: CRC-32 of the UTF-8
    name, modulo the shard count.
    """
    return zlib.crc32(session.encode("utf-8")) % num_shards


def _score(shard: int, worker: str) -> int:
    """Rendezvous weight of ``worker`` for ``shard`` — a 64-bit keyed
    digest, so scores for different shards are independent."""
    digest = hashlib.blake2b(
        f"{shard}|{worker}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class ShardMap:
    """Assigns every shard to exactly one live worker.

    Membership changes (:meth:`add_worker` / :meth:`remove_worker`)
    invalidate the cached assignment; lookups recompute it lazily in
    one pass over ``num_shards × num_workers`` scores.
    """

    def __init__(
        self,
        workers: Iterable[str] = (),
        num_shards: int = DEFAULT_SHARDS,
    ) -> None:
        if num_shards <= 0:
            raise ClusterError(
                f"num_shards must be positive, got {num_shards}"
            )
        self.num_shards = num_shards
        self._workers: List[str] = []
        self._owners: Optional[Tuple[str, ...]] = None
        for worker in workers:
            self.add_worker(worker)

    # -- membership ------------------------------------------------------------

    @property
    def workers(self) -> Tuple[str, ...]:
        """Live worker ids, sorted."""
        return tuple(sorted(self._workers))

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker: str) -> bool:
        return worker in self._workers

    def add_worker(self, worker: str) -> None:
        if not worker or not isinstance(worker, str):
            raise ClusterError(
                f"worker id must be a non-empty string, got {worker!r}"
            )
        if worker in self._workers:
            raise ClusterError(f"worker {worker!r} is already in the map")
        self._workers.append(worker)
        self._owners = None

    def remove_worker(self, worker: str) -> None:
        if worker not in self._workers:
            raise ClusterError(f"worker {worker!r} is not in the map")
        self._workers.remove(worker)
        self._owners = None

    # -- assignment ------------------------------------------------------------

    def _assignment(self) -> Tuple[str, ...]:
        if self._owners is None:
            if not self._workers:
                raise ClusterError(
                    "shard map has no live workers to route to"
                )
            self._owners = tuple(
                max(
                    self._workers,
                    key=lambda worker: (_score(shard, worker), worker),
                )
                for shard in range(self.num_shards)
            )
        return self._owners

    def owner_of_shard(self, shard: int) -> str:
        """The worker that owns ``shard``."""
        if not 0 <= shard < self.num_shards:
            raise ClusterError(
                f"shard {shard} out of range [0, {self.num_shards})"
            )
        return self._assignment()[shard]

    def owner_of(self, session: str) -> str:
        """The worker a session name hashes to."""
        return self.owner_of_shard(shard_of(session, self.num_shards))

    def shards_of(self, worker: str) -> List[int]:
        """All shards currently owned by ``worker`` (empty when the
        worker is not in the map)."""
        if worker not in self._workers:
            return []
        return [
            shard
            for shard, owner in enumerate(self._assignment())
            if owner == worker
        ]

    def occupancy(self) -> Dict[str, int]:
        """Shard count per live worker (including zero-shard workers)."""
        counts = {worker: 0 for worker in self.workers}
        for owner in self._assignment():
            counts[owner] += 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe description for ``cluster status`` / ``/v1/cluster``."""
        return {
            "num_shards": self.num_shards,
            "workers": list(self.workers),
            "occupancy": self.occupancy() if self._workers else {},
        }
