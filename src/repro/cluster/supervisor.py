"""Worker process lifecycle: spawn, readiness, restart, stop.

:class:`ClusterSupervisor` owns the worker *processes*; the dispatcher
owns the *routing*. The split keeps the failure story simple: the
supervisor only knows how to (re)launch ``python -m repro.cluster.worker``
with the right flags and how to tell when one is ready or dead; the
dispatcher decides what a death means for in-flight sessions.

Readiness is end-to-end, not a banner grep: a worker is ready when its
Unix socket accepts a connection *and answers a ping*. Because a
worker's :class:`~repro.service.server.PhaseService` recovers its
per-worker data dir during construction — before binding — readiness
also implies persistence recovery is complete, which is exactly the
property the kill-9 failover test leans on.

Each worker gets:

- a stable id (``w0``, ``w1``, …) that survives restarts,
- a socket at ``<runtime_dir>/<id>.sock``,
- a data dir at ``<data_root>/<id>`` (when the cluster is durable) —
  the same directory across restarts, so recovery finds the journal,
- stdout/stderr captured to ``<runtime_dir>/<id>.log``.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import ClusterError
from repro.service import protocol

#: Worker process states.
STARTING = "starting"
UP = "up"
DOWN = "down"      # exited unexpectedly; restart pending or exhausted
STOPPED = "stopped"  # deliberately stopped (drained); never restarted


@dataclass
class WorkerSpec:
    """Everything needed to (re)launch one worker identically."""

    worker_id: str
    uds_path: str
    data_dir: Optional[str] = None
    sync: str = "batch"
    checkpoint_interval: float = 30.0
    max_sessions: int = 1024
    pool_slots: Optional[int] = None
    coalesce: bool = False
    coalesce_window: float = 0.0
    queue_size: int = 32
    max_connections: int = 1024
    idle_ttl: Optional[float] = None
    drain_timeout: float = 30.0

    def argv(self, parent_pid: int) -> List[str]:
        argv = [
            sys.executable, "-m", "repro.cluster.worker",
            "--uds", self.uds_path,
            "--worker-id", self.worker_id,
            "--sync", self.sync,
            "--checkpoint-interval", str(self.checkpoint_interval),
            "--max-sessions", str(self.max_sessions),
            "--queue-size", str(self.queue_size),
            "--max-connections", str(self.max_connections),
            "--drain-timeout", str(self.drain_timeout),
            "--parent-pid", str(parent_pid),
        ]
        if self.data_dir is not None:
            argv += ["--data-dir", self.data_dir]
        if self.pool_slots is not None:
            argv += ["--pool-slots", str(self.pool_slots)]
        if self.coalesce:
            argv += [
                "--coalesce",
                "--coalesce-window", str(self.coalesce_window),
            ]
        if self.idle_ttl is not None:
            argv += ["--idle-ttl", str(self.idle_ttl)]
        return argv


@dataclass
class WorkerHandle:
    """One supervised worker process (identity survives restarts)."""

    spec: WorkerSpec
    log_path: str
    process: Optional[subprocess.Popen] = None
    state: str = STARTING
    restarts: int = 0
    started_at: float = field(default_factory=time.monotonic)

    @property
    def worker_id(self) -> str:
        return self.spec.worker_id

    @property
    def uds_path(self) -> str:
        return self.spec.uds_path

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def exited(self) -> Optional[int]:
        """The exit code when the process has exited, else ``None``."""
        if self.process is None:
            return None
        return self.process.poll()

    def to_dict(self) -> Dict[str, object]:
        return {
            "worker_id": self.worker_id,
            "state": self.state,
            "pid": self.pid,
            "restarts": self.restarts,
            "uds_path": self.uds_path,
            "data_dir": self.spec.data_dir,
        }


def worker_data_dir(data_root: str, worker_id: str) -> str:
    """The per-worker durable directory under the cluster data root.

    Deterministic so a restarted worker — or a whole restarted cluster —
    recovers the same journal and checkpoints it wrote before.
    """
    return os.path.join(data_root, worker_id)


class ClusterSupervisor:
    """Launches and supervises the worker fleet.

    Parameters
    ----------
    runtime_dir:
        Directory for sockets and captured worker logs; created if
        missing. Keep it on a filesystem that allows Unix sockets
        (i.e. not some network mounts).
    data_root:
        When given, workers are durable: worker ``wN`` persists to
        ``<data_root>/wN`` and recovers it on every (re)start.
    max_restarts:
        Crash-restart budget *per worker*. Exhausting it leaves the
        worker ``down`` — routing to it fails loudly rather than
        thrashing on a crash loop.
    ready_timeout:
        Seconds to wait for a spawned worker to answer a ping.
    """

    def __init__(
        self,
        runtime_dir: str,
        *,
        data_root: Optional[str] = None,
        sync: str = "batch",
        checkpoint_interval: float = 30.0,
        max_sessions: int = 1024,
        pool_slots: Optional[int] = None,
        coalesce: bool = False,
        coalesce_window: float = 0.0,
        queue_size: int = 32,
        max_connections: int = 1024,
        idle_ttl: Optional[float] = None,
        drain_timeout: float = 30.0,
        max_restarts: int = 5,
        ready_timeout: float = 30.0,
        restart_backoff: float = 0.2,
        telemetry=None,
    ) -> None:
        self.runtime_dir = Path(runtime_dir)
        self.runtime_dir.mkdir(parents=True, exist_ok=True)
        self.data_root = data_root
        self.sync = sync
        self.checkpoint_interval = checkpoint_interval
        self.max_sessions = max_sessions
        self.pool_slots = pool_slots
        self.coalesce = coalesce
        self.coalesce_window = coalesce_window
        self.queue_size = queue_size
        self.max_connections = max_connections
        self.idle_ttl = idle_ttl
        self.drain_timeout = drain_timeout
        self.max_restarts = max_restarts
        self.ready_timeout = ready_timeout
        self.restart_backoff = restart_backoff
        self._telemetry = telemetry
        self._next_index = 0
        self.workers: Dict[str, WorkerHandle] = {}

    # -- spawn / readiness -----------------------------------------------------

    def _make_spec(self, worker_id: str) -> WorkerSpec:
        data_dir = (
            worker_data_dir(self.data_root, worker_id)
            if self.data_root is not None else None
        )
        return WorkerSpec(
            worker_id=worker_id,
            uds_path=str(self.runtime_dir / f"{worker_id}.sock"),
            data_dir=data_dir,
            sync=self.sync,
            checkpoint_interval=self.checkpoint_interval,
            max_sessions=self.max_sessions,
            pool_slots=self.pool_slots,
            coalesce=self.coalesce,
            coalesce_window=self.coalesce_window,
            queue_size=self.queue_size,
            max_connections=self.max_connections,
            idle_ttl=self.idle_ttl,
            drain_timeout=self.drain_timeout,
        )

    def allocate_worker_id(self) -> str:
        """The next never-used worker id (``w0``, ``w1``, …)."""
        while True:
            worker_id = f"w{self._next_index}"
            self._next_index += 1
            if worker_id not in self.workers:
                return worker_id

    def _launch(self, handle: WorkerHandle) -> None:
        env = dict(os.environ)
        # The worker must import this very build of repro even when the
        # supervisor was started from a source checkout.
        repro_root = str(Path(__file__).resolve().parents[2])
        parts = [repro_root] + [
            p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p
        ]
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        log = open(handle.log_path, "ab")
        try:
            handle.process = subprocess.Popen(
                handle.spec.argv(parent_pid=os.getpid()),
                stdout=log,
                stderr=subprocess.STDOUT,
                env=env,
            )
        finally:
            log.close()
        handle.state = STARTING
        handle.started_at = time.monotonic()
        self._emit("cluster_worker_started", worker=handle.worker_id,
                   pid=handle.pid, restarts=handle.restarts)

    async def _wait_ready(self, handle: WorkerHandle) -> None:
        deadline = time.monotonic() + self.ready_timeout
        ping = protocol.encode(
            protocol.request_payload(protocol.PingRequest(id=1))
        )
        while time.monotonic() < deadline:
            code = handle.exited()
            if code is not None:
                handle.state = DOWN
                raise ClusterError(
                    f"worker {handle.worker_id} exited with code {code} "
                    f"before becoming ready (log: {handle.log_path})"
                )
            try:
                reader, writer = await asyncio.open_unix_connection(
                    handle.uds_path
                )
            except OSError:
                await asyncio.sleep(0.05)
                continue
            try:
                writer.write(ping)
                await writer.drain()
                line = await asyncio.wait_for(reader.readline(), 5.0)
            except (OSError, asyncio.TimeoutError):
                line = b""
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except Exception:
                    pass
            if line:
                handle.state = UP
                self._emit("cluster_worker_ready",
                           worker=handle.worker_id, pid=handle.pid)
                return
            await asyncio.sleep(0.05)
        raise ClusterError(
            f"worker {handle.worker_id} did not become ready within "
            f"{self.ready_timeout:.0f}s (log: {handle.log_path})"
        )

    async def start_worker(self, worker_id: Optional[str] = None) -> WorkerHandle:
        """Spawn a new worker and wait until it answers a ping."""
        worker_id = worker_id or self.allocate_worker_id()
        if worker_id in self.workers:
            raise ClusterError(f"worker {worker_id!r} already exists")
        spec = self._make_spec(worker_id)
        handle = WorkerHandle(
            spec=spec,
            log_path=str(self.runtime_dir / f"{worker_id}.log"),
        )
        self.workers[worker_id] = handle
        self._launch(handle)
        await self._wait_ready(handle)
        return handle

    async def restart_worker(self, worker_id: str) -> WorkerHandle:
        """Relaunch a crashed worker on its original socket and data
        dir; readiness implies its persisted sessions are recovered."""
        handle = self._get(worker_id)
        if handle.state == STOPPED:
            raise ClusterError(
                f"worker {worker_id} was deliberately stopped; "
                f"it is not restartable"
            )
        if handle.restarts >= self.max_restarts:
            raise ClusterError(
                f"worker {worker_id} exhausted its restart budget "
                f"({self.max_restarts})"
            )
        handle.restarts += 1
        await asyncio.sleep(
            min(self.restart_backoff * handle.restarts, 2.0)
        )
        self._launch(handle)
        await self._wait_ready(handle)
        self._emit("cluster_worker_restarted", worker=worker_id,
                   pid=handle.pid, restarts=handle.restarts)
        return handle

    # -- stop ------------------------------------------------------------------

    async def stop_worker(
        self, worker_id: str, timeout: float = 30.0
    ) -> None:
        """SIGTERM the worker (graceful drain + final checkpoint) and
        wait for exit; escalate to SIGKILL only past ``timeout``. The
        worker moves to ``stopped`` and is never restarted."""
        handle = self._get(worker_id)
        handle.state = STOPPED
        process = handle.process
        if process is None or process.poll() is not None:
            return
        try:
            process.send_signal(signal.SIGTERM)
        except OSError:
            return
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if process.poll() is not None:
                return
            await asyncio.sleep(0.05)
        process.kill()
        process.wait()

    async def stop_all(self, timeout: float = 30.0) -> None:
        await asyncio.gather(*(
            self.stop_worker(worker_id, timeout)
            for worker_id in list(self.workers)
        ))

    # -- health ----------------------------------------------------------------

    def crashed_workers(self) -> List[WorkerHandle]:
        """Workers whose process exited without being stopped. Marks
        them ``down`` (and emits the exit event) exactly once."""
        crashed = []
        for handle in self.workers.values():
            if handle.state in (STOPPED, DOWN):
                continue
            code = handle.exited()
            if code is not None:
                handle.state = DOWN
                self._emit("cluster_worker_exited",
                           worker=handle.worker_id, code=code,
                           restarts=handle.restarts)
                crashed.append(handle)
        return crashed

    def to_dict(self) -> Dict[str, object]:
        return {
            worker_id: handle.to_dict()
            for worker_id, handle in sorted(self.workers.items())
        }

    # -- helpers ---------------------------------------------------------------

    def _get(self, worker_id: str) -> WorkerHandle:
        handle = self.workers.get(worker_id)
        if handle is None:
            raise ClusterError(f"no such worker: {worker_id!r}")
        return handle

    def _emit(self, event: str, **fields: object) -> None:
        if self._telemetry is not None:
            self._telemetry.emit(event, **fields)
